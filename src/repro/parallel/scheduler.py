"""Task construction and scheduling for HARE.

The unit of work is a *task* ``(node, i_lo, i_hi)``: run the FAST scan
for one center with first-edge indices in ``[i_lo, i_hi)`` (``None``
means "to the end").  Tasks are grouped into *batches*, the unit of
dispatch to worker processes — batching amortises IPC for the long
tail of low-degree nodes, while high-degree nodes are split so no
single worker inherits the whole head of the degree distribution
(the Fig. 9 imbalance this framework exists to fix).

Scheduling modes mirror OpenMP's:

* **dynamic** — workers pull the next batch as they finish (batches
  are ordered heaviest-first so stragglers start early);
* **static** — batches are pre-assigned round-robin, one mega-batch
  per worker, with no runtime balancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graph.statistics import default_degree_threshold
from repro.graph.temporal_graph import TemporalGraph

#: (node, first-edge range lo, hi) — ``hi=None`` means the sequence end.
Task = Tuple[int, int, Optional[int]]


@dataclass
class WorkBatch:
    """A group of tasks dispatched to one worker call."""

    tasks: List[Task] = field(default_factory=list)
    #: rough cost estimate used for heaviest-first ordering
    weight: int = 0

    def add(self, task: Task, weight: int) -> None:
        self.tasks.append(task)
        self.weight += weight


def build_batches(
    graph: TemporalGraph,
    workers: int,
    thrd: Optional[float] = None,
    split_factor: int = 4,
    light_batches_per_worker: int = 8,
) -> List[WorkBatch]:
    """Build HARE's hierarchical work decomposition.

    Parameters
    ----------
    workers:
        Worker count the decomposition should feed.
    thrd:
        Degree threshold: nodes with temporal degree strictly greater
        are split into intra-node subtasks.  ``None`` applies the
        paper's default — the minimum degree among the top-20 nodes.
        ``float("inf")`` disables intra-node parallelism entirely (the
        "without thrd" configuration of Fig. 12(b)).
    split_factor:
        Heavy nodes are split into ``workers * split_factor``
        first-edge ranges.
    light_batches_per_worker:
        Light nodes are grouped into about ``workers *
        light_batches_per_worker`` batches of roughly equal total
        degree.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if split_factor < 1:
        raise ValidationError(f"split_factor must be >= 1, got {split_factor}")
    if thrd is None:
        thrd = default_degree_threshold(graph, 20)

    # Classify all nodes in one vectorized pass over the degree column.
    # A degree-1 center can host nothing: stars/pairs need three
    # incident edges and FAST-Tri needs the (ei, ej) pair.  A degree-2
    # center still matters for triangles — the third edge lives on the
    # far pair, not on the center.
    degrees = graph.degrees()
    eligible = degrees >= 2
    heavy_mask = eligible & (degrees > thrd)
    light_mask = eligible & ~heavy_mask
    heavy = np.flatnonzero(heavy_mask)
    light_nodes = np.flatnonzero(light_mask)
    light_degrees = degrees[light_nodes]

    batches: List[WorkBatch] = []

    # Intra-node splitting of heavy centers.
    pieces = max(2, workers * split_factor)
    for node in heavy.tolist():
        degree = int(degrees[node])
        step = max(1, -(-degree // pieces))  # ceil division
        lo = 0
        while lo < degree:
            hi: Optional[int] = lo + step
            assert hi is not None
            batch = WorkBatch()
            batch.add((node, lo, None if hi >= degree else hi), min(step, degree - lo))
            batches.append(batch)
            lo = hi

    # Light nodes grouped into roughly equal-degree batches: boundary
    # assignment is one cumulative sum sliced at multiples of the
    # target weight, instead of a per-node accumulation loop.
    if len(light_nodes):
        total_light = int(light_degrees.sum())
        target = max(1, total_light // max(1, workers * light_batches_per_worker))
        group = np.minimum(
            np.cumsum(light_degrees) - 1, total_light - 1
        ) // target
        boundaries = np.flatnonzero(
            np.concatenate(([True], group[1:] != group[:-1]))
        ).tolist() + [len(light_nodes)]
        node_list = light_nodes.tolist()
        degree_list = light_degrees.tolist()
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            batch = WorkBatch()
            for idx in range(lo, hi):
                batch.add((node_list[idx], 0, None), degree_list[idx])
            batches.append(batch)

    # Heaviest-first so dynamic scheduling starts stragglers early.
    batches.sort(key=lambda b: b.weight, reverse=True)
    return batches


def partition_static(batches: List[WorkBatch], workers: int) -> List[WorkBatch]:
    """Pre-assign batches round-robin into one mega-batch per worker.

    This is the OpenMP ``static`` schedule: no runtime balancing, so a
    worker stuck with the degree-distribution head finishes last
    (the effect Fig. 12(b) quantifies).
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    merged = [WorkBatch() for _ in range(workers)]
    for idx, batch in enumerate(batches):
        target = merged[idx % workers]
        for task in batch.tasks:
            target.add(task, 0)
        target.weight += batch.weight
    return [b for b in merged if b.tasks]
