"""HARE — the hierarchical parallel framework (§IV-C of the paper).

FAST's per-center decomposition has no data dependency across centers
(inter-node parallelism) and none across a center's first-edge indices
(intra-node parallelism).  HARE exploits both: nodes whose degree
exceeds the threshold ``thrd`` are split into first-edge-range
subtasks, everything else is batched whole, and batches are scheduled
dynamically across a process pool (the OpenMP ``dynamic`` schedule
analogue) with per-worker counters merged at the end (the ``reduction``
analogue).
"""

from repro.parallel.scheduler import WorkBatch, build_batches, partition_static
from repro.parallel.executor import resolve_start_method, run_batches
from repro.parallel.hare import hare_count, hare_star_pair, hare_triangle
from repro.parallel.pool import (
    WorkerPool,
    close_all_pools,
    close_shared_pools,
    install_signal_handlers,
    shared_pool,
)

__all__ = [
    "WorkBatch",
    "WorkerPool",
    "build_batches",
    "close_all_pools",
    "close_shared_pools",
    "install_signal_handlers",
    "partition_static",
    "resolve_start_method",
    "run_batches",
    "shared_pool",
    "hare_count",
    "hare_star_pair",
    "hare_triangle",
]
