"""Process-pool execution of HARE work batches.

Workers are forked so they share the parent's graph (and its pair
index) copy-on-write — the Python analogue of OpenMP threads reading a
shared graph.  Each worker accumulates into private counters and the
parent merges them afterwards, which is exactly the OpenMP
``reduction`` clause the paper relies on for intra-node parallelism
("each thread keeps the backup of these variables, and then reduce and
output the final result").

If the platform cannot fork (or a single worker is requested) the
batches run serially in-process, preserving results exactly.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Iterable, List, Optional, Tuple

from repro.core.counters import PairCounter, StarCounter, TriangleCounter
from repro.core.fast_star import count_star_pair_tasks
from repro.core.fast_tri import count_triangle_tasks
from repro.errors import ParallelExecutionError, ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.scheduler import WorkBatch

#: What a worker returns: raw counter cell lists (cheap to pickle).
_WorkerResult = Tuple[Optional[List[int]], Optional[List[int]], Optional[List[int]]]

# Worker globals, inherited through fork.
_GRAPH: Optional[TemporalGraph] = None
_DELTA: float = 0.0
_DO_STAR_PAIR: bool = True
_DO_TRIANGLE: bool = True
_BACKEND: str = "python"


def _run_batch(batch: WorkBatch) -> _WorkerResult:
    assert _GRAPH is not None
    star_data = pair_data = tri_data = None
    if _BACKEND == "columnar":
        # Vectorized kernels over the pre-forked columnar arrays; raw
        # cell lists keep the IPC payload identical to the python path.
        from repro.core.columnar_kernels import (
            count_star_pair_columnar,
            count_triangle_columnar,
        )

        if _DO_STAR_PAIR:
            star_arr, pair_arr = count_star_pair_columnar(
                _GRAPH, _DELTA, batch.tasks
            )
            star_data, pair_data = star_arr.tolist(), pair_arr.tolist()
        if _DO_TRIANGLE:
            tri_data = count_triangle_columnar(_GRAPH, _DELTA, batch.tasks).tolist()
        return (star_data, pair_data, tri_data)
    if _DO_STAR_PAIR:
        star, pair = count_star_pair_tasks(_GRAPH, _DELTA, batch.tasks)
        star_data, pair_data = star.data, pair.data
    if _DO_TRIANGLE:
        tri = count_triangle_tasks(_GRAPH, _DELTA, batch.tasks)
        tri_data = tri.data
    return (star_data, pair_data, tri_data)


def _fork_context() -> Optional[mp.context.BaseContext]:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def run_batches(
    graph: TemporalGraph,
    delta: float,
    batches: List[WorkBatch],
    workers: int,
    schedule: str = "dynamic",
    star_pair: bool = True,
    triangle: bool = True,
    backend: str = "python",
) -> Tuple[Optional[StarCounter], Optional[PairCounter], Optional[TriangleCounter]]:
    """Execute work batches and reduce the per-worker counters.

    ``schedule`` is ``"dynamic"`` (workers pull batches as they
    finish) or ``"static"`` (batches must already be pre-assigned via
    :func:`~repro.parallel.scheduler.partition_static`; they are
    mapped one-to-one onto workers).  ``backend`` selects the kernels
    workers run (``"python"`` loops or ``"columnar"`` vectorized);
    either way the shared read-only view is forced *before* forking so
    children inherit it copy-on-write instead of rebuilding it.
    """
    if schedule not in ("dynamic", "static"):
        raise ValidationError(f"schedule must be 'dynamic' or 'static', got {schedule!r}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if backend not in ("python", "columnar"):
        raise ValidationError(
            f"backend must be 'python' or 'columnar', got {backend!r}"
        )

    global _GRAPH, _DELTA, _DO_STAR_PAIR, _DO_TRIANGLE, _BACKEND
    if backend == "columnar":
        from repro.core.columnar_kernels import warm_delta_cache

        # Build the store AND the per-δ kernel tables before forking:
        # every worker then reads them copy-on-write instead of
        # repeating the O(m log m) setup per batch.
        warm_delta_cache(graph.columnar(), delta, star_pair=star_pair)
    elif triangle:
        graph.ensure_pair_index()

    star = StarCounter() if star_pair else None
    pair = PairCounter() if star_pair else None
    tri = TriangleCounter(multiplicity=3) if triangle else None

    def reduce_result(result: _WorkerResult) -> None:
        star_data, pair_data, tri_data = result
        if star is not None and star_data is not None:
            star.merge(StarCounter(star_data))
        if pair is not None and pair_data is not None:
            pair.merge(PairCounter(pair_data))
        if tri is not None and tri_data is not None:
            tri.merge(TriangleCounter(tri_data))

    ctx = _fork_context()
    _GRAPH = graph
    _DELTA = delta
    _DO_STAR_PAIR = star_pair
    _DO_TRIANGLE = triangle
    _BACKEND = backend
    try:
        if workers == 1 or ctx is None or not batches:
            for batch in batches:
                reduce_result(_run_batch(batch))
        else:
            with ctx.Pool(processes=workers) as pool:
                if schedule == "dynamic":
                    results: Iterable[_WorkerResult] = pool.imap_unordered(
                        _run_batch, batches, chunksize=1
                    )
                else:
                    results = pool.map(_run_batch, batches)
                for result in results:
                    reduce_result(result)
    except ParallelExecutionError:
        raise
    except Exception as exc:  # pragma: no cover - worker crash path
        raise ParallelExecutionError(f"HARE worker failed: {exc}") from exc
    finally:
        _GRAPH = None
    return star, pair, tri
