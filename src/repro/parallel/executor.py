"""Process-pool execution of HARE work batches.

Two parallel runtimes implement the paper's "OpenMP threads over one
shared graph" model:

* **fork-per-call** (the historical path): workers are forked so they
  share the parent's graph (and its pair index / columnar store)
  copy-on-write.  Cheap on POSIX, impossible on spawn-only platforms.
* **persistent shared-memory pool**
  (:class:`repro.parallel.pool.WorkerPool`): long-lived workers attach
  the graph's arrays from :mod:`multiprocessing.shared_memory` once
  and then execute batches by id — spawn-safe, and the startup cost is
  paid once per graph instead of once per request.

Either way each worker accumulates into private counters and the
parent merges them afterwards — exactly the OpenMP ``reduction``
clause the paper relies on for intra-node parallelism ("each thread
keeps the backup of these variables, and then reduce and output the
final result").

Routing: an explicit ``pool=`` wins; otherwise the start method
(explicit argument, then the ``REPRO_START_METHOD`` environment
variable, then the platform default) decides — ``fork`` runs the
copy-on-write path, anything else goes through a process-wide shared
:class:`~repro.parallel.pool.WorkerPool` so spawn platforms get real
parallelism instead of the historical silent serial fallback.  If the
platform cannot fork (or a single worker is requested) with no pool
available, the batches run serially in-process, preserving results
exactly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.core.counters import PairCounter, StarCounter, TriangleCounter
import time

from repro.core.fast_star import count_star_pair_tasks
from repro.core.fast_tri import count_triangle_tasks
from repro.errors import DeadlineExceededError, ParallelExecutionError, ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.scheduler import WorkBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.pool import WorkerPool

#: What a worker returns: raw counter cell lists (cheap to pickle).
_WorkerResult = Tuple[Optional[List[int]], Optional[List[int]], Optional[List[int]]]

#: Environment override for the parallel start method ("fork"/"spawn");
#: CI runs the suite under both to keep the spawn path honest.
START_METHOD_ENV = "REPRO_START_METHOD"

# Worker globals, inherited through fork.
_GRAPH: Optional[TemporalGraph] = None
_DELTA: float = 0.0
_DO_STAR_PAIR: bool = True
_DO_TRIANGLE: bool = True
_BACKEND: str = "python"


def execute_tasks(
    graph: TemporalGraph,
    delta: float,
    tasks: Iterable,
    *,
    star_pair: bool = True,
    triangle: bool = True,
    backend: str = "python",
) -> _WorkerResult:
    """Run one batch's tasks against a graph; return raw cell lists.

    The single kernel-dispatch point shared by every runtime: the
    serial path, forked workers (via the module globals) and the
    shared-memory pool workers all call this.  Raw cell lists keep the
    IPC payload identical across backends.
    """
    star_data = pair_data = tri_data = None
    if backend == "columnar":
        # Vectorized kernels over the (forked or attached) columnar
        # arrays.
        from repro.core.columnar_kernels import (
            count_star_pair_columnar,
            count_triangle_columnar,
        )

        if star_pair:
            star_arr, pair_arr = count_star_pair_columnar(graph, delta, tasks)
            star_data, pair_data = star_arr.tolist(), pair_arr.tolist()
        if triangle:
            tri_data = count_triangle_columnar(graph, delta, tasks).tolist()
        return (star_data, pair_data, tri_data)
    if star_pair:
        star, pair = count_star_pair_tasks(graph, delta, tasks)
        star_data, pair_data = star.data, pair.data
    if triangle:
        tri = count_triangle_tasks(graph, delta, tasks)
        tri_data = tri.data
    return (star_data, pair_data, tri_data)


def _run_batch(batch: WorkBatch) -> _WorkerResult:
    assert _GRAPH is not None
    return execute_tasks(
        _GRAPH,
        _DELTA,
        batch.tasks,
        star_pair=_DO_STAR_PAIR,
        triangle=_DO_TRIANGLE,
        backend=_BACKEND,
    )


def _check_deadline(deadline: Optional[float]) -> None:
    """Refuse to start work whose deadline has already passed.

    The pool runtimes additionally abort *in-flight* result collection
    (see :meth:`repro.parallel.pool.WorkerPool.run_batches`); the
    serial and fork-per-call paths only gate at entry — once a fork
    pool is up, it runs to completion.
    """
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceededError("run_batches deadline expired before execution")


def _fork_context() -> Optional[mp.context.BaseContext]:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """Concrete start method: explicit arg, then env, then platform.

    ``"fork"`` where available (POSIX), ``"spawn"`` otherwise.  An
    explicit/env request for an unsupported method raises
    :class:`~repro.errors.ValidationError`.
    """
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    available = mp.get_all_start_methods()
    if method is None:
        return "fork" if "fork" in available else "spawn"
    if method not in available:
        raise ValidationError(
            f"start method {method!r} is not available here (choose from {available})"
        )
    return method


def resolved_runtime(
    pool=None,
    workers: int = 1,
    start_method: Optional[str] = None,
    has_work: bool = True,
) -> str:
    """Which runtime :func:`run_batches` will execute on.

    One of ``"pool"`` (explicit persistent pool), ``"serial"``
    (in-process), ``"fork-per-call"`` (the transient fork pool) or
    ``"shared-pool"`` (the process-wide pool that serves non-fork
    start methods).  The single decision point — callers that label
    results (``hare_count``'s ``meta["runtime"]``) ask here instead of
    re-deriving it, so provenance can never drift from routing.
    """
    if not has_work:
        return "serial"
    if pool is not None:
        return "pool"
    if workers == 1:
        return "serial"
    if resolve_start_method(start_method) == "fork" and _fork_context() is not None:
        return "fork-per-call"
    return "shared-pool"


def run_batches(
    graph: TemporalGraph,
    delta: float,
    batches: List[WorkBatch],
    workers: int,
    schedule: str = "dynamic",
    star_pair: bool = True,
    triangle: bool = True,
    backend: str = "python",
    pool: Optional["WorkerPool"] = None,
    start_method: Optional[str] = None,
    deadline: Optional[float] = None,
) -> Tuple[Optional[StarCounter], Optional[PairCounter], Optional[TriangleCounter]]:
    """Execute work batches and reduce the per-worker counters.

    ``schedule`` is ``"dynamic"`` (workers pull batches as they
    finish) or ``"static"`` (batches must already be pre-assigned via
    :func:`~repro.parallel.scheduler.partition_static`; they are
    mapped one-to-one onto workers).  ``backend`` selects the kernels
    workers run (``"python"`` loops or ``"columnar"`` vectorized).
    ``pool`` routes execution to a persistent
    :class:`~repro.parallel.pool.WorkerPool`; without one,
    ``start_method`` (or ``REPRO_START_METHOD``) picks between the
    fork copy-on-write path and a process-wide shared pool (see the
    module docstring).  ``deadline`` (a :func:`time.monotonic`
    instant) bounds the call: expired-on-entry requests raise
    :class:`~repro.errors.DeadlineExceededError` on every runtime, and
    the pool runtimes also cancel mid-flight.  Results are
    bit-identical across every runtime.
    """
    if schedule not in ("dynamic", "static"):
        raise ValidationError(f"schedule must be 'dynamic' or 'static', got {schedule!r}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if backend not in ("python", "columnar"):
        raise ValidationError(
            f"backend must be 'python' or 'columnar', got {backend!r}"
        )

    _check_deadline(deadline)
    runtime = resolved_runtime(pool, workers, start_method, has_work=bool(batches))
    # Both pool runtimes dispatch before any local preparation: their
    # workers attach shared-memory arrays and build (or install) their
    # own derived views, so owner-side prep would be pure waste.  An
    # explicit pool always wins — even for workers == 1, so a
    # single-worker pool measures/exercises the full resident runtime
    # rather than silently collapsing to in-process execution.
    if runtime == "pool":
        assert pool is not None
        return pool.run_batches(
            graph, delta, batches, star_pair=star_pair, triangle=triangle,
            backend=backend, deadline=deadline,
        )
    if runtime == "shared-pool":
        # Spawn (or other non-fork) start method: the copy-on-write
        # trick cannot work, so route through the process-wide shared
        # pool — real parallelism where the old path silently degraded
        # to serial.
        from repro.parallel.pool import shared_pool

        return shared_pool(
            workers, start_method=resolve_start_method(start_method)
        ).run_batches(
            graph, delta, batches, star_pair=star_pair, triangle=triangle,
            backend=backend, deadline=deadline,
        )

    global _GRAPH, _DELTA, _DO_STAR_PAIR, _DO_TRIANGLE, _BACKEND
    if backend == "columnar":
        from repro.core.columnar_kernels import warm_delta_cache

        # Build the store AND the per-δ kernel tables before forking:
        # every worker then reads them copy-on-write instead of
        # repeating the O(m log m) setup per batch.
        warm_delta_cache(graph.columnar(), delta, star_pair=star_pair)
    else:
        # Python kernels read the lazily-built sequence views (and the
        # pair index for triangles); force them pre-fork so children
        # inherit one copy instead of each rebuilding their own.
        graph.sequences()
        if triangle:
            graph.ensure_pair_index()

    star = StarCounter() if star_pair else None
    pair = PairCounter() if star_pair else None
    tri = TriangleCounter(multiplicity=3) if triangle else None

    def reduce_result(result: _WorkerResult) -> None:
        star_data, pair_data, tri_data = result
        if star is not None and star_data is not None:
            star.merge(StarCounter(star_data))
        if pair is not None and pair_data is not None:
            pair.merge(PairCounter(pair_data))
        if tri is not None and tri_data is not None:
            tri.merge(TriangleCounter(tri_data))

    if runtime == "serial":
        for batch in batches:
            reduce_result(execute_tasks(
                graph, delta, batch.tasks,
                star_pair=star_pair, triangle=triangle, backend=backend,
            ))
        return star, pair, tri

    ctx = _fork_context()
    assert runtime == "fork-per-call" and ctx is not None
    _GRAPH = graph
    _DELTA = delta
    _DO_STAR_PAIR = star_pair
    _DO_TRIANGLE = triangle
    _BACKEND = backend
    try:
        with ctx.Pool(processes=workers) as proc_pool:
            if schedule == "dynamic":
                results: Iterable[_WorkerResult] = proc_pool.imap_unordered(
                    _run_batch, batches, chunksize=1
                )
            else:
                results = proc_pool.map(_run_batch, batches)
            for result in results:
                reduce_result(result)
    except ParallelExecutionError:
        raise
    except Exception as exc:  # pragma: no cover - worker crash path
        raise ParallelExecutionError(f"HARE worker failed: {exc}") from exc
    finally:
        _GRAPH = None
    return star, pair, tri
