"""A persistent, shared-memory HARE worker pool.

The fork-per-call executor rebuilds its whole parallel runtime on
every request: a fresh process pool, fresh copy-on-write mappings,
fresh per-δ kernel tables in every child — and it cannot run at all on
spawn-only platforms.  :class:`WorkerPool` is the resident
alternative, the Python analogue of the paper's long-lived OpenMP
thread team reading one shared graph (§IV-C):

* **Workers are long-lived processes** (fork- and spawn-safe), started
  once and fed :class:`~repro.parallel.scheduler.WorkBatch` task lists
  through one shared queue — pulling the next batch as they finish is
  exactly the dynamic work-stealing schedule of the fork path.
* **Graphs are published once** into
  :mod:`multiprocessing.shared_memory`
  (:func:`repro.graph.shared.publish_graph`) and attached zero-copy by
  every worker; repeated requests against the same graph pay no
  per-request pickling, forking, or columnar rebuild.  The per-δ
  kernel tables are exported once by the owner and shared the same way
  (:func:`repro.core.columnar_kernels.export_delta_cache`), so N
  workers hold one copy instead of N.
* **Reduction is per worker**: a worker keeps merging batch counters
  locally and ships one partial per idle moment, not one message per
  batch — the OpenMP ``reduction`` clause with IPC proportional to
  worker count, not batch count.
* **Plans and results are cached**: the HARE batch decomposition is
  memoized per (graph, workers, thrd, schedule), and — because counts
  are a pure function of the immutable, version-stamped graph —
  identical repeated requests are answered from a small LRU of raw
  counters without touching the workers at all.  Both caches are keyed
  through :attr:`TemporalGraph.version
  <repro.graph.temporal_graph.TemporalGraph.version>`, so sanctioned
  in-place mutation republishes instead of serving stale counts.
  Pass ``result_cache=False`` (or ``reuse=False`` per call) to force
  kernel execution, e.g. when benchmarking or conformance-testing the
  execution paths themselves.

Lifecycle: create → (:meth:`WorkerPool.publish` |
:meth:`WorkerPool.run_batches`)* → :meth:`WorkerPool.close`.  The pool
is also a context manager, and a garbage-collected pool shuts its
workers down and unlinks every segment it published — but explicit
``close()`` is kinder to ``/dev/shm``.  :func:`shared_pool` hands out
process-wide pools keyed by (start method, worker count) so repeated
API calls amortize startup without coordinating pool objects.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import queue
import threading
import time
import traceback
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import multiprocessing as mp

import numpy as np

from repro.core.counters import PairCounter, StarCounter, TriangleCounter
from repro.errors import DeadlineExceededError, ParallelExecutionError, ValidationError
from repro.graph.shared import (
    SharedArrays,
    SharedGraph,
    attach_arrays,
    attach_graph,
    publish_arrays,
    publish_graph,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.scheduler import WorkBatch

#: Worker-side cap on concurrently attached graphs (LRU evicted).
WORKER_GRAPH_CACHE = 4

#: Owner-side cap on auto-published (unpinned) graphs kept resident.
AUTO_GRAPH_CACHE = 4

#: Owner-side cap on published per-(graph, δ) kernel-table segments.
DELTA_TABLE_CACHE = 8

#: Entries kept in the repeated-request raw-counter cache.
RESULT_CACHE = 32

#: Seconds a worker waits for more work before flushing its partial.
_FLUSH_IDLE_SECONDS = 0.002

#: Seconds between liveness checks while the owner waits on results.
_POLL_SECONDS = 1.0

#: Slots in the shared aborted-job ring: workers skip queued tasks of
#: the last this-many cancelled jobs (deadline aborts), so cancelled
#: work stops consuming workers instead of running to completion with
#: its results discarded.
_ABORT_RING = 16

#: Map functions runnable on pool workers via :meth:`WorkerPool.run_map`
#: (name -> "module:attr", resolved worker-side by import so spawn
#: workers never need the function object pickled).  The sampling
#: estimators register their block/chunk evaluators here.
MAP_FUNCTIONS: Dict[str, str] = {
    "bts_blocks": "repro.baselines.sampling_bts:pool_map_block_grids",
}


def _resolve_map_fn(name: str):
    """Import the worker-side callable behind a registered map name."""
    import importlib

    module_name, attr = MAP_FUNCTIONS[name].split(":")
    return getattr(importlib.import_module(module_name), attr)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

class _WorkerGraph:
    """One attached graph plus its installed δ-table attachments."""

    __slots__ = ("attached", "delta_attachments", "installed_delta")

    def __init__(self, manifest_blob: bytes) -> None:
        self.attached = attach_graph(pickle.loads(manifest_blob))
        #: manifest blob -> AttachedArrays (kept alive while the views
        #: sit inside the columnar store's delta_cache), LRU capped at
        #: :data:`DELTA_TABLE_CACHE` so a long δ sweep does not leave
        #: every historical table bundle mapped forever.  The owner
        #: pickles each bundle's manifest exactly once, so the blob
        #: bytes identify the bundle — including which table kinds
        #: (FAST window/star, sampling edge-window) it carries.
        self.delta_attachments: "OrderedDict[bytes, object]" = OrderedDict()
        self.installed_delta: Optional[bytes] = None

    @property
    def graph(self) -> TemporalGraph:
        return self.attached.graph

    def install_delta(self, manifest_blob: Optional[bytes], delta: float) -> None:
        """Make the shared per-δ tables resident for the next kernel run."""
        if manifest_blob is None or self.graph._columnar is None:
            return
        from repro.core.columnar_kernels import install_delta_cache

        key = manifest_blob
        if self.installed_delta == key:
            return
        bundle = self.delta_attachments.get(key)
        if bundle is None:
            bundle = attach_arrays(pickle.loads(manifest_blob))
            self.delta_attachments[key] = bundle
        else:
            self.delta_attachments.move_to_end(key)
        install_delta_cache(self.graph._columnar, delta, bundle.arrays)
        self.installed_delta = key
        while len(self.delta_attachments) > DELTA_TABLE_CACHE:
            evicted_key = next(iter(self.delta_attachments))
            if evicted_key == key:  # pragma: no cover - cache >= 1 entry
                break
            self.delta_attachments.pop(evicted_key).close()

    def close(self) -> None:
        for bundle in self.delta_attachments.values():
            bundle.close()
        self.delta_attachments = OrderedDict()
        self.attached.close()


class _Partial:
    """A worker's running reduction for one job."""

    __slots__ = ("job_id", "star", "pair", "tri", "batches")

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        self.star = self.pair = self.tri = None
        self.batches = 0

    def add(self, result) -> None:
        star, pair, tri = result
        if star is not None:
            self.star = star if self.star is None else [a + b for a, b in zip(self.star, star)]
        if pair is not None:
            self.pair = pair if self.pair is None else [a + b for a, b in zip(self.pair, pair)]
        if tri is not None:
            self.tri = tri if self.tri is None else [a + b for a, b in zip(self.tri, tri)]
        self.batches += 1


def _job_aborted(aborted, job_id: int) -> bool:
    """Whether the owner cancelled ``job_id`` (shared abort ring)."""
    if aborted is None:
        return False
    with aborted.get_lock():
        return job_id in list(aborted)


def _worker_main(
    task_q, result_q, aborted=None, graph_cache_limit: int = WORKER_GRAPH_CACHE
) -> None:
    """Worker loop: attach graphs by manifest, run batches, reduce.

    Top-level (spawn-picklable).  Protocol: ``("run", job_id, gid,
    graph_blob, delta_blob, delta, star_pair, triangle, backend,
    tasks)`` messages (manifests ship pre-pickled, decoded only on a
    cache miss) plus ``("stop",)`` sentinels on ``task_q``;
    ``("ok", job_id, n_batches, star, pair, tri)`` and
    ``("err", job_id, text)`` on ``result_q``.  Partials accumulate
    per job and flush when the queue goes idle or the job changes, so
    result traffic scales with workers, not batches.  ``aborted`` is
    the shared cancelled-job ring: queued tasks of an aborted job are
    skipped, not executed (the owner stopped listening).
    """
    from repro.parallel.executor import execute_tasks

    graphs: "OrderedDict[int, _WorkerGraph]" = OrderedDict()
    partial: Optional[_Partial] = None

    def flush() -> None:
        nonlocal partial
        if partial is not None and partial.batches:
            result_q.put(
                ("ok", partial.job_id, partial.batches, partial.star, partial.pair, partial.tri)
            )
        partial = None

    def lookup(gid: int, graph_blob: bytes) -> _WorkerGraph:
        entry = graphs.get(gid)
        if entry is None:
            entry = _WorkerGraph(graph_blob)
            graphs[gid] = entry
            while len(graphs) > graph_cache_limit:
                graphs.popitem(last=False)[1].close()
        else:
            graphs.move_to_end(gid)
        return entry

    while True:
        if partial is not None:
            try:
                message = task_q.get(timeout=_FLUSH_IDLE_SECONDS)
            except queue.Empty:
                flush()
                continue
        else:
            message = task_q.get()
        if message[0] == "stop":
            flush()
            break
        if message[0] == "map":
            # Generic map job (see WorkerPool.run_map): one payload
            # message per chunk, no worker-side reduction.
            flush()
            (_, job_id, gid, graph_blob, delta_blob,
             delta, fn, args_blob, index, chunk) = message
            if _job_aborted(aborted, job_id):
                continue
            try:
                entry = lookup(gid, graph_blob)
                entry.install_delta(delta_blob, delta)
                payload = _resolve_map_fn(fn)(
                    entry.graph, delta, pickle.loads(args_blob), chunk
                )
            except BaseException:
                result_q.put(("err", job_id, traceback.format_exc()))
                continue
            result_q.put(("map_ok", job_id, index, payload))
            continue
        (_, job_id, gid, graph_blob, delta_blob,
         delta, star_pair, triangle, backend, tasks) = message
        if _job_aborted(aborted, job_id):
            if partial is not None and partial.job_id == job_id:
                partial = None
            continue
        try:
            entry = lookup(gid, graph_blob)
            if backend == "columnar":
                entry.install_delta(delta_blob, delta)
            result = execute_tasks(
                entry.graph, delta, tasks,
                star_pair=star_pair, triangle=triangle, backend=backend,
            )
        except BaseException:
            if partial is not None and partial.job_id != job_id:
                flush()
            partial = None
            result_q.put(("err", job_id, traceback.format_exc()))
            continue
        if partial is not None and partial.job_id != job_id:
            flush()
        if partial is None:
            partial = _Partial(job_id)
        partial.add(result)

    for entry in graphs.values():
        entry.close()


# ----------------------------------------------------------------------
# owner-side bookkeeping
# ----------------------------------------------------------------------

@dataclass
class _GraphState:
    """Owner record of one known graph (published or not).

    Keyed by ``id(graph)`` with a weak reference for liveness: object
    identity is the lookup (never ``TemporalGraph.__eq__``, which is
    O(m)), the weakref guards against id reuse after collection, and
    the version stamp guards against sanctioned in-place mutation.
    Segments are published lazily (``gid``/``handle`` are ``None``
    until the first worker run needs them) and a graph's plan cache
    survives republication.
    """

    ref: "weakref.ref[TemporalGraph]"
    version: int
    pinned: bool = False
    gid: Optional[int] = None
    handle: Optional[SharedGraph] = None
    manifest_blob: Optional[bytes] = None
    has_columnar: bool = False
    #: (workers, thrd, schedule, split_factor) -> List[WorkBatch]
    plans: Dict[Tuple, List[WorkBatch]] = field(default_factory=dict)
    #: (delta, star_pair) -> (SharedArrays, pickled manifest)
    deltas: "OrderedDict[Tuple[float, bool], Tuple[SharedArrays, bytes]]" = field(
        default_factory=OrderedDict
    )

    def release_segments(self) -> None:
        for bundle, _ in self.deltas.values():
            bundle.close()
        self.deltas = OrderedDict()
        if self.handle is not None:
            self.handle.close()
        self.handle = None
        self.manifest_blob = None
        self.gid = None
        self.has_columnar = False


#: Every live pool, weakly held: :func:`close_all_pools` (and the
#: installed signal handlers) walk it so a daemon dying on SIGTERM
#: unlinks its shm segments instead of leaking them until the resource
#: tracker's at-exit sweep (which a signal death skips entirely).
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()


def _idle_reaper(pool_ref, idle_timeout: float) -> None:
    """Daemon loop behind ``WorkerPool(idle_timeout=...)``.

    Holds only a weak reference between ticks so the reaper never keeps
    its pool alive, and only ever *tries* the pool lock — a held lock
    means a job is in flight, which itself refreshes the activity
    stamp.  Exits when the pool is collected or closed.
    """
    interval = min(1.0, max(0.05, idle_timeout / 4.0))
    while True:
        time.sleep(interval)
        pool = pool_ref()
        if pool is None or pool._closed:
            return
        lock = pool._lock
        if lock.acquire(blocking=False):
            try:
                if (
                    not pool._suspended
                    and pool._procs
                    and time.monotonic() - pool._last_active >= idle_timeout
                ):
                    pool._suspend_workers()
            finally:
                lock.release()
        del pool


def _shutdown(procs, task_q, states: Dict[int, _GraphState]) -> None:
    """Finalizer body: stop workers, then unlink every published segment."""
    for _ in procs:
        try:
            task_q.put(("stop",))
        except Exception:  # pragma: no cover - queue already torn down
            break
    for proc in procs:
        proc.join(timeout=5)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - hung worker
            proc.terminate()
            proc.join(timeout=1)
    for state in list(states.values()):
        state.release_segments()
    states.clear()


class WorkerPool:
    """A long-lived team of counting workers over shared-memory graphs.

    Parameters
    ----------
    workers:
        Number of worker processes (fixed for the pool's lifetime).
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"``; default per
        :func:`repro.parallel.executor.resolve_start_method` (the
        ``REPRO_START_METHOD`` environment variable, then the platform
        default).  Results are bit-identical across methods.
    result_cache:
        Answer identical repeated requests from the raw-counter LRU
        (see the module docstring).  ``reuse=`` on
        :meth:`run_batches` overrides per call.
    idle_timeout:
        Seconds of inactivity after which the worker processes are
        *suspended* (joined, freeing their memory and mappings) while
        published segments, plans, and the result cache stay resident.
        The next run transparently restarts workers — they are
        stateless caches; every message carries its manifests.  For
        long-running daemons that see bursty traffic.  ``None``
        (default) keeps workers forever.

    Use via :func:`repro.core.api.count_motifs` /
    :class:`~repro.core.registry.CountRequest` (``pool=``) or hand
    batches over directly with :meth:`run_batches`.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        *,
        result_cache: bool = True,
        idle_timeout: Optional[float] = None,
    ) -> None:
        from repro.parallel.executor import resolve_start_method

        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValidationError(
                f"idle_timeout must be positive (or None), got {idle_timeout}"
            )
        self.workers = workers
        self.start_method = resolve_start_method(start_method)
        # Start the resource tracker *before* forking workers: children
        # forked earlier would each lazily spawn their own tracker on
        # first shared-memory attach, and those trackers would then
        # complain about (and try to re-unlink) segments the owner
        # already cleaned up.  Sharing the parent's tracker makes the
        # workers' attach registrations collapse into the owner's.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform-specific tracker quirks
            pass
        self._ctx = mp.get_context(self.start_method)
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        #: Shared cancelled-job ring (see :data:`_ABORT_RING`): written
        #: by the owner on deadline aborts, read by every worker before
        #: executing a queued task.
        self._aborted = self._ctx.Array("q", [-1] * _ABORT_RING)
        self._abort_slot = 0
        #: Kept the same list object for the pool's lifetime (the
        #: finalizer captured it); worker restarts mutate it in place.
        self._procs: List = []
        #: id(graph) -> _GraphState (weakref-guarded against id reuse).
        self._states: Dict[int, _GraphState] = {}
        #: unpinned published keys, LRU order (evicted beyond the cap).
        self._auto: "OrderedDict[int, None]" = OrderedDict()
        self._gid_counter = itertools.count()
        self._job_counter = itertools.count()
        self._result_cache_enabled = result_cache
        self._results: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        # Reentrant: the public entry points hold it across publication
        # + dispatch + collection, while helpers like plan_batches and
        # publish take it on their own for direct callers (the serve
        # daemon drives one pool from many threads).
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {
            "jobs": 0,
            "batches": 0,
            "cache_hits": 0,
            "graphs_published": 0,
            "delta_tables_published": 0,
            "jobs_aborted": 0,
            "worker_restarts": 0,
        }
        self._closed = False
        self._suspended = False
        self.idle_timeout = idle_timeout
        self._last_active = time.monotonic()
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._task_q, self._states
        )
        self._start_workers()
        _LIVE_POOLS.add(self)
        if idle_timeout is not None:
            reaper = threading.Thread(
                target=_idle_reaper,
                args=(weakref.ref(self), idle_timeout),
                daemon=True,
                name="repro-pool-idle-reaper",
            )
            reaper.start()

    def _start_workers(self) -> None:
        """(Re)start the worker team; mutates ``_procs`` in place."""
        self._procs[:] = [
            self._ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q, self._aborted),
                daemon=True,
                name=f"repro-pool-{i}",
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()
        self._suspended = False

    def _ensure_workers(self) -> None:
        """Revive a suspended worker team (idle-timeout wake-up)."""
        if self._closed:
            raise ParallelExecutionError("worker pool is closed")
        if self._suspended or not self._procs:
            self._start_workers()
            self.stats["worker_restarts"] += 1

    def _suspend_workers(self) -> None:
        """Join the workers, keeping segments/plans/caches resident.

        Called with the lock held (so no job is in flight).  The
        workers drain any leftover queue content before seeing their
        stop sentinels; owner-side state is untouched, so the next run
        restarts them against the same published segments.
        """
        if self._closed or self._suspended or not self._procs:
            return
        for _ in self._procs:
            self._task_q.put(("stop",))
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        self._procs[:] = []
        self._suspended = True

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every published segment.

        Idempotent; the pool is unusable afterwards.
        """
        self._closed = True
        self._finalizer()

    @property
    def closed(self) -> bool:
        """Explicitly closed, or a worker died (crash detection).

        A pool suspended by its idle timeout is *not* closed — the
        next run revives its workers.
        """
        if self._closed:
            return True
        if self._suspended:
            return False
        return not all(p.is_alive() for p in self._procs)

    @property
    def suspended(self) -> bool:
        """Whether the idle timeout has parked the worker team."""
        return self._suspended

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "closed" if self.closed else "live"
        return (
            f"WorkerPool(workers={self.workers}, start_method={self.start_method!r}, "
            f"graphs={len(self._states)}, {status})"
        )

    # -- graph bookkeeping ---------------------------------------------
    def _state(self, graph: TemporalGraph) -> _GraphState:
        """The (possibly fresh) state record for a graph object.

        Lookup is by object identity — O(1), never the O(m)
        ``TemporalGraph.__eq__`` — with a weakref guarding against id
        reuse and the version stamp guarding against sanctioned
        in-place mutation (either invalidates segments, plans, and the
        result cache entries hanging off the old generation).
        """
        key = id(graph)
        state = self._states.get(key)
        if state is not None:
            if state.ref() is graph and state.version == graph.version:
                return state
            state.release_segments()
            self._auto.pop(key, None)
            del self._states[key]
        state = _GraphState(
            ref=weakref.ref(graph, self._make_reaper(key)),
            version=graph.version,
        )
        self._states[key] = state
        return state

    def _make_reaper(self, key: int):
        """Weakref callback: drop a dead graph's state and segments."""
        pool_ref = weakref.ref(self)

        def reap(_ref) -> None:
            pool = pool_ref()
            if pool is None:
                return
            state = pool._states.pop(key, None)
            pool._auto.pop(key, None)
            if state is not None:
                try:
                    state.release_segments()
                except Exception:  # pragma: no cover - GC-time best effort
                    pass

        return reap

    def publish(self, graph: TemporalGraph, *, include_columnar: bool = True) -> int:
        """Pin a graph into the pool's shared memory; return its id.

        Pinned graphs stay resident until :meth:`release` or
        :meth:`close` — use for the long-lived graph a service keeps
        answering queries about.  :meth:`run_batches` auto-publishes
        unpinned graphs through a small LRU, which suits one-off and
        streaming-slice graphs.
        """
        with self._lock:
            state = self._ensure_published(graph, include_columnar)
            state.pinned = True
            self._auto.pop(id(graph), None)
            assert state.gid is not None
            return state.gid

    def release(self, graph: TemporalGraph) -> None:
        """Drop a graph's published segments and cached state."""
        with self._lock:
            key = id(graph)
            state = self._states.pop(key, None)
            self._auto.pop(key, None)
            if state is not None:
                state.release_segments()

    def _ensure_published(
        self, graph: TemporalGraph, include_columnar: bool
    ) -> _GraphState:
        state = self._state(graph)
        if state.handle is None or (include_columnar and not state.has_columnar):
            state.release_segments()
            handle = publish_graph(graph, include_columnar=include_columnar)
            state.gid = next(self._gid_counter)
            state.handle = handle
            state.manifest_blob = pickle.dumps(handle.manifest)
            state.has_columnar = include_columnar
            self.stats["graphs_published"] += 1
        key = id(graph)
        if not state.pinned:
            self._auto[key] = None
            self._auto.move_to_end(key)
            while len(self._auto) > AUTO_GRAPH_CACHE:
                evicted, _ = self._auto.popitem(last=False)
                evicted_state = self._states.get(evicted)
                if evicted_state is not None:
                    evicted_state.release_segments()
        return state

    def _ensure_delta_tables(
        self,
        graph: TemporalGraph,
        state: _GraphState,
        delta: float,
        star_pair: bool,
        *,
        window_bounds: bool = True,
        edge_window: bool = False,
    ) -> bytes:
        """Publish (once) the per-δ kernel tables for a columnar run.

        ``star_pair``/``window_bounds`` select the FAST kernel tables,
        ``edge_window`` the sampling kernels' per-edge window ranks —
        each flag combination is its own published bundle, so a
        sampling job never pays for (or ships) the star prefix arrays.
        """
        key = (float(delta), bool(star_pair), bool(window_bounds), bool(edge_window))
        entry = state.deltas.get(key)
        if entry is None:
            from repro.core.columnar_kernels import export_delta_cache

            bundle = publish_arrays(
                export_delta_cache(
                    graph.columnar(), delta, star_pair=star_pair,
                    window_bounds=window_bounds, edge_window=edge_window,
                ),
                meta={
                    "delta": float(delta),
                    "star_pair": bool(star_pair),
                    "window_bounds": bool(window_bounds),
                    "edge_window": bool(edge_window),
                },
            )
            entry = (bundle, pickle.dumps(bundle.manifest))
            state.deltas[key] = entry
            self.stats["delta_tables_published"] += 1
            while len(state.deltas) > DELTA_TABLE_CACHE:
                state.deltas.popitem(last=False)[1][0].close()
        else:
            state.deltas.move_to_end(key)
        return entry[1]

    # -- planning -------------------------------------------------------
    def plan_batches(
        self,
        graph: TemporalGraph,
        workers: Optional[int] = None,
        thrd: Optional[float] = None,
        schedule: str = "dynamic",
        split_factor: int = 4,
    ) -> List[WorkBatch]:
        """The HARE work decomposition, memoized per graph.

        Identical inputs return the cached plan, so repeated requests
        skip the per-call :func:`~repro.parallel.scheduler.build_batches`
        pass.  Invalidated with the graph's version like everything
        else; needs no shared memory, so planning never publishes.
        """
        from repro.parallel.scheduler import build_batches, partition_static

        workers = self.workers if workers is None else workers
        with self._lock:
            state = self._state(graph)
            key = (workers, thrd, schedule, split_factor)
            plan = state.plans.get(key)
            if plan is None:
                plan = build_batches(graph, workers, thrd=thrd, split_factor=split_factor)
                if schedule == "static":
                    plan = partition_static(plan, workers)
                state.plans[key] = plan
            return plan

    # -- execution ------------------------------------------------------
    def run_batches(
        self,
        graph: TemporalGraph,
        delta: float,
        batches: List[WorkBatch],
        *,
        star_pair: bool = True,
        triangle: bool = True,
        backend: str = "python",
        reuse: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[Optional[StarCounter], Optional[PairCounter], Optional[TriangleCounter]]:
        """Execute batches on the resident workers; reduce the counters.

        Same contract (and bit-identical results) as
        :func:`repro.parallel.executor.run_batches`: returns
        ``(star, pair, tri)`` counters for the requested passes.
        ``reuse`` overrides the pool-level result cache for this call.
        ``deadline`` (a :func:`time.monotonic` instant) cancels the
        job when it expires mid-collection: the owner stops waiting,
        the job id enters the shared abort ring so workers skip its
        queued tasks, and :class:`~repro.errors.DeadlineExceededError`
        propagates.  Cache hits ignore the deadline (they are
        instantaneous and deadline never keys a cache).
        """
        if backend not in ("python", "columnar"):
            raise ValidationError(
                f"backend must be 'python' or 'columnar', got {backend!r}"
            )
        if self.closed:
            raise ParallelExecutionError("worker pool is closed")
        with self._lock:
            self._ensure_workers()
            self._last_active = time.monotonic()
            try:
                return self._run_batches_locked(
                    graph, delta, batches,
                    star_pair=star_pair, triangle=triangle, backend=backend,
                    reuse=reuse, deadline=deadline,
                )
            finally:
                self._last_active = time.monotonic()

    @staticmethod
    def _fingerprint_batches(batches: List[WorkBatch]) -> bytes:
        """Content digest of a batch list's task cover.

        The result cache must key on *what* is being counted: the same
        graph and δ with a different (e.g. partial) task cover is a
        different computation.  A collision-resistant digest (not
        Python's modular ``hash``) keeps "wrong cached counts" out of
        the failure space entirely; pickling + hashing the task
        tuples costs a few ms even at 10⁶-edge plan sizes, and also
        protects against callers mutating a plan list in place.
        """
        return hashlib.sha256(
            pickle.dumps([batch.tasks for batch in batches], protocol=4)
        ).digest()

    def _run_batches_locked(
        self, graph, delta, batches, *, star_pair, triangle, backend, reuse, deadline
    ):
        state = self._ensure_published(graph, include_columnar=(backend == "columnar"))
        use_cache = self._result_cache_enabled if reuse is None else reuse
        cache_key = (
            state.gid, float(delta), star_pair, triangle, backend,
            self._fingerprint_batches(batches) if use_cache else None,
        )
        if use_cache:
            cached = self._results.get(cache_key)
            if cached is not None:
                self._results.move_to_end(cache_key)
                self.stats["cache_hits"] += 1
                return self._build_counters(cached, star_pair, triangle)

        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError("pool job deadline expired before dispatch")
        delta_blob = None
        if backend == "columnar":
            delta_blob = self._ensure_delta_tables(graph, state, delta, star_pair)

        star_acc = np.zeros(24, dtype=np.int64) if star_pair else None
        pair_acc = np.zeros(8, dtype=np.int64) if star_pair else None
        tri_acc = np.zeros(24, dtype=np.int64) if triangle else None

        job_id = next(self._job_counter)
        self.stats["jobs"] += 1
        self.stats["batches"] += len(batches)
        for batch in batches:
            self._task_q.put((
                "run", job_id, state.gid, state.manifest_blob, delta_blob,
                delta, star_pair, triangle, backend, batch.tasks,
            ))

        def reduce_partial(message) -> int:
            nonlocal star_acc, pair_acc, tri_acc
            _, _, n_batches, star, pair, tri = message
            if star_acc is not None and star is not None:
                star_acc += np.asarray(star, dtype=np.int64)
            if pair_acc is not None and pair is not None:
                pair_acc += np.asarray(pair, dtype=np.int64)
            if tri_acc is not None and tri is not None:
                tri_acc += np.asarray(tri, dtype=np.int64)
            return n_batches

        self._collect_results(job_id, len(batches), reduce_partial, deadline=deadline)

        payload = (
            star_acc.tolist() if star_acc is not None else None,
            pair_acc.tolist() if pair_acc is not None else None,
            tri_acc.tolist() if tri_acc is not None else None,
        )
        if use_cache:
            self._results[cache_key] = payload
            while len(self._results) > RESULT_CACHE:
                self._results.popitem(last=False)
        return self._build_counters(payload, star_pair, triangle)

    # -- generic map jobs -------------------------------------------------
    def run_map(
        self,
        graph: TemporalGraph,
        fn: str,
        chunks: List,
        args: Tuple = (),
        *,
        delta: float = 0.0,
        backend: str = "python",
        deadline: Optional[float] = None,
    ) -> List:
        """Run a registered map function over ``chunks`` on the workers.

        The generic sibling of :meth:`run_batches` for algorithms whose
        work decomposition is not a HARE task cover — the sampling
        estimators farm their block chunks here.  ``fn`` names an entry
        of :data:`MAP_FUNCTIONS`; each worker resolves it by import and
        calls ``fn(graph, delta, args, chunk)`` against its attached
        zero-copy graph.  With ``backend="columnar"`` the per-δ
        edge-window table is published once and installed in every
        worker (:func:`repro.core.columnar_kernels.edge_window_ends`
        shipped via the delta-cache bundle), so no worker repeats the
        O(m log m) setup.

        Returns the per-chunk payloads **in chunk order** — map
        reductions are algorithm-specific and must stay canonical, so
        no owner-side merging happens here.
        """
        if fn not in MAP_FUNCTIONS:
            raise ValidationError(
                f"unknown map function {fn!r}; registered: {sorted(MAP_FUNCTIONS)}"
            )
        if backend not in ("python", "columnar"):
            raise ValidationError(
                f"backend must be 'python' or 'columnar', got {backend!r}"
            )
        if self.closed:
            raise ParallelExecutionError("worker pool is closed")
        chunks = list(chunks)
        if not chunks:
            return []
        with self._lock:
            self._ensure_workers()
            self._last_active = time.monotonic()
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceededError("pool map deadline expired before dispatch")
            state = self._ensure_published(
                graph, include_columnar=(backend == "columnar")
            )
            delta_blob = None
            if backend == "columnar":
                delta_blob = self._ensure_delta_tables(
                    graph, state, delta, star_pair=False,
                    window_bounds=False, edge_window=True,
                )
            args_blob = pickle.dumps(args)
            job_id = next(self._job_counter)
            self.stats["jobs"] += 1
            self.stats["batches"] += len(chunks)
            for index, chunk in enumerate(chunks):
                self._task_q.put((
                    "map", job_id, state.gid, state.manifest_blob, delta_blob,
                    delta, fn, args_blob, index, chunk,
                ))
            results: List = [None] * len(chunks)

            def store_payload(message) -> int:
                _, _, index, payload = message
                results[index] = payload
                return 1

            try:
                self._collect_results(
                    job_id, len(chunks), store_payload, deadline=deadline
                )
            finally:
                self._last_active = time.monotonic()
            return results

    def _abort_job(self, job_id: int) -> None:
        """Cancel a job: record it in the shared abort ring.

        Workers consult the ring before executing every queued task, so
        the job's remaining work is skipped rather than computed and
        discarded; any partials it already produced are stale messages
        that the next collection loop filters by job id.
        """
        with self._aborted.get_lock():
            self._aborted[self._abort_slot % _ABORT_RING] = job_id
            self._abort_slot += 1
        self.stats["jobs_aborted"] += 1

    def _collect_results(
        self, job_id: int, expected: int, handle, deadline: Optional[float] = None
    ) -> None:
        """Drain ``result_q`` for one job until ``expected`` units arrive.

        The shared liveness/stale-message protocol of both job kinds:
        poll with a timeout so dead workers are detected (the pool then
        closes and raises), skip partials left over from aborted jobs,
        and surface worker tracebacks as
        :class:`~repro.errors.ParallelExecutionError`.  ``handle`` is
        called with each of this job's payload messages and returns how
        many work units it accounted for.  An expired ``deadline``
        aborts the job (see :meth:`_abort_job`) and raises
        :class:`~repro.errors.DeadlineExceededError` — the workers stay
        healthy and the pool stays usable.
        """
        done = 0
        while done < expected:
            timeout = _POLL_SECONDS
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._abort_job(job_id)
                    raise DeadlineExceededError(
                        f"pool job {job_id} missed its deadline mid-flight "
                        f"({done}/{expected} work units collected)"
                    )
                timeout = min(_POLL_SECONDS, remaining)
            try:
                message = self._result_q.get(timeout=timeout)
            except queue.Empty:
                dead = [
                    (p.name, p.exitcode) for p in self._procs if not p.is_alive()
                ]
                if dead:
                    self._closed = True
                    raise ParallelExecutionError(
                        f"worker(s) {dead} died while executing job {job_id}"
                    )
                continue
            kind, msg_job = message[0], message[1]
            if msg_job != job_id:
                continue  # stale partial from an aborted job
            if kind == "err":
                raise ParallelExecutionError(f"pool worker failed:\n{message[2]}")
            done += handle(message)

    @staticmethod
    def _build_counters(payload, star_pair: bool, triangle: bool):
        star_data, pair_data, tri_data = payload
        star = StarCounter(star_data) if star_pair and star_data is not None else (
            StarCounter() if star_pair else None
        )
        pair = PairCounter(pair_data) if star_pair and pair_data is not None else (
            PairCounter() if star_pair else None
        )
        tri = TriangleCounter(tri_data, multiplicity=3) if triangle and tri_data is not None else (
            TriangleCounter(multiplicity=3) if triangle else None
        )
        return star, pair, tri


# ----------------------------------------------------------------------
# process-wide shared pools
# ----------------------------------------------------------------------

_SHARED_POOLS: Dict[Tuple[str, int], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(workers: int, start_method: Optional[str] = None) -> WorkerPool:
    """A process-wide :class:`WorkerPool` keyed by (method, workers).

    Created on first use and kept for the life of the process (workers
    are daemons; a finalizer reaps them at exit), so repeated
    CLI/service-style calls amortize pool startup automatically.  A
    pool that died (worker crash, explicit close) is transparently
    replaced.
    """
    from repro.parallel.executor import resolve_start_method

    method = resolve_start_method(start_method)
    key = (method, workers)
    with _SHARED_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(workers, start_method=method)
            _SHARED_POOLS[key] = pool
        return pool


def close_shared_pools() -> None:
    """Close every process-wide pool (tests and benchmark hygiene)."""
    with _SHARED_LOCK:
        for pool in _SHARED_POOLS.values():
            pool.close()
        _SHARED_POOLS.clear()


def close_all_pools() -> None:
    """Close every pool in the process — shared *and* directly owned.

    The shutdown half of :func:`install_signal_handlers`; also safe to
    call directly from daemon teardown paths.  Idempotent (closing a
    closed pool is a no-op).
    """
    close_shared_pools()
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


#: signum -> pid that installed the wrapper (idempotence per process).
_INSTALLED_SIGNALS: Dict[int, int] = {}


def install_signal_handlers(signals: Optional[Tuple[int, ...]] = None) -> None:
    """Shut every pool down cleanly when SIGTERM/SIGINT arrives.

    A signal death skips interpreter exit, so neither the pool
    finalizers nor the resource tracker's at-exit sweep run — a
    ``kill`` of a long-running daemon would leak every published
    ``/dev/shm`` segment and orphan the worker processes.  The
    installed handler closes all pools (:func:`close_all_pools`) and
    then *chains*: a previously installed callable handler is invoked
    (so ``SIGINT``'s default ``KeyboardInterrupt`` still fires), while
    a default-disposition signal is re-raised under ``SIG_DFL`` so the
    process still dies with the correct signal status.

    The handler is **fork-safe**: it remembers the installing PID and
    only closes pools when it fires in that exact process.  Forked
    children (fork-method workers, ``fork-per-call`` helpers — whom
    ``multiprocessing.Pool.terminate`` SIGTERMs as routine teardown)
    inherit both the handler and the parent's pool registry; running
    ``close_all_pools`` there would push stop sentinels onto the
    *shared* task queues and unlink the parent's live ``/dev/shm``
    segments, killing every sibling pool from the outside.  In a
    non-installing process the handler only chains.

    Idempotent per signal per process; only the main thread may call
    it (a :mod:`signal` restriction).
    """
    import signal as signal_module

    if signals is None:
        signals = (signal_module.SIGTERM, signal_module.SIGINT)
    owner_pid = os.getpid()
    for signum in signals:
        if _INSTALLED_SIGNALS.get(signum) == owner_pid:
            continue
        previous = signal_module.getsignal(signum)

        def _handler(num, frame, _previous=previous, _owner=owner_pid):
            if os.getpid() == _owner:
                close_all_pools()
            if callable(_previous):
                _previous(num, frame)
            elif _previous is not signal_module.SIG_IGN:
                signal_module.signal(num, signal_module.SIG_DFL)
                os.kill(os.getpid(), num)

        signal_module.signal(signum, _handler)
        _INSTALLED_SIGNALS[signum] = owner_pid
