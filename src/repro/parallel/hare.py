"""HARE: the hierarchical parallel counting entry points.

``hare_count`` is the parallel equivalent of
:func:`repro.core.api.count_motifs` with ``algorithm="fast"``: same
exact results (tested), produced by the two-level decomposition of
§IV-C.  ``hare_star_pair`` / ``hare_triangle`` expose the individual
passes for the paper's per-category benchmarks (HARE-Pair in Fig. 11).
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.counters import MotifCounts, PairCounter, StarCounter, TriangleCounter
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.executor import run_batches
from repro.parallel.scheduler import build_batches, partition_static

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.registry import CountRequest


def _prepare_batches(
    graph: TemporalGraph,
    workers: int,
    thrd: Optional[float],
    schedule: str,
    split_factor: int,
):
    batches = build_batches(graph, workers, thrd=thrd, split_factor=split_factor)
    if schedule == "static":
        batches = partition_static(batches, workers)
    return batches


def hare_count(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    categories: str = "all",
    split_factor: int = 4,
    backend: str = "python",
) -> MotifCounts:
    """Count all motifs with the HARE parallel framework.

    Parameters mirror :func:`repro.core.api.count_motifs`; see
    :func:`repro.parallel.scheduler.build_batches` for ``thrd`` and
    ``split_factor`` semantics.  ``backend`` selects the per-worker
    kernels (python loops or vectorized columnar).  Results are
    bit-identical to the serial FAST pass either way.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    star_pair = categories in ("all", "star", "pair", "star_pair")
    triangle = categories in ("all", "triangle")
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor)
    star, pair, tri = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=star_pair, triangle=triangle, backend=backend,
    )
    result = MotifCounts.from_counters(
        star, pair, tri, algorithm=f"hare[{workers}]", delta=delta,
        meta={"workers": workers, "schedule": schedule, "backend": backend},
    )
    return result.masked(categories)


def hare_count_request(request: "CountRequest") -> MotifCounts:
    """Registry adapter entry: run HARE from a resolved CountRequest."""
    backend = request.backend if request.backend in ("python", "columnar") else "python"
    return hare_count(
        request.graph,
        request.delta,
        workers=request.workers,
        thrd=request.thrd,
        schedule=request.schedule,
        categories=request.categories,
        backend=backend,
    )


def hare_star_pair(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    split_factor: int = 4,
    backend: str = "python",
) -> Tuple[StarCounter, PairCounter]:
    """Parallel FAST-Star pass (the paper's HARE-Pair workload)."""
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor)
    star, pair, _ = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=True, triangle=False, backend=backend,
    )
    assert star is not None and pair is not None
    return star, pair


def hare_triangle(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    split_factor: int = 4,
    backend: str = "python",
) -> TriangleCounter:
    """Parallel FAST-Tri pass."""
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor)
    _, _, tri = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=False, triangle=True, backend=backend,
    )
    assert tri is not None
    return tri
