"""HARE: the hierarchical parallel counting entry points.

``hare_count`` is the parallel equivalent of
:func:`repro.core.api.count_motifs` with ``algorithm="fast"``: same
exact results (tested), produced by the two-level decomposition of
§IV-C.  ``hare_star_pair`` / ``hare_triangle`` expose the individual
passes for the paper's per-category benchmarks (HARE-Pair in Fig. 11).

Every entry point accepts ``pool=`` (a persistent
:class:`~repro.parallel.pool.WorkerPool`; repeated calls against the
same graph then reuse the published shared-memory arrays, the memoized
batch plan, and — for identical requests — the raw-counter cache) and
``start_method=`` (``"fork"``/``"spawn"`` routing when no pool is
given; see :func:`repro.parallel.executor.run_batches`).
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.counters import MotifCounts, PairCounter, StarCounter, TriangleCounter
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.executor import resolved_runtime, run_batches
from repro.parallel.scheduler import build_batches, partition_static

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.registry import CountRequest
    from repro.parallel.pool import WorkerPool


def _prepare_batches(
    graph: TemporalGraph,
    workers: int,
    thrd: Optional[float],
    schedule: str,
    split_factor: int,
    pool: Optional["WorkerPool"] = None,
):
    if pool is not None:
        # The pool memoizes the decomposition per published graph, so
        # repeated requests skip the planning pass entirely.
        return pool.plan_batches(
            graph, workers, thrd=thrd, schedule=schedule, split_factor=split_factor
        )
    batches = build_batches(graph, workers, thrd=thrd, split_factor=split_factor)
    if schedule == "static":
        batches = partition_static(batches, workers)
    return batches


def hare_count(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    categories: str = "all",
    split_factor: int = 4,
    backend: str = "python",
    pool: Optional["WorkerPool"] = None,
    start_method: Optional[str] = None,
    deadline: Optional[float] = None,
) -> MotifCounts:
    """Count all motifs with the HARE parallel framework.

    Parameters mirror :func:`repro.core.api.count_motifs`; see
    :func:`repro.parallel.scheduler.build_batches` for ``thrd`` and
    ``split_factor`` semantics.  ``backend`` selects the per-worker
    kernels (python loops or vectorized columnar); ``pool`` reuses a
    persistent shared-memory worker pool.  Results are bit-identical
    to the serial FAST pass in every configuration.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    star_pair = categories in ("all", "star", "pair", "star_pair")
    triangle = categories in ("all", "triangle")
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor, pool)
    star, pair, tri = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=star_pair, triangle=triangle, backend=backend,
        pool=pool, start_method=start_method, deadline=deadline,
    )
    result = MotifCounts.from_counters(
        star, pair, tri, algorithm=f"hare[{workers}]", delta=delta,
        meta={
            "workers": workers,
            "schedule": schedule,
            "backend": backend,
            # The same decision run_batches routed on — provenance can
            # never claim "per-call" for a shared-pool execution.
            "runtime": resolved_runtime(
                pool, workers, start_method, has_work=bool(batches)
            ),
        },
    )
    return result.masked(categories)


def hare_count_request(request: "CountRequest") -> MotifCounts:
    """Registry adapter entry: run HARE from a resolved CountRequest."""
    backend = request.backend if request.backend in ("python", "columnar") else "python"
    return hare_count(
        request.graph,
        request.delta,
        workers=request.workers,
        thrd=request.thrd,
        schedule=request.schedule,
        categories=request.categories,
        backend=backend,
        pool=request.pool,
        start_method=request.start_method,
        deadline=request.deadline,
    )


def hare_star_pair(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    split_factor: int = 4,
    backend: str = "python",
    pool: Optional["WorkerPool"] = None,
    start_method: Optional[str] = None,
) -> Tuple[StarCounter, PairCounter]:
    """Parallel FAST-Star pass (the paper's HARE-Pair workload)."""
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor, pool)
    star, pair, _ = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=True, triangle=False, backend=backend,
        pool=pool, start_method=start_method,
    )
    assert star is not None and pair is not None
    return star, pair


def hare_triangle(
    graph: TemporalGraph,
    delta: float,
    *,
    workers: int = 2,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    split_factor: int = 4,
    backend: str = "python",
    pool: Optional["WorkerPool"] = None,
    start_method: Optional[str] = None,
) -> TriangleCounter:
    """Parallel FAST-Tri pass."""
    batches = _prepare_batches(graph, workers, thrd, schedule, split_factor, pool)
    _, _, tri = run_batches(
        graph, delta, batches, workers, schedule,
        star_pair=False, triangle=True, backend=backend,
        pool=pool, start_method=start_method,
    )
    assert tri is not None
    return tri
