"""The serving core: admission, coalescing, and execution.

:class:`MotifService` is the transport-independent heart of ``repro
serve`` — the asyncio daemon is a thin wire adapter over it, and tests
drive it directly with threads.  One service owns one
:class:`~repro.parallel.pool.WorkerPool` and one
:class:`~repro.serve.catalog.GraphCatalog`, and funnels every request
through three stages:

**Admission** (:meth:`MotifService.submit`, caller's thread).  Checks
the per-tenant quota and the global bounded queue (429-style
:class:`~repro.errors.QuotaExceededError` /
:class:`~repro.errors.BackpressureError`), converts the request's
``timeout`` into an absolute deadline, takes a catalog lease (the
snapshot the request will be answered on), and — the first dedupe —
attaches to an identical in-flight request instead of enqueuing a
second copy.  Returns a :class:`concurrent.futures.Future`.

**Batching** (dispatcher thread).  Drains the queue after a short
``batch_window``, groups compatible requests — same graph generation,
algorithm, backend, categories, seed/replication, params — and runs
each group as **one** :func:`~repro.core.api.count_motifs_sweep` over
the member δ values, on the shared pool.  N compatible requests pay
one graph publication, one plan, one worker dispatch per δ.

**Settlement.**  Every waiter's deadline is re-checked before its
future resolves (a result that arrives late is still a
:class:`~repro.errors.DeadlineExceededError`); group deadlines
propagate into the pool, which aborts expired jobs mid-flight instead
of finishing work nobody will read.

Identical *repeated* (not just concurrent) requests are the pool's
job: its version-stamped result cache answers them without touching
the workers, which is where the warm-cache throughput in
``BENCH_serve.json`` comes from.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.api import count_motifs_sweep
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    QuotaExceededError,
    ReproError,
)
from repro.serve.catalog import GraphCatalog, GraphLease


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment knobs of one :class:`MotifService`."""

    #: Worker processes in the service-owned pool.
    workers: int = 2
    #: Process start method for the pool (None: platform default).
    start_method: Optional[str] = None
    #: Seconds the dispatcher waits after waking before draining the
    #: queue, so a burst of compatible requests lands in one batch.
    batch_window: float = 0.002
    #: Bound on queued-or-running request *groups*; admission beyond it
    #: raises :class:`~repro.errors.BackpressureError` (HTTP 429).
    max_pending: int = 64
    #: Concurrent admitted requests allowed per tenant;
    #: :class:`~repro.errors.QuotaExceededError` beyond it.
    tenant_quota: int = 16
    #: Deadline applied when a request carries no ``timeout`` (seconds;
    #: ``None`` disables the default — requests then wait forever).
    default_timeout: Optional[float] = 30.0
    #: Suspend idle pool workers after this many seconds (see
    #: :class:`~repro.parallel.pool.WorkerPool`); ``None`` keeps them.
    idle_timeout: Optional[float] = None
    #: Consecutive cluster failures before a cluster-bound graph's
    #: circuit breaker opens (see
    #: :class:`~repro.distributed.health.CircuitBreaker`).
    breaker_threshold: int = 3
    #: Seconds an open breaker waits before half-opening for one trial.
    breaker_reset: float = 30.0
    #: Whether cluster-bound requests may fall back to local counting
    #: while the breaker is open (``False``: degraded requests raise
    #: :class:`~repro.errors.ClusterDegradedError` instead).
    cluster_fallback: bool = True

    def __post_init__(self) -> None:
        from repro.errors import ValidationError

        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.batch_window < 0:
            raise ValidationError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_pending < 1:
            raise ValidationError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.tenant_quota < 1:
            raise ValidationError(f"tenant_quota must be >= 1, got {self.tenant_quota}")
        if self.breaker_threshold < 1:
            raise ValidationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset < 0:
            raise ValidationError(
                f"breaker_reset must be >= 0, got {self.breaker_reset}"
            )


class _Waiter:
    """One admitted request: its future, quota bucket, and deadline."""

    __slots__ = ("future", "tenant", "deadline", "request_id")

    def __init__(self, future, tenant, deadline, request_id) -> None:
        self.future = future
        self.tenant = tenant
        self.deadline = deadline
        self.request_id = request_id


class _Pending:
    """One unique in-flight computation (possibly many waiters)."""

    __slots__ = ("key", "fields", "lease", "waiters", "running")

    def __init__(self, key, fields, lease: GraphLease) -> None:
        self.key = key
        self.fields = fields
        self.lease = lease
        self.waiters: List[_Waiter] = []
        self.running = False

    def effective_deadline(self) -> Optional[float]:
        """Latest waiter deadline — ``None`` if any waiter has none.

        The *max*: the computation should keep going as long as anyone
        admitted is still willing to wait for it.
        """
        deadlines = [w.deadline for w in self.waiters]
        if any(d is None for d in deadlines):
            return None
        return max(deadlines) if deadlines else None


def _dedup_key(name: str, version: int, fields: Dict) -> Tuple:
    """What makes two count requests the same computation."""
    return (
        name, version, fields["algorithm"], fields["categories"],
        fields["backend"], fields["seed"], fields["n_samples"],
        tuple(sorted(fields["params"].items())), float(fields["delta"]),
    )


class MotifService:
    """See the module docstring.  Thread-safe; one per daemon.

    ``pool`` injects an externally owned
    :class:`~repro.parallel.pool.WorkerPool` (it will not be closed by
    :meth:`close`); by default the service creates and owns one per
    its :class:`ServiceConfig`.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, pool=None) -> None:
        from repro.parallel.pool import WorkerPool

        self.config = config or ServiceConfig()
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(
            self.config.workers,
            start_method=self.config.start_method,
            idle_timeout=self.config.idle_timeout,
        )
        self.catalog = GraphCatalog(self.pool)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[_Pending] = []
        self._inflight: Dict[Tuple, _Pending] = {}
        self._tenant_inflight: Dict[str, int] = {}
        #: Graph name -> (cluster spec, packed source path or None).
        self._cluster_bindings: Dict[str, Tuple[str, Optional[str]]] = {}
        #: Graph name -> circuit breaker (cluster-bound graphs only).
        self._breakers: Dict[str, object] = {}
        self._closed = False
        self.stats: Dict[str, int] = {
            "requests": 0,
            "answered": 0,
            "errors": 0,
            "coalesced": 0,
            "executions": 0,
            "batched_deltas": 0,
            "rejected_quota": 0,
            "rejected_backpressure": 0,
            "deadline_misses": 0,
            "cluster_failures": 0,
            "cluster_fallbacks": 0,
            "cluster_degraded": 0,
        }
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="repro-serve-dispatch"
        )
        self._dispatcher.start()

    # -- catalog management (delegation sugar) --------------------------
    def add_graph(self, name: str, source, *, cluster=None) -> None:
        """Register a graph; static graphs are pinned into the pool.

        ``cluster`` binds the graph to a set of ``repro worker``
        daemons (``"host:port,..."``): exact counts on it run
        distributed (:mod:`repro.distributed`) instead of on the local
        pool — when ``source`` is a :class:`PackedGraph`, by shipping
        only its path so workers holding the file count by reference.
        Sampling requests still run locally (they do not decompose).
        """
        from repro.graph.temporal_graph import TemporalGraph
        from repro.storage.format import PackedGraph

        source_path = None
        if isinstance(source, PackedGraph):
            # Serve the packed file's mmap-backed graph; publication
            # below copies it into pool shared memory exactly like an
            # in-memory graph.
            source_path = source.path
            source = source.graph
        if cluster is not None:
            from repro.distributed.protocol import parse_cluster

            cluster = ",".join(parse_cluster(cluster))
        self.catalog.add(name, source)
        with self._lock:
            if cluster is not None:
                from repro.distributed.health import CircuitBreaker

                self._cluster_bindings[name] = (cluster, source_path)
                self._breakers[name] = CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    reset_after=self.config.breaker_reset,
                )
            else:
                self._cluster_bindings.pop(name, None)
                self._breakers.pop(name, None)
        if cluster is None and isinstance(source, TemporalGraph) and not self.pool.closed:
            # Static graphs never reload; publish (pinned) now so the
            # first request does not pay the copy.  Live sources are
            # auto-published per generation instead.  Cluster-bound
            # graphs skip the publish: their exact work runs remotely.
            self.pool.publish(source)

    # -- admission ------------------------------------------------------
    def submit(self, fields: Dict) -> "Future":
        """Admit one parsed ``count`` request; resolve it asynchronously.

        ``fields`` is the output of
        :func:`repro.serve.protocol.parse_count` (or an equivalent
        dict).  Raises the 429-style admission errors synchronously;
        execution errors surface through the returned future.
        """
        tenant = fields.get("tenant", "default")
        timeout = fields.get("timeout")
        if timeout is None:
            timeout = self.config.default_timeout
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        with self._cond:
            if self._closed:
                raise ReproError("service is shut down")
            self.stats["requests"] += 1
            held = self._tenant_inflight.get(tenant, 0)
            if held >= self.config.tenant_quota:
                self.stats["rejected_quota"] += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {held} requests in flight "
                    f"(quota {self.config.tenant_quota})"
                )
            lease = self.catalog.lease(fields["graph"])  # raises UnknownGraphError
            try:
                key = _dedup_key(lease.name, lease.version, fields)
                pending = self._inflight.get(key)
                waiter = _Waiter(Future(), tenant, deadline, fields.get("id"))
                if pending is not None:
                    # Identical request already queued or running:
                    # attach, drop the redundant lease.
                    lease.release()
                    pending.waiters.append(waiter)
                    self.stats["coalesced"] += 1
                else:
                    if len(self._inflight) >= self.config.max_pending:
                        self.stats["rejected_backpressure"] += 1
                        raise BackpressureError(
                            f"{len(self._inflight)} request groups pending "
                            f"(bound {self.config.max_pending}); retry later"
                        )
                    pending = _Pending(key, fields, lease)
                    lease = None  # ownership moved to pending
                    pending.waiters.append(waiter)
                    self._inflight[key] = pending
                    self._queue.append(pending)
                    self._cond.notify_all()
            except Exception:
                if lease is not None:
                    lease.release()
                raise
            self._tenant_inflight[tenant] = held + 1
            return waiter.future

    # -- dispatch -------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
            # Outside the lock: let a burst of concurrent submissions
            # land before draining, so they ride the same batch.
            if self.config.batch_window:
                time.sleep(self.config.batch_window)
            with self._cond:
                drained, self._queue = self._queue, []
                for pending in drained:
                    pending.running = True
            for group in self._group(drained):
                self._execute_group(group)

    @staticmethod
    def _group(drained: List[_Pending]) -> List[List[_Pending]]:
        """Partition a drain by everything but δ (order-preserving)."""
        groups: "Dict[Tuple, List[_Pending]]" = {}
        for pending in drained:
            groups.setdefault(pending.key[:-1], []).append(pending)
        return list(groups.values())

    def _execute_group(self, group: List[_Pending]) -> None:
        # Settle (and drop) members that expired while queued.
        live: List[_Pending] = []
        for pending in group:
            deadline = pending.effective_deadline()
            if deadline is not None and time.monotonic() >= deadline:
                self._settle_error(
                    pending,
                    DeadlineExceededError("request expired while queued"),
                )
            else:
                live.append(pending)
        if not live:
            return
        fields = live[0].fields
        deltas = sorted({float(p.fields["delta"]) for p in live})
        member_deadlines = [p.effective_deadline() for p in live]
        group_deadline = (
            None if any(d is None for d in member_deadlines)
            else max(member_deadlines)
        )
        with self._lock:
            binding = self._cluster_bindings.get(live[0].lease.name)
        try:
            sweep = self._run_group(live, fields, deltas, group_deadline, binding)
        except Exception as exc:
            for pending in live:
                self._settle_error(pending, exc)
            return
        with self._lock:
            self.stats["executions"] += 1
            self.stats["batched_deltas"] += len(deltas)
        for pending in live:
            self._settle_result(
                pending, sweep.get(fields["algorithm"], float(pending.fields["delta"]))
            )

    def _run_group(self, live, fields, deltas, group_deadline, binding):
        """One batched execution: local pool sweep, or the bound cluster."""
        from repro.core.registry import get_algorithm

        if binding is not None and get_algorithm(fields["algorithm"]).is_exact:
            return self._run_cluster_group(live, fields, deltas, group_deadline, binding)
        return count_motifs_sweep(
            live[0].lease.graph,
            deltas,
            algorithms=(fields["algorithm"],),
            categories=fields["categories"],
            workers=self.config.workers,
            seed=fields["seed"],
            n_samples=fields["n_samples"],
            backend=fields["backend"],
            pool=self.pool,
            deadline=group_deadline,
            **fields["params"],
        )

    def _run_cluster_group(self, live, fields, deltas, group_deadline, binding):
        """Cluster-bound exact counts, guarded by the graph's breaker.

        Distributed, one δ at a time (the shard plan is per-δ anyway);
        a packed source path travels instead of the graph so workers
        holding the file count by reference.  Consecutive
        :class:`~repro.errors.WorkerUnavailableError` failures open the
        graph's circuit breaker, and open-breaker (or just-failed)
        requests degrade to :meth:`_run_local_fallback` instead of
        hammering a dead cluster.
        """
        from repro.core.api import SweepResult, count_motifs
        from repro.errors import WorkerUnavailableError

        cluster, source_path = binding
        name = live[0].lease.name
        with self._lock:
            breaker = self._breakers.get(name)
        if breaker is not None and not breaker.allow():
            return self._run_local_fallback(
                live, fields, deltas, group_deadline, name, source_path,
                breaker, cause=None,
            )
        try:
            sweep = SweepResult()
            for delta in deltas:
                counts = count_motifs(
                    live[0].lease.graph if source_path is None else source_path,
                    delta,
                    algorithm=fields["algorithm"],
                    categories=fields["categories"],
                    backend=fields["backend"],
                    cluster=cluster,
                    deadline=group_deadline,
                    **fields["params"],
                )
                counts.meta.setdefault("cluster", {})["breaker_state"] = (
                    "closed" if breaker is None else breaker.state
                )
                sweep.add(fields["algorithm"], delta, counts)
        except WorkerUnavailableError as exc:
            with self._lock:
                self.stats["cluster_failures"] += 1
            if breaker is not None:
                breaker.record_failure()
            return self._run_local_fallback(
                live, fields, deltas, group_deadline, name, source_path,
                breaker, cause=exc,
            )
        if breaker is not None:
            breaker.record_success()
        return sweep

    def _run_local_fallback(
        self, live, fields, deltas, group_deadline, name, source_path,
        breaker, *, cause,
    ):
        """Graceful degradation for an unreachable cluster.

        When fallback is enabled and the graph's data is held locally —
        its packed ``.rgz`` on disk, or the in-memory catalog graph —
        the request is answered by local sharded counting (same exact
        counts: the repo-wide invariant).  Otherwise the typed
        :class:`~repro.errors.ClusterDegradedError` tells clients how
        long until the breaker half-opens.
        """
        import os

        from repro.core.api import SweepResult, count_motifs
        from repro.errors import ClusterDegradedError

        state = "closed" if breaker is None else breaker.state
        can_fall_back = self.config.cluster_fallback and (
            source_path is None or os.path.exists(source_path)
        )
        if can_fall_back:
            with self._lock:
                self.stats["cluster_fallbacks"] += 1
            sweep = SweepResult()
            for delta in deltas:
                counts = count_motifs(
                    live[0].lease.graph if source_path is None else source_path,
                    delta,
                    algorithm=fields["algorithm"],
                    categories=fields["categories"],
                    backend=fields["backend"],
                    num_shards=max(2, self.config.workers),
                    deadline=group_deadline,
                    **fields["params"],
                )
                counts.meta.setdefault("cluster", {}).update(
                    {"breaker_state": state, "degraded": True}
                )
                sweep.add(fields["algorithm"], delta, counts)
            return sweep
        with self._lock:
            self.stats["cluster_degraded"] += 1
        retry_after = 0.0 if breaker is None else breaker.retry_after()
        detail = "circuit breaker is open" if cause is None else str(cause)
        error = ClusterDegradedError(
            f"cluster for graph {name!r} is unavailable ({detail}); "
            f"retry in {retry_after:.1f}s",
            retry_after=retry_after,
        )
        if cause is not None:
            raise error from cause
        raise error

    # -- settlement -----------------------------------------------------
    def _settle_result(self, pending: _Pending, counts) -> None:
        with self._lock:
            self._retire(pending)
            now = time.monotonic()
            for waiter in pending.waiters:
                self._tenant_inflight[waiter.tenant] -= 1
                if waiter.deadline is not None and now >= waiter.deadline:
                    self.stats["deadline_misses"] += 1
                    self.stats["errors"] += 1
                    waiter.future.set_exception(DeadlineExceededError(
                        "result arrived after the request's deadline"
                    ))
                else:
                    self.stats["answered"] += 1
                    waiter.future.set_result(counts)

    def _settle_error(self, pending: _Pending, exc: BaseException) -> None:
        with self._lock:
            self._retire(pending)
            if isinstance(exc, DeadlineExceededError):
                self.stats["deadline_misses"] += len(pending.waiters)
            self.stats["errors"] += len(pending.waiters)
            for waiter in pending.waiters:
                self._tenant_inflight[waiter.tenant] -= 1
                waiter.future.set_exception(exc)

    def _retire(self, pending: _Pending) -> None:
        """Remove from the dedupe index and return the catalog lease."""
        if self._inflight.get(pending.key) is pending:
            del self._inflight[pending.key]
        pending.lease.release()

    # -- introspection / lifecycle -------------------------------------
    def describe_stats(self) -> Dict[str, object]:
        """JSON-safe merged counters: service + pool + catalog."""
        with self._lock:
            merged: Dict[str, object] = dict(self.stats)
        merged["pool"] = dict(self.pool.stats)
        merged["pool_workers"] = self.pool.workers
        merged["pool_suspended"] = self.pool.suspended
        merged["catalog"] = dict(self.catalog.stats)
        with self._lock:
            merged["cluster_graphs"] = sorted(self._cluster_bindings)
            merged["breakers"] = {
                name: breaker.describe()
                for name, breaker in sorted(self._breakers.items())
            }
        return merged

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain, stop the dispatcher, retire the catalog and pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join(timeout=30)
        # Settle anything still queued (submitted before close won).
        with self._lock:
            leftovers = list(self._queue)
            self._queue = []
        for pending in leftovers:
            self._settle_error(pending, ReproError("service is shut down"))
        self.catalog.close()
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "MotifService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
