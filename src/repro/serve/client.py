"""Blocking client for the ``repro serve`` daemon.

Speaks the unix-socket JSONL transport (see
:mod:`repro.serve.protocol`); one persistent connection, requests
answered in order.  Server-side failures re-raise as their original
:mod:`repro.errors` classes, so remote and local calls are
interchangeable:

.. code-block:: python

    with ServeClient("/run/repro.sock") as client:
        counts = client.count("wiki", delta=3600.0, algorithm="fast")
        counts.per_motif()  # a real MotifCounts, grids included

Thread-safe (one request on the wire at a time, guarded by a lock);
for high fan-in, open one client per thread instead.

A daemon restart mid-session is transparent: when the connection drops
between requests, :meth:`request` reconnects with a short exponential
backoff and resends — safe because every serve op is idempotent.  The
initial connect in ``__init__`` is still a single attempt, so pointing
the client at a dead socket fails fast.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Optional

from repro.core.counters import MotifCounts
from repro.distributed.health import RetryPolicy
from repro.errors import ReproError, ValidationError
from repro.serve.protocol import decode_counts, raise_from_response

#: Reconnect schedule for a dropped daemon connection: a handful of
#: quick attempts (50 ms, 100 ms, ... capped at 1 s) covers a daemon
#: restart without making a genuinely-dead server feel hung.
RECONNECT_POLICY = RetryPolicy(
    connect_timeout=10.0,
    max_attempts=5,
    backoff_base=0.05,
    backoff_max=1.0,
    jitter=0.0,
)


class ServeClient:
    """See the module docstring."""

    def __init__(
        self,
        socket_path: str,
        *,
        timeout: Optional[float] = 60.0,
        reconnect_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.socket_path = socket_path
        self._timeout = timeout
        self._policy = reconnect_policy or RECONNECT_POLICY
        #: Successful mid-session reconnects (a restarted daemon).
        self.reconnects = 0
        self._sock, self._file = self._connect()
        self._lock = threading.Lock()
        self._closed = False

    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ReproError(f"cannot connect to {self.socket_path!r}: {exc}") from exc
        return sock, sock.makefile("rb")

    def _teardown(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- plumbing -------------------------------------------------------
    def request(self, message: Dict) -> Dict:
        """One raw round-trip: returns the envelope or raises its error.

        A transport failure (send error, or the server closing the
        connection before answering) tears the socket down and retries
        on a fresh connection, up to the reconnect policy's budget.
        """
        data = json.dumps(message).encode() + b"\n"
        with self._lock:
            if self._closed:
                raise ReproError("client is closed")
            line = self._roundtrip(data)
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid response JSON: {exc}") from exc
        return raise_from_response(envelope)

    def _roundtrip(self, data: bytes) -> bytes:
        """Send one line, read one line; reconnect-and-resend on failure.

        Caller holds the lock.  Each serve op is a pure query, so
        resending after a dropped connection cannot double-apply
        anything server-side.
        """
        attempts = self._policy.max_attempts
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._policy.delay(attempt - 1, salt=self.socket_path))
                try:
                    self._sock, self._file = self._connect()
                except ReproError as exc:
                    if attempt == attempts - 1:
                        raise ReproError(
                            f"connection to {self.socket_path!r} failed and could not be "
                            f"re-established after {attempts} attempts: {exc}"
                        ) from exc
                    continue
                self.reconnects += 1
            try:
                self._sock.sendall(data)
                line = self._file.readline()
            except OSError as exc:
                self._teardown()
                if attempt == attempts - 1:
                    raise ReproError(
                        f"connection to {self.socket_path!r} failed: {exc}"
                    ) from exc
                continue
            if not line:
                self._teardown()
                if attempt == attempts - 1:
                    raise ReproError(
                        f"server at {self.socket_path!r} closed the connection"
                    )
                continue
            return line
        raise ReproError(f"connection to {self.socket_path!r} failed")  # pragma: no cover

    # -- ops ------------------------------------------------------------
    def count(
        self,
        graph: str,
        delta: float,
        *,
        algorithm: str = "fast",
        categories: str = "all",
        backend: str = "auto",
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        params: Optional[Dict] = None,
        tenant: str = "default",
        timeout: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> MotifCounts:
        """Count motifs on a catalog graph; mirrors
        :func:`repro.core.api.count_motifs` for the served knobs."""
        message: Dict = {
            "op": "count", "graph": graph, "delta": delta,
            "algorithm": algorithm, "categories": categories,
            "backend": backend, "tenant": tenant,
        }
        if seed is not None:
            message["seed"] = seed
        if n_samples is not None:
            message["n_samples"] = n_samples
        if params:
            message["params"] = params
        if timeout is not None:
            message["timeout"] = timeout
        if request_id is not None:
            message["id"] = request_id
        return decode_counts(self.request(message)["result"])

    def ping(self) -> Dict:
        return self.request({"op": "ping"})["result"]

    def stats(self) -> Dict:
        return self.request({"op": "stats"})["result"]

    def catalog(self) -> List[Dict]:
        return self.request({"op": "catalog"})["result"]["graphs"]

    def algorithms(self) -> List[Dict]:
        return self.request({"op": "algorithms"})["result"]["algorithms"]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
