"""Blocking client for the ``repro serve`` daemon.

Speaks the unix-socket JSONL transport (see
:mod:`repro.serve.protocol`); one persistent connection, requests
answered in order.  Server-side failures re-raise as their original
:mod:`repro.errors` classes, so remote and local calls are
interchangeable:

.. code-block:: python

    with ServeClient("/run/repro.sock") as client:
        counts = client.count("wiki", delta=3600.0, algorithm="fast")
        counts.per_motif()  # a real MotifCounts, grids included

Thread-safe (one request on the wire at a time, guarded by a lock);
for high fan-in, open one client per thread instead.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional

from repro.core.counters import MotifCounts
from repro.errors import ReproError, ValidationError
from repro.serve.protocol import decode_counts, raise_from_response


class ServeClient:
    """See the module docstring."""

    def __init__(self, socket_path: str, *, timeout: Optional[float] = 60.0) -> None:
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(socket_path)
        except OSError as exc:
            self._sock.close()
            raise ReproError(f"cannot connect to {socket_path!r}: {exc}") from exc
        self._file = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._closed = False

    # -- plumbing -------------------------------------------------------
    def request(self, message: Dict) -> Dict:
        """One raw round-trip: returns the envelope or raises its error."""
        data = json.dumps(message).encode() + b"\n"
        with self._lock:
            if self._closed:
                raise ReproError("client is closed")
            try:
                self._sock.sendall(data)
                line = self._file.readline()
            except OSError as exc:
                raise ReproError(f"connection to {self.socket_path!r} failed: {exc}") from exc
        if not line:
            raise ReproError(f"server at {self.socket_path!r} closed the connection")
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"invalid response JSON: {exc}") from exc
        return raise_from_response(envelope)

    # -- ops ------------------------------------------------------------
    def count(
        self,
        graph: str,
        delta: float,
        *,
        algorithm: str = "fast",
        categories: str = "all",
        backend: str = "auto",
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        params: Optional[Dict] = None,
        tenant: str = "default",
        timeout: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> MotifCounts:
        """Count motifs on a catalog graph; mirrors
        :func:`repro.core.api.count_motifs` for the served knobs."""
        message: Dict = {
            "op": "count", "graph": graph, "delta": delta,
            "algorithm": algorithm, "categories": categories,
            "backend": backend, "tenant": tenant,
        }
        if seed is not None:
            message["seed"] = seed
        if n_samples is not None:
            message["n_samples"] = n_samples
        if params:
            message["params"] = params
        if timeout is not None:
            message["timeout"] = timeout
        if request_id is not None:
            message["id"] = request_id
        return decode_counts(self.request(message)["result"])

    def ping(self) -> Dict:
        return self.request({"op": "ping"})["result"]

    def stats(self) -> Dict:
        return self.request({"op": "stats"})["result"]

    def catalog(self) -> List[Dict]:
        return self.request({"op": "catalog"})["result"]["graphs"]

    def algorithms(self) -> List[Dict]:
        return self.request({"op": "algorithms"})["result"]["algorithms"]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
