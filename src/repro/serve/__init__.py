"""``repro serve`` — the resident motif-counting service.

The serving tier over the counting engine: named graphs published to
shared memory once (:mod:`repro.serve.catalog`), compatible requests
coalesced into single pool runs (:mod:`repro.serve.service`), typed
protocol errors and quota/deadline enforcement
(:mod:`repro.serve.protocol`), exposed over unix-socket JSONL and HTTP
by an asyncio daemon (:mod:`repro.serve.daemon`) with a blocking
client (:mod:`repro.serve.client`).  Start one with ``repro serve``;
query with ``repro query`` or :class:`ServeClient`.
"""

from repro.serve.catalog import GraphCatalog, GraphLease
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon, run_daemon
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    canonical_counts_bytes,
    classify_error,
    decode_counts,
    encode_counts,
    error_response,
    ok_response,
    parse_count,
    raise_from_response,
)
from repro.serve.service import MotifService, ServiceConfig

__all__ = [
    "GraphCatalog",
    "GraphLease",
    "MotifService",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeDaemon",
    "ServiceConfig",
    "canonical_counts_bytes",
    "classify_error",
    "decode_counts",
    "encode_counts",
    "error_response",
    "ok_response",
    "parse_count",
    "raise_from_response",
    "run_daemon",
]
