"""Wire protocol of the ``repro serve`` daemon.

One protocol, two transports: newline-delimited JSON objects on the
unix socket (one request per line, one response per line, ordered), and
the same JSON bodies over a minimal HTTP/1.1 surface (``POST
/v1/count`` etc.) for curl-able deployments.  Everything here is pure
data — no sockets, no threads — so both the asyncio daemon and the
blocking client share a single codec, and the tests can exercise
round-trips without a running server.

Requests
--------
A request is a JSON object with an ``op``:

``count``
    ``{"op": "count", "graph": <catalog name>, "delta": <float>,
    "algorithm": "fast", ...}`` — optional knobs mirror
    :func:`repro.core.api.count_motifs` (``categories``, ``workers``,
    ``backend``, ``seed``, ``n_samples``, ``params``) plus serving
    fields: ``tenant`` (quota bucket, default ``"default"``),
    ``timeout`` (seconds; becomes a deadline that cancels pool work)
    and ``id`` (caller trace id, echoed back).
``ping`` / ``stats`` / ``catalog`` / ``algorithms``
    Introspection; ``catalog`` lists the named graphs and their
    versions, ``stats`` the service/pool counters.

Responses
---------
``{"ok": true, "id": ..., "result": ...}`` on success;
``{"ok": false, "id": ..., "error": {"code": ..., "status": ...,
"message": ...}}`` on failure, where ``code`` is a stable string from
:data:`ERROR_CODES` and ``status`` the matching HTTP status.  The
client re-raises the mapped :mod:`repro.errors` class, so catching
:class:`~repro.errors.QuotaExceededError` works identically against a
local call and a remote daemon.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.core.counters import MotifCounts
from repro.errors import (
    BackpressureError,
    ClusterDegradedError,
    DatasetError,
    DeadlineExceededError,
    GraphFormatError,
    ParallelExecutionError,
    QuotaExceededError,
    ReproError,
    UnknownGraphError,
    ValidationError,
)

#: Protocol revision, embedded in every response envelope.
PROTOCOL_VERSION = "repro.serve/1"

#: Exception -> (code, HTTP status), most specific first: the first
#: ``isinstance`` match wins, so subclasses must precede their bases
#: (everything precedes :class:`ReproError`).
ERROR_CODES: Tuple[Tuple[Type[BaseException], str, int], ...] = (
    (UnknownGraphError, "unknown_graph", 404),
    (DatasetError, "unknown_dataset", 404),
    (QuotaExceededError, "quota_exceeded", 429),
    (BackpressureError, "overloaded", 429),
    (DeadlineExceededError, "deadline_exceeded", 504),
    (ClusterDegradedError, "cluster_degraded", 503),
    (GraphFormatError, "bad_request", 400),
    (ValidationError, "bad_request", 400),
    (ParallelExecutionError, "execution_failed", 500),
    (ReproError, "error", 500),
)

#: code -> exception class the *client* re-raises.  Codes shared by
#: several classes resolve to the most general sensible one —
#: ``bad_request`` re-raises as :class:`ValidationError` (a
#: :class:`ValueError`), whatever sibling produced it server-side.
_CODE_TO_ERROR: Dict[str, Type[BaseException]] = {}
for _cls, _code, _ in ERROR_CODES:
    _CODE_TO_ERROR.setdefault(_code, _cls)
_CODE_TO_ERROR["bad_request"] = ValidationError

#: Fallback for non-repro exceptions (a daemon bug, not a bad request).
INTERNAL_ERROR = ("internal", 500)


def classify_error(exc: BaseException) -> Tuple[str, int]:
    """The ``(code, http_status)`` pair for an exception."""
    for cls, code, status in ERROR_CODES:
        if isinstance(exc, cls):
            return code, status
    return INTERNAL_ERROR


def error_response(exc: BaseException, request_id: Optional[str] = None) -> Dict:
    """The full failure envelope for an exception.

    Exceptions carrying a ``retry_after`` hint (an open circuit
    breaker's :class:`~repro.errors.ClusterDegradedError`) surface it
    as an extra error field, so clients — and HTTP adapters via the
    ``Retry-After`` header — know when to come back.
    """
    code, status = classify_error(exc)
    error: Dict = {"code": code, "status": status, "message": str(exc)}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = float(retry_after)
    return {
        "ok": False,
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "error": error,
    }


def ok_response(result: object, request_id: Optional[str] = None) -> Dict:
    """The success envelope around an op's result payload."""
    return {"ok": True, "version": PROTOCOL_VERSION, "id": request_id, "result": result}


def raise_from_response(response: Dict) -> Dict:
    """Client side: return a success envelope or re-raise its error.

    Unknown codes (a newer server) degrade to :class:`ReproError`
    rather than being swallowed.
    """
    if not isinstance(response, dict) or "ok" not in response:
        raise ValidationError(f"malformed response envelope: {response!r}")
    if response["ok"]:
        return response
    error = response.get("error") or {}
    cls = _CODE_TO_ERROR.get(error.get("code"), ReproError)
    message = error.get("message", "server error")
    if cls is ClusterDegradedError:
        raise cls(message, retry_after=float(error.get("retry_after", 0.0)))
    raise cls(message)


# ----------------------------------------------------------------------
# MotifCounts <-> JSON
# ----------------------------------------------------------------------

def _json_safe(value):
    """Coerce numpy scalars/arrays hiding in ``meta`` to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def encode_counts(counts: MotifCounts) -> Dict:
    """A :class:`~repro.core.counters.MotifCounts` as a JSON-safe dict.

    The full unified result — grid, stderr, exactness, timing, and
    provenance meta — so a served response carries everything a direct
    :func:`~repro.core.api.count_motifs` call returns.
    """
    return {
        "format": "repro.serve.counts/1",
        "algorithm": counts.algorithm,
        "delta": float(counts.delta),
        "exact": bool(counts.is_exact),
        "grid": counts.grid.tolist(),
        "stderr": None if counts.stderr is None else counts.stderr.tolist(),
        "elapsed_seconds": float(counts.elapsed_seconds),
        "phase_seconds": {k: float(v) for k, v in counts.phase_seconds.items()},
        "meta": _json_safe(counts.meta),
    }


def decode_counts(payload: Dict) -> MotifCounts:
    """Rebuild a :class:`MotifCounts` from :func:`encode_counts` output."""
    if not isinstance(payload, dict) or payload.get("format") != "repro.serve.counts/1":
        raise ValidationError(
            f"unknown counts payload format {payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    grid = np.asarray(payload["grid"])
    if payload["exact"]:
        grid = grid.astype(np.int64)
    else:
        grid = grid.astype(np.float64)
    stderr = payload.get("stderr")
    return MotifCounts(
        grid=grid,
        algorithm=payload["algorithm"],
        delta=payload["delta"],
        elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        meta=dict(payload.get("meta") or {}),
        stderr=None if stderr is None else np.asarray(stderr, dtype=np.float64),
        phase_seconds=dict(payload.get("phase_seconds") or {}),
        is_exact=payload["exact"],
    )


def canonical_counts_bytes(counts: MotifCounts) -> bytes:
    """The *answer* part of a result, canonically serialized.

    What "byte-identical" means across transports: the counts grid,
    stderr, δ and exactness — everything that is a function of the
    query — with provenance (timing, cache hits, and the algorithm
    *label*, which the parallel runtimes decorate with the worker
    count, e.g. ``fast`` -> ``hare[2]``) excluded, since a served
    answer legitimately records a different execution path than a
    direct call.
    """
    return json.dumps(
        {
            "delta": float(counts.delta),
            "exact": bool(counts.is_exact),
            "grid": counts.grid.tolist(),
            "stderr": None if counts.stderr is None else counts.stderr.tolist(),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


# ----------------------------------------------------------------------
# count-op parsing
# ----------------------------------------------------------------------

#: Fields a ``count`` op accepts (anything else is a typo -> 400).
#: ``workers`` is deliberately absent: parallelism degree is a service
#: deployment choice, not a per-request knob.
COUNT_FIELDS = frozenset({
    "op", "graph", "delta", "algorithm", "categories", "backend",
    "seed", "n_samples", "params", "tenant", "timeout", "id",
})


def parse_count(message: Dict) -> Dict:
    """Validate a ``count`` request's shape; return normalized fields.

    Shape checks only — semantic validation (unknown algorithm, bad
    δ, capability violations) is the registry's job and surfaces as
    :class:`~repro.errors.ValidationError` from execution, mapped to
    the same ``bad_request`` code.
    """
    unknown = set(message) - COUNT_FIELDS
    if unknown:
        raise ValidationError(f"unknown count field(s) {sorted(unknown)}")
    graph = message.get("graph")
    if not isinstance(graph, str) or not graph:
        raise ValidationError("count requires a 'graph' catalog name")
    if "delta" not in message:
        raise ValidationError("count requires a 'delta'")
    try:
        delta = float(message["delta"])
    except (TypeError, ValueError):
        raise ValidationError(f"delta must be a number, got {message['delta']!r}") from None
    params = message.get("params")
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ValidationError(f"params must be an object, got {params!r}")
    timeout = message.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ValidationError(f"timeout must be a number, got {timeout!r}") from None
        if timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {timeout}")
    tenant = message.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ValidationError(f"tenant must be a non-empty string, got {tenant!r}")
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ValidationError(f"id must be a string, got {request_id!r}")
    return {
        "graph": graph,
        "delta": delta,
        "algorithm": message.get("algorithm", "fast"),
        "categories": message.get("categories", "all"),
        "backend": message.get("backend", "auto"),
        "seed": message.get("seed"),
        "n_samples": message.get("n_samples"),
        "params": params,
        "tenant": tenant,
        "timeout": timeout,
        "id": request_id,
    }
