"""The serving daemon's multi-tenant graph catalog.

Named graphs, loaded once, shared by every request.  Two kinds of
source back a name:

* a **static** :class:`~repro.graph.temporal_graph.TemporalGraph` —
  the common case, a dataset loaded at daemon startup;
* a **live** source — anything with a ``version`` property and a
  ``live_graph()`` method (a
  :class:`~repro.graph.stream_store.StreamingEdgeStore`, or a
  :class:`~repro.core.streaming.StreamingMotifEngine`, whose store is
  unwrapped automatically).  When the source's version advances, the
  catalog *reloads gracefully*: the next lease snapshots the new
  graph, while requests already holding the previous generation finish
  on their old snapshot.  A retired generation's shared-memory
  segments are reaped the moment its last lease is returned (via
  :meth:`~repro.parallel.pool.WorkerPool.release`, which unlinks the
  pool-published segments; POSIX keeps the physical pages alive for
  any worker still mapping them).

Leases are the whole consistency story: :meth:`GraphCatalog.lease`
hands out a refcounted ``(graph, version)`` snapshot, and every
released lease gives the catalog a chance to reap.  The registry's
version-stamped caches do the rest — a new generation is a new graph
object with a new version, so no stale plan or cached count can ever
be served for it.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.errors import UnknownGraphError, ValidationError
from repro.graph.temporal_graph import TemporalGraph


class GraphLease:
    """A refcounted hold on one catalog generation's snapshot.

    Context-manager friendly; release is idempotent.  The snapshot is
    immutable — holding a lease across a source reload simply means
    finishing on the old graph.
    """

    __slots__ = ("name", "graph", "version", "_entry", "_released")

    def __init__(self, name: str, graph: TemporalGraph, version: int, entry) -> None:
        self.name = name
        self.graph = graph
        self.version = version
        self._entry = entry
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._entry._return(self.version)

    def __enter__(self) -> "GraphLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "held"
        return f"GraphLease({self.name!r}, version={self.version}, {state})"


class _Generation:
    """One snapshot of one named graph: the unit of reaping."""

    __slots__ = ("graph", "version", "active", "retired")

    def __init__(self, graph: TemporalGraph, version: int) -> None:
        self.graph = graph
        self.version = version
        self.active = 0
        self.retired = False


class _Entry:
    """Owner record for one catalog name (shares the catalog's lock)."""

    def __init__(self, catalog: "GraphCatalog", name: str, graph, source) -> None:
        self._catalog = catalog
        self.name = name
        self.source = source
        self.current = _Generation(graph, getattr(graph, "version", 0))
        #: Retired generations still pinned by in-flight leases.
        self.draining: List[_Generation] = []
        self.reloads = 0

    # -- called with the catalog lock held -----------------------------
    def refresh(self) -> None:
        """Snapshot the source again if its version advanced."""
        if self.source is None:
            return
        if self.source.version == self.current.version:
            return
        old = self.current
        graph = self.source.live_graph()
        self.current = _Generation(graph, self.source.version)
        self.reloads += 1
        old.retired = True
        if old.active == 0:
            self._catalog._reap(old)
        else:
            self.draining.append(old)

    def lease(self) -> GraphLease:
        self.refresh()
        gen = self.current
        gen.active += 1
        return GraphLease(self.name, gen.graph, gen.version, self)

    def retire_all(self) -> None:
        """Retire the live generation too (catalog remove/close)."""
        gen = self.current
        gen.retired = True
        if gen.active == 0:
            self._catalog._reap(gen)
        else:
            self.draining.append(gen)

    # -- called from GraphLease.release (takes the lock itself) --------
    def _return(self, version: int) -> None:
        with self._catalog._lock:
            for gen in [self.current] + self.draining:
                if gen.version == version:
                    gen.active -= 1
                    if gen.retired and gen.active == 0:
                        self._catalog._reap(gen)
                        if gen in self.draining:
                            self.draining.remove(gen)
                    return


class GraphCatalog:
    """Named graphs for the serving layer (see the module docstring).

    ``pool`` is the :class:`~repro.parallel.pool.WorkerPool` whose
    shared-memory publications the catalog owns the lifecycle of:
    reaping a generation releases its segments there.  Without a pool
    the catalog is pure bookkeeping (useful in tests and serial
    deployments).
    """

    def __init__(self, pool=None) -> None:
        self._pool = pool
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {"reloads": 0, "generations_reaped": 0}

    # -- management -----------------------------------------------------
    def add(self, name: str, source) -> None:
        """Register ``source`` as ``name``.

        Accepts a static :class:`TemporalGraph`, a live store, or an
        open :class:`~repro.storage.format.PackedGraph` (an on-disk
        packed graph: its mmap-backed graph object is what gets
        served; the mapping stays pinned by the arrays themselves).
        """
        if not name or not isinstance(name, str):
            raise ValidationError(f"graph name must be a non-empty string, got {name!r}")
        from repro.storage.format import PackedGraph

        if isinstance(source, PackedGraph):
            source = source.graph
        store = getattr(source, "store", source)
        is_live = hasattr(store, "live_graph") and hasattr(store, "version")
        if not is_live and not isinstance(source, TemporalGraph):
            raise ValidationError(
                f"catalog source must be a TemporalGraph or expose "
                f"live_graph()/version, got {type(source).__name__}"
            )
        with self._lock:
            if name in self._entries:
                raise ValidationError(f"graph {name!r} is already in the catalog")
            if is_live:
                self._entries[name] = _Entry(self, name, store.live_graph(), store)
                # live_graph() snapshots may lag behind version bumps
                # that happened mid-construction; stamp what we saw.
                self._entries[name].current.version = store.version
            else:
                self._entries[name] = _Entry(self, name, source, None)

    def remove(self, name: str) -> None:
        """Drop a name; its generations reap as their leases return."""
        with self._lock:
            entry = self._entries.pop(name, None)
            if entry is None:
                raise UnknownGraphError(f"graph {name!r} is not in the catalog")
            entry.retire_all()

    def close(self) -> None:
        """Retire every entry (drain-and-reap); the catalog stays usable."""
        with self._lock:
            for name in list(self._entries):
                entry = self._entries.pop(name)
                entry.retire_all()

    # -- queries --------------------------------------------------------
    def lease(self, name: str) -> GraphLease:
        """A refcounted snapshot of ``name`` (refreshing live sources)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise UnknownGraphError(f"graph {name!r} is not in the catalog")
            before = entry.reloads
            lease = entry.lease()
            self.stats["reloads"] += entry.reloads - before
            return lease

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def describe(self) -> List[Dict[str, object]]:
        """JSON-safe summary rows for the ``catalog`` protocol op."""
        with self._lock:
            rows = []
            for name in sorted(self._entries):
                entry = self._entries[name]
                entry.refresh()
                gen = entry.current
                rows.append({
                    "name": name,
                    "version": gen.version,
                    "nodes": gen.graph.num_nodes,
                    "edges": gen.graph.num_edges,
                    "live": entry.source is not None,
                    "reloads": entry.reloads,
                    "draining": len(entry.draining),
                })
            return rows

    # -- internals ------------------------------------------------------
    def _reap(self, gen: _Generation) -> None:
        """Release a dead generation's pool segments (lock held)."""
        if self._pool is not None and not getattr(self._pool, "closed", True):
            self._pool.release(gen.graph)
        gen.graph = None  # type: ignore[assignment]
        self.stats["generations_reaped"] += 1
