"""The asyncio wire layer of ``repro serve``.

:class:`ServeDaemon` adapts one :class:`~repro.serve.service.MotifService`
onto two transports sharing the protocol of
:mod:`repro.serve.protocol`:

* a **unix socket** speaking newline-delimited JSON — one request
  object per line, one response envelope per line, in order.  The
  native transport: lowest overhead, trivially replayable, what
  :class:`~repro.serve.client.ServeClient` and the benchmark use.
* optional **HTTP/1.1** on a TCP port: ``POST /v1/count`` with the
  same JSON body, plus ``GET /v1/ping|stats|catalog|algorithms``.
  Hand-rolled request parsing (no third-party dependency) that
  supports exactly what a JSON API needs: a request line, headers,
  ``Content-Length`` bodies, and keep-alive.

The event loop never blocks on counting: :meth:`MotifService.submit`
returns a :class:`concurrent.futures.Future` resolved by the service's
dispatcher thread, and the daemon awaits it via
:func:`asyncio.wrap_future`.  Slow queries therefore never stall other
connections — admission control, not the transport, is what bounds
concurrency.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.core.counters import MotifCounts
from repro.core.registry import algorithm_specs
from repro.errors import ValidationError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    encode_counts,
    error_response,
    ok_response,
    parse_count,
)
from repro.serve.service import MotifService

#: HTTP reason phrases for the statuses the protocol maps onto.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    429: "Too Many Requests", 500: "Internal Server Error", 504: "Gateway Timeout",
}

#: Upper bound on one request line/body (1 MiB — far above any query).
_MAX_MESSAGE = 1 << 20


class ServeDaemon:
    """One service, exposed on a unix socket and/or an HTTP port."""

    def __init__(
        self,
        service: MotifService,
        *,
        socket_path: Optional[str] = None,
        http_host: Optional[str] = None,
        http_port: Optional[int] = None,
    ) -> None:
        if socket_path is None and http_port is None:
            raise ValidationError("daemon needs a socket_path and/or an http_port")
        self.service = service
        self.socket_path = socket_path
        self.http_host = http_host or "127.0.0.1"
        self.http_port = http_port
        self._servers: list = []

    # -- op dispatch (transport-independent) ----------------------------
    async def handle_message(self, message: Dict) -> Dict:
        """Execute one protocol request; always returns an envelope."""
        request_id = message.get("id") if isinstance(message, dict) else None
        try:
            if not isinstance(message, dict):
                raise ValidationError(f"request must be a JSON object, got {message!r}")
            op = message.get("op")
            if op == "count":
                fields = parse_count(message)
                future = self.service.submit(fields)
                counts: MotifCounts = await asyncio.wrap_future(future)
                return ok_response(encode_counts(counts), fields["id"])
            if op == "ping":
                return ok_response(
                    {"pong": True, "version": PROTOCOL_VERSION}, request_id
                )
            if op == "stats":
                return ok_response(self.service.describe_stats(), request_id)
            if op == "catalog":
                return ok_response({"graphs": self.service.catalog.describe()}, request_id)
            if op == "algorithms":
                return ok_response(
                    {
                        "algorithms": [
                            {
                                "name": spec.name,
                                "exact": spec.is_exact,
                                "parallel": spec.parallel,
                                "backends": list(spec.backends),
                                "streaming": spec.streaming,
                                "params": {k: repr(v) for k, v in sorted(spec.params.items())},
                            }
                            for spec in algorithm_specs()
                        ]
                    },
                    request_id,
                )
            raise ValidationError(f"unknown op {op!r}")
        except BaseException as exc:  # noqa: BLE001 - every failure becomes an envelope
            if isinstance(exc, (KeyboardInterrupt, SystemExit, asyncio.CancelledError)):
                raise
            return error_response(exc, request_id)

    # -- unix-socket JSONL transport ------------------------------------
    async def _handle_jsonl(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError as exc:
                    envelope = error_response(ValidationError(f"invalid JSON: {exc}"))
                else:
                    envelope = await self.handle_message(message)
                writer.write(json.dumps(envelope).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- HTTP transport -------------------------------------------------
    @staticmethod
    def _http_routes(method: str, path: str) -> Optional[str]:
        """Map an HTTP request target onto a protocol op."""
        if method == "POST" and path in ("/v1/count", "/count"):
            return "count"
        if method == "GET" and path in ("/v1/ping", "/ping"):
            return "ping"
        if method == "GET" and path in ("/v1/stats", "/stats"):
            return "stats"
        if method == "GET" and path in ("/v1/catalog", "/catalog"):
            return "catalog"
        if method == "GET" and path in ("/v1/algorithms", "/algorithms"):
            return "algorithms"
        return None

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ValidationError(f"malformed request line {request_line!r}") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_MESSAGE:
            raise ValidationError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    async def _handle_http(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_http_request(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except ValidationError as exc:
                    self._write_http(writer, 400, error_response(exc))
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                op = self._http_routes(method, path)
                if op is None:
                    envelope = error_response(
                        ValidationError(f"no route for {method} {path}")
                    )
                    status = 405 if method not in ("GET", "POST") else 404
                    envelope["error"]["status"] = status
                else:
                    if op == "count":
                        try:
                            message = json.loads(body or b"{}")
                            if not isinstance(message, dict):
                                raise ValidationError("body must be a JSON object")
                            message["op"] = "count"
                        except json.JSONDecodeError as exc:
                            message = None
                            envelope = error_response(
                                ValidationError(f"invalid JSON body: {exc}")
                            )
                        if message is not None:
                            envelope = await self.handle_message(message)
                    else:
                        envelope = await self.handle_message({"op": op})
                    status = 200 if envelope["ok"] else envelope["error"]["status"]
                self._write_http(writer, status, envelope)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    def _write_http(writer: asyncio.StreamWriter, status: int, envelope: Dict) -> None:
        payload = json.dumps(envelope).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + payload)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind every configured transport (idempotent per call site)."""
        if self.socket_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_jsonl, path=self.socket_path, limit=_MAX_MESSAGE,
            ))
        if self.http_port is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_http, host=self.http_host, port=self.http_port,
                limit=_MAX_MESSAGE,
            ))

    @property
    def http_address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) — resolves port 0 to the real one."""
        for server in self._servers:
            for sock in server.sockets:
                name = sock.getsockname()
                if isinstance(name, tuple):
                    return name[0], name[1]
        return None

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []

    async def serve_forever(self) -> None:
        """Start and serve until cancelled; stops transports on the way out."""
        await self.start()
        try:
            await asyncio.gather(*(s.serve_forever() for s in self._servers))
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()


def run_daemon(
    service: MotifService,
    *,
    socket_path: Optional[str] = None,
    http_host: Optional[str] = None,
    http_port: Optional[int] = None,
) -> None:
    """Blocking entry point used by ``repro serve``.

    Installs the pool signal handlers
    (:func:`repro.parallel.pool.install_signal_handlers`) so SIGTERM /
    Ctrl-C shuts the workers down and unlinks every shm segment before
    the process dies, then runs the event loop until interrupted.
    """
    from repro.parallel.pool import install_signal_handlers

    install_signal_handlers()
    daemon = ServeDaemon(
        service,
        socket_path=socket_path,
        http_host=http_host,
        http_port=http_port,
    )
    try:
        asyncio.run(daemon.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        service.close()
