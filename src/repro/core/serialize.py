"""Serialisation of motif-count results (JSON and CSV).

Benchmark sweeps and downstream pipelines need durable results; this
module round-trips :class:`~repro.core.counters.MotifCounts` with full
metadata.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Union

from repro.core.counters import MotifCounts
from repro.core.motifs import ALL_MOTIFS, MOTIFS_BY_NAME
from repro.errors import ValidationError

PathLike = Union[str, os.PathLike]


def counts_to_json(counts: MotifCounts) -> str:
    """Serialise counts + metadata to a JSON string."""
    return json.dumps(
        {
            "format": "repro.motif_counts/1",
            "algorithm": counts.algorithm,
            "delta": counts.delta,
            "elapsed_seconds": counts.elapsed_seconds,
            "exact": counts.is_exact,
            "counts": counts.per_motif(),
        },
        indent=2,
        sort_keys=True,
    )


def counts_from_json(text: str) -> MotifCounts:
    """Parse a JSON document produced by :func:`counts_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid JSON: {exc}") from exc
    if payload.get("format") != "repro.motif_counts/1":
        raise ValidationError(f"unknown format {payload.get('format')!r}")
    per_motif = payload["counts"]
    unknown = set(per_motif) - set(MOTIFS_BY_NAME)
    if unknown:
        raise ValidationError(f"unknown motif names: {sorted(unknown)}")
    result = MotifCounts.from_dict(per_motif, algorithm=payload.get("algorithm", "?"))
    result.delta = payload.get("delta", 0.0)
    result.elapsed_seconds = payload.get("elapsed_seconds", 0.0)
    return result


def save_counts(counts: MotifCounts, path: PathLike) -> None:
    """Write counts to ``path`` as JSON."""
    with open(path, "w") as handle:
        handle.write(counts_to_json(counts) + "\n")


def load_counts(path: PathLike) -> MotifCounts:
    """Read counts written by :func:`save_counts`."""
    with open(path) as handle:
        return counts_from_json(handle.read())


def counts_to_csv(counts: MotifCounts) -> str:
    """Render counts as CSV rows ``motif,row,col,category,count``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["motif", "row", "col", "category", "count"])
    for motif in ALL_MOTIFS:
        writer.writerow(
            [
                motif.name,
                motif.row,
                motif.col,
                motif.category.value,
                counts.get(motif.row, motif.col),
            ]
        )
    return buffer.getvalue()
