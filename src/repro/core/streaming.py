"""The streaming motif engine: incremental sliding-window counting.

:class:`StreamingMotifEngine` is the reference streaming backend
behind ``algorithm="fast"`` (obtained via
:func:`repro.core.registry.open_stream`).  It composes the two halves
of the ingest/count layer split:

* the mutable :class:`~repro.graph.stream_store.StreamingEdgeStore`
  owns the live edge multiset (append, sliding-window evict, time
  slices);
* the pure diff kernels of :mod:`repro.core.stream_kernels` turn each
  dirty time range into raw-counter increments, reusing the batch
  python/columnar kernels (and the HARE pool for large micro-batches)
  unchanged.

Per accepted batch the engine recounts only the edges whose δ-window
intersects the dirty range — two slices around the batch's time span
on ingest, two slices around the eviction cutoff on expiry — instead
of the whole window, which is what makes checkpoints cheap (see
``benchmarks/bench_stream.py`` for the measured speedup over naive
per-checkpoint recounts).

Checkpoints are **bit-identical to a batch recount**: at any
checkpoint, ``counts`` equals
``count_motifs(TemporalGraph(engine.live_edges()), delta)`` exactly,
including timestamp-tie resolution (property-tested across python and
columnar kernels).

>>> from repro.core.registry import StreamRequest, open_stream
>>> engine = open_stream(StreamRequest(delta=5.0, window=50.0))
>>> engine.ingest([(0, 1, 0), (1, 0, 2), (0, 1, 4)])
3
>>> cp = engine.checkpoint()
>>> cp.counts.total(), cp.edges_live
(1, 3)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.counters import MotifCounts
from repro.core.registry import StreamRequest
from repro.errors import CheckpointCorruptError, ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.core.stream_kernels import (
    RawCounts,
    apply_diff,
    count_slice_raw,
    project_raw,
    zero_raw,
)
from repro.graph.stream_store import StreamingEdgeStore

Edge = Tuple[Hashable, Hashable, float]

#: The three wall-clock phases every checkpoint reports.
PHASES = ("ingest", "expire", "count")


@dataclass
class Checkpoint:
    """One emitted snapshot of the streaming counts.

    ``counts`` is a regular :class:`~repro.core.counters.MotifCounts`
    whose ``phase_seconds`` holds the wall-clock split *since the
    previous checkpoint* (``ingest`` = store appends, ``expire`` =
    sliding-window eviction, ``count`` = slice building + kernels), so
    the existing ``dominant_phase`` reporting works unchanged.
    """

    seq: int
    counts: MotifCounts
    t_latest: Optional[float]
    watermark: Optional[float]
    edges_seen: int
    edges_live: int
    edges_expired: int
    edges_dropped_late: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def dominant_phase(self) -> Optional[Tuple[str, float]]:
        """Delegates to the counts' phase report."""
        return self.counts.dominant_phase()

    def as_dict(self, per_motif: bool = False) -> Dict[str, object]:
        """JSON-ready summary (the ``repro stream`` line format)."""
        dominant = self.dominant_phase()
        payload: Dict[str, object] = {
            "checkpoint": self.seq,
            "t_latest": self.t_latest,
            "watermark": self.watermark,
            "edges_seen": self.edges_seen,
            "edges_live": self.edges_live,
            "edges_expired": self.edges_expired,
            "edges_dropped_late": self.edges_dropped_late,
            "total": self.counts.total(),
            "backend": self.counts.backend,
            "phase_seconds": dict(self.phase_seconds),
            "dominant_phase": None if dominant is None else dominant[0],
        }
        if per_motif:
            payload["counts"] = self.counts.per_motif()
        return payload


class StreamingMotifEngine:
    """Incremental exact motif counting over an edge stream.

    Construct through :func:`repro.core.registry.open_stream` (which
    capability-checks the :class:`StreamRequest`); direct construction
    with a hand-built request is supported for tests.

    The three public verbs:

    * :meth:`ingest` — accept a micro-batch of ``(u, v, t)`` edges,
      update counts incrementally, expire the window;
    * :meth:`checkpoint` — project the running raw counters into a
      :class:`Checkpoint` (cheap: no recount);
    * :meth:`replay` — drive a whole edge iterable through
      micro-batches, yielding a checkpoint every
      ``checkpoint_every`` edges.
    """

    def __init__(self, request: StreamRequest) -> None:
        self.request = request
        self.store = StreamingEdgeStore()
        self._totals: RawCounts = zero_raw()
        self._phase: Dict[str, float] = {name: 0.0 for name in PHASES}
        self._phase_at_checkpoint: Dict[str, float] = dict(self._phase)
        self._num_checkpoints = 0
        #: Resident worker pool for large micro-batches; created
        #: lazily (or adopted from ``request.pool``) and kept for the
        #: engine's lifetime so parallel dirty slices stop paying
        #: fork-per-batch startup.
        self._pool = request.pool
        self._owns_pool = False

    # ------------------------------------------------------------------
    # counting plumbing
    # ------------------------------------------------------------------
    def _parallel_pool(self):
        """The resident pool, creating the engine-owned one on demand."""
        if self._pool is None:
            from repro.parallel.pool import WorkerPool

            self._pool = WorkerPool(
                self.request.workers, start_method=self.request.start_method
            )
            self._owns_pool = True
        return self._pool

    def close(self) -> None:
        """Shut down the engine-owned worker pool (if one was created).

        Idempotent; also runs on garbage collection via the pool's own
        finalizer, but explicit closing (or using the engine as a
        context manager) releases the worker processes and their
        shared-memory segments promptly.  A pool passed in through the
        request is the caller's to close and is left running.
        """
        if self._owns_pool and self._pool is not None:
            self._pool.close()
        self._pool = self.request.pool
        self._owns_pool = False

    def __enter__(self) -> "StreamingMotifEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _count_range(self, t_lo: Optional[float], t_hi: Optional[float]) -> RawCounts:
        """Raw counters of the live slice ``[t_lo, t_hi)`` (count phase)."""
        request = self.request
        tick = time.perf_counter()
        graph = self.store.slice_graph(t_lo, t_hi)
        raw = count_slice_raw(
            graph,
            request.delta,
            star_pair=request.wants_star_pair,
            triangle=request.wants_triangle,
            backend=request.backend,
            workers=request.workers,
            parallel_min_edges=request.parallel_min_edges,
            # Invoked only when count_slice_raw decides a slice is
            # parallel-worthy — the threshold lives there, and the
            # engine's resident pool is created on first such slice.
            pool_factory=self._parallel_pool,
        )
        self._phase["count"] += time.perf_counter() - tick
        return raw

    # ------------------------------------------------------------------
    # ingest / expire
    # ------------------------------------------------------------------
    def ingest(self, edges: Iterable[Edge]) -> int:
        """Accept a micro-batch of edges; return how many were accepted.

        Counts update by the dirty-range diff identities of
        :mod:`repro.core.stream_kernels`: only the slice
        ``[min_batch_t - delta, +inf)`` is recounted on arrival, and
        only ``(-inf, cutoff + delta)`` on window expiry.  Late edges
        (below the watermark) and self-loops are dropped by the store
        and never touch the counters.
        """
        batch: List[Edge] = list(edges)
        if not batch:
            return 0
        watermark = self.store.watermark
        timely = []
        for record in batch:
            try:
                t = record[2]
            except (TypeError, IndexError) as exc:
                raise ValidationError(
                    f"edge records must be (u, v, t) triples, got {record!r}"
                ) from exc
            if watermark is None or t >= watermark:
                timely.append(t)
        if not timely:
            # Nothing countable: still route through the store so late
            # arrivals are tallied (and malformed records rejected).
            tick = time.perf_counter()
            accepted = self.store.extend(batch)
            self._phase["ingest"] += time.perf_counter() - tick
            return accepted

        delta = self.request.delta
        dirty_lo = min(timely) - delta
        before = self._count_range(dirty_lo, None)
        tick = time.perf_counter()
        accepted = self.store.extend(batch)
        self._phase["ingest"] += time.perf_counter() - tick
        after = self._count_range(dirty_lo, None)
        apply_diff(self._totals, after, before)
        self._expire()
        return accepted

    def _expire(self) -> None:
        """Slide the window forward and subtract expired triples."""
        window = self.request.window
        t_latest = self.store.t_latest
        if window is None or t_latest is None:
            return
        cutoff = t_latest - window
        watermark = self.store.watermark
        if watermark is not None and cutoff <= watermark:
            return
        earliest = self.store.t_earliest
        if earliest is None or earliest >= cutoff:
            # Nothing to evict yet: advance the watermark (late-drop
            # semantics) without paying for a recount.
            tick = time.perf_counter()
            self.store.evict_before(cutoff)
            self._phase["expire"] += time.perf_counter() - tick
            return
        dirty_hi = cutoff + self.request.delta
        before = self._count_range(None, dirty_hi)
        tick = time.perf_counter()
        evicted = self.store.evict_before(cutoff)
        self._phase["expire"] += time.perf_counter() - tick
        if evicted:
            after = self._count_range(None, dirty_hi)
            apply_diff(self._totals, after, before)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Project the running counters into a :class:`Checkpoint`.

        Cheap — raw totals are maintained incrementally, so this is a
        counter projection, not a recount.  The checkpoint's
        ``phase_seconds`` covers the work since the previous
        checkpoint (the per-checkpoint cost split the stream CLI
        emits).
        """
        request = self.request
        phase_seconds = {
            name: self._phase[name] - self._phase_at_checkpoint[name]
            for name in PHASES
        }
        self._phase_at_checkpoint = dict(self._phase)
        self._num_checkpoints += 1
        counts = self.counts()
        counts.phase_seconds = phase_seconds
        counts.elapsed_seconds = sum(phase_seconds.values())
        counts.meta.update(
            {
                "backend": request.backend,
                "window": request.window,
                "workers": request.workers,
                "checkpoint": self._num_checkpoints,
            }
        )
        return Checkpoint(
            seq=self._num_checkpoints,
            counts=counts,
            t_latest=self.store.t_latest,
            watermark=self.store.watermark,
            edges_seen=self.store.num_seen,
            edges_live=self.store.num_live,
            edges_expired=self.store.num_evicted,
            edges_dropped_late=self.store.num_dropped_late,
            phase_seconds=phase_seconds,
        )

    def replay(
        self,
        edges: Iterable[Edge],
        *,
        checkpoint_every: Optional[int] = None,
        batch_edges: Optional[int] = None,
    ) -> Iterator[Checkpoint]:
        """Drive an edge iterable through the engine, yielding checkpoints.

        ``checkpoint_every`` edges (default: the request's) separate
        consecutive checkpoints; ``batch_edges`` (default: one batch
        per checkpoint) sets the micro-batch granularity within a
        checkpoint interval.  A final checkpoint covering any trailing
        partial interval is always emitted when edges were processed.
        """
        every = checkpoint_every or self.request.checkpoint_every
        batch_size = min(batch_edges or every, every)
        buffer: List[Edge] = []
        since_checkpoint = 0
        for edge in edges:
            buffer.append(edge)
            if len(buffer) >= batch_size:
                self.ingest(buffer)
                since_checkpoint += len(buffer)
                buffer = []
                if since_checkpoint >= every:
                    yield self.checkpoint()
                    since_checkpoint = 0
        if buffer:
            self.ingest(buffer)
            since_checkpoint += len(buffer)
        if since_checkpoint:
            yield self.checkpoint()

    # ------------------------------------------------------------------
    # crash-safe checkpoints
    # ------------------------------------------------------------------
    def records_consumed(self) -> int:
        """Input records routed through the store so far.

        Accepted + late-dropped + self-loop-dropped — i.e. the exact
        prefix length of the input stream this engine has consumed,
        which is what a resumed replay skips.
        """
        store = self.store
        return store.num_seen + store.num_dropped_late + store.num_self_loops_dropped

    def checkpoint_to(self, directory) -> str:
        """Commit a crash-safe checkpoint into ``directory``.

        Writes the live window as a canonical ``.rgz`` snapshot plus a
        CRC'd journal of engine state (see
        :mod:`repro.storage.checkpoint` for the format and the
        crash-ordering guarantees); returns the journal path.  Cheap
        relative to counting: one sort of the live window plus two
        sequential file writes, no recount.
        """
        from repro.storage import checkpoint as ckpt

        store = self.store
        src, dst, t = store.slice_arrays(None, None)  # arrival order
        # Canonical (t, arrival) order: a stable sort on t keeps equal
        # timestamps in arrival order, so the snapshot fixes exactly
        # the tie-break a resume must reproduce.
        order = np.argsort(t, kind="stable")
        graph = TemporalGraph.from_canonical_arrays(
            np.ascontiguousarray(src[order]),
            np.ascontiguousarray(dst[order]),
            np.ascontiguousarray(t[order]),
            num_nodes=store.num_nodes,
        )
        request = self.request
        state = {
            "config": {
                "delta": request.delta,
                "window": request.window,
                "algorithm": request.algorithm,
                "categories": request.categories,
                "backend": request.backend,
            },
            "store": store.snapshot_state(),
            "engine": {
                "totals": [arr.tolist() for arr in self._totals],
                "checkpoints": self._num_checkpoints,
            },
            "progress": {"records_consumed": self.records_consumed()},
        }
        return ckpt.write_checkpoint(
            directory, seq=self._num_checkpoints, graph=graph, state=state
        )

    @classmethod
    def resume_from(
        cls, directory, request: Optional[StreamRequest] = None
    ) -> "StreamingMotifEngine":
        """Rebuild an engine from the checkpoint committed in ``directory``.

        With ``request=None`` the stream config is taken from the
        journal (execution knobs — workers, batch sizes — take their
        defaults).  A provided ``request`` must agree with the journal
        on every answer-shaping field (δ, window, algorithm,
        categories); backend and parallelism may differ freely because
        counts are bit-identical across them.  Corruption anywhere
        raises :class:`~repro.errors.CheckpointCorruptError` before any
        engine state exists — there is no partial resume.
        """
        from repro.storage import checkpoint as ckpt

        data = ckpt.read_checkpoint(directory)
        config = data["config"]
        if request is None:
            request = StreamRequest(
                delta=config["delta"],
                window=config["window"],
                algorithm=config["algorithm"],
                categories=config["categories"],
                backend=config["backend"],
            )
        else:
            mismatches = [
                f"{key}: checkpoint {config[key]!r} != request {getattr(request, key)!r}"
                for key in ("delta", "window", "algorithm", "categories")
                if config[key] != getattr(request, key)
            ]
            if mismatches:
                raise ValidationError(
                    "cannot resume: the checkpoint was written under a "
                    "different stream config (" + "; ".join(mismatches) + ")"
                )

        src, dst, t = data["snapshot_arrays"]
        store_state = data["store"]
        try:
            store = StreamingEdgeStore.restore(
                labels=store_state["labels"],
                src=src, dst=dst, t=t,
                watermark=store_state["watermark"],
                t_latest=store_state["t_latest"],
                num_evicted=store_state["num_evicted"],
                num_dropped_late=store_state["num_dropped_late"],
                num_self_loops_dropped=store_state["num_self_loops_dropped"],
                version=store_state["version"],
            )
        except ValidationError as exc:
            raise CheckpointCorruptError(
                f"{ckpt.journal_path(directory)}: inconsistent checkpoint "
                f"state: {exc}"
            ) from exc
        totals = tuple(
            np.array(col, dtype=np.int64) for col in data["engine"]["totals"]
        )

        engine = cls(request)
        engine.store = store
        engine._totals = totals
        engine._num_checkpoints = int(data["engine"]["checkpoints"])
        return engine

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def live_edges(self) -> List[Edge]:
        """Live ``(u, v, t)`` triples in arrival order (recount oracle)."""
        return self.store.live_edges()

    def counts(self) -> MotifCounts:
        """Current counts without advancing the checkpoint sequence."""
        request = self.request
        counts = project_raw(
            self._totals,
            star_pair=request.wants_star_pair,
            triangle=request.wants_triangle,
            delta=request.delta,
        ).masked(request.categories)
        counts.algorithm = f"stream[{request.algorithm}]"
        return counts
