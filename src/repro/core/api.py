"""Unified counting entry point, dispatching over the algorithm registry.

:func:`count_motifs` is the one-call public API.  Since the registry
redesign it is a thin shim: the keyword signature (kept for
compatibility with every pre-registry call site) is packed into a
:class:`~repro.core.registry.CountRequest` and handed to
:func:`~repro.core.registry.execute`, which dispatches to whichever
:func:`~repro.core.registry.register_algorithm`-decorated backend the
request names — the paper's FAST/HARE or any of the six baselines.

:func:`count_motifs_sweep` batches the multi-δ / multi-algorithm grid
of runs every benchmark needs, returning a :class:`SweepResult`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.counters import MotifCounts
from repro.core.registry import (
    CATEGORIES,
    CountRequest,
    StreamRequest,
    available_algorithms,
    execute,
    open_stream,
)
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

def __getattr__(name: str):
    # Compatibility: ``from repro.core.api import ALGORITHMS`` resolves
    # lazily to the live registry (PEP 562), so importing repro does not
    # force adapter registration and later registrations are visible.
    if name == "ALGORITHMS":
        return available_algorithms()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALGORITHMS",
    "CATEGORIES",
    "StreamRequest",
    "SweepResult",
    "count_motifs",
    "count_motifs_sweep",
    "open_stream",
    "stream_motifs",
]


def count_motifs(
    graph: Union[TemporalGraph, CountRequest],
    delta: Optional[float] = None,
    *,
    algorithm: str = "fast",
    categories: str = "all",
    workers: int = 1,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    seed: Optional[int] = None,
    n_samples: Optional[int] = None,
    backend: str = "auto",
    pool: Optional[object] = None,
    start_method: Optional[str] = None,
    request_id: Optional[str] = None,
    deadline: Optional[float] = None,
    source: Optional[str] = None,
    shard_budget: Optional[int] = None,
    num_shards: Optional[int] = None,
    shard_boundaries: Optional[Sequence[int]] = None,
    cluster: Optional[str] = None,
    **params: object,
) -> MotifCounts:
    """Count 2- and 3-node, 3-edge δ-temporal motifs (Problem 1).

    Parameters
    ----------
    graph:
        Input temporal graph — or a ready-made
        :class:`~repro.core.registry.CountRequest`, in which case every
        other argument must be left at its default.  Also accepts an
        open :class:`~repro.storage.format.PackedGraph` or a path to a
        packed file (``repro pack`` output), equivalent to passing
        ``source=`` with ``graph=None``.
    delta:
        Time constraint δ, in the timestamps' unit.
    algorithm:
        Any registered algorithm name: ``"fast"`` (the paper's
        FAST-Star + FAST-Tri, default), ``"ex"``, ``"bruteforce"``,
        ``"bt"``, ``"twoscent"``, or the sampling estimators ``"bts"``
        and ``"ews"``.  See
        :func:`repro.core.registry.available_algorithms`.
    categories:
        Restrict counting to ``"star"``, ``"pair"``, ``"triangle"`` or
        ``"star_pair"``; ``"all"`` (default) counts everything.  Cells
        outside the selection are zero in the returned grid.
    workers:
        Degree of parallelism.  ``1`` runs serially in-process; ``> 1``
        runs the algorithm's parallel mode (HARE for FAST, time slabs
        for EX, block farming for BTS) and is rejected for
        serial-only algorithms.
    thrd:
        HARE's degree threshold for intra-node parallelism.  ``None``
        uses the paper's default: the minimum degree among the top-20
        highest-degree nodes.
    schedule:
        ``"dynamic"`` (default) or ``"static"`` task scheduling, the
        OpenMP analogy of §IV-C.
    seed:
        RNG seed for sampling algorithms (default 0).
    n_samples:
        Sampling algorithms only: number of independent replicates to
        average (default 3); the result's ``stderr`` grid holds the
        standard error of the mean across replicates.
    backend:
        ``"columnar"`` runs vectorized NumPy kernels over the columnar
        edge store, ``"python"`` the interpreted per-edge loops, and
        ``"auto"`` (default) the fastest backend the chosen algorithm
        implements.  Counts are identical either way; the effective
        choice is recorded in ``result.meta["backend"]``.
    pool:
        A persistent :class:`~repro.parallel.pool.WorkerPool` for
        parallel algorithms: repeated calls against the same graph
        reuse the published shared-memory arrays, the memoized HARE
        plan, and (for identical requests) the raw-counter cache,
        instead of forking a fresh process pool per call.
    start_method:
        Process start method for parallel execution without a pool
        (``"fork"``/``"spawn"``); default honours the
        ``REPRO_START_METHOD`` environment variable, then the
        platform.  Counts are identical across methods.
    request_id:
        Optional caller-assigned trace id, recorded in
        ``result.meta["request_id"]`` (the serving layer threads its
        wire-level ids through here).  Never affects results.
    deadline:
        Optional absolute :func:`time.monotonic` instant after which
        the call raises :class:`~repro.errors.DeadlineExceededError`
        instead of finishing; pool-backed runs abort mid-flight.
    source:
        Path to a packed graph file to count instead of ``graph``
        (opened zero-copy through ``mmap``); pass ``graph=None``.
    shard_budget:
        Maximum own edges per time shard: exact algorithms run through
        the out-of-core shard-halo union of
        :mod:`repro.storage.sharded` with peak memory proportional to
        this budget.  Results are bit-identical to the in-memory path.
    num_shards:
        Alternative cut mode: split the canonical edge sequence into
        that many near-equal shards instead of budgeting edges.  At
        most one of ``shard_budget`` / ``num_shards`` /
        ``shard_boundaries`` may be given.
    shard_boundaries:
        Explicit interior canonical-edge-id cut points (strictly
        increasing) — full control over where the shard-halo union
        cuts; the equivalence property tests randomize over these.
    cluster:
        Comma-separated ``host:port`` addresses of ``repro worker``
        daemons: exact algorithms run the shard plan *distributed*
        across them (:mod:`repro.distributed`), with locality-aware
        placement, retried/speculative dispatch under exactly-once
        accounting, and results bit-identical to the serial shard-halo
        union.  Combine with any one cut mode above (default: four
        shards per worker).  Sampling estimators run whole-graph
        locally, as with sharding.
    params:
        Algorithm-specific extras declared in the registry, e.g.
        ``q=0.3, window_factor=5.0`` for BTS or ``p=0.01, q=1.0`` for
        EWS.

    Returns
    -------
    MotifCounts
        The unified result: counts with ``is_exact``, ``stderr`` (for
        sampling algorithms), ``elapsed_seconds``, ``phase_seconds``
        and provenance metadata filled in.
    """
    if isinstance(graph, (str, os.PathLike)):
        # Path sugar: count_motifs("graph.rgz", delta) == source=.
        if source is not None:
            raise ValidationError("pass a packed path as graph OR source, not both")
        graph, source = None, os.fspath(graph)
    elif graph is not None and not isinstance(graph, (TemporalGraph, CountRequest)):
        # An open PackedGraph (duck-typed to avoid importing storage
        # on every count): count its mmap-backed graph object.
        inner = getattr(graph, "graph", None)
        if isinstance(inner, TemporalGraph):
            graph = inner
    if isinstance(graph, CountRequest):
        overrides = {
            "delta": delta is not None,
            "algorithm": algorithm != "fast",
            "categories": categories != "all",
            "workers": workers != 1,
            "thrd": thrd is not None,
            "schedule": schedule != "dynamic",
            "seed": seed is not None,
            "n_samples": n_samples is not None,
            "backend": backend != "auto",
            "pool": pool is not None,
            "start_method": start_method is not None,
            "request_id": request_id is not None,
            "deadline": deadline is not None,
            "source": source is not None,
            "shard_budget": shard_budget is not None,
            "num_shards": num_shards is not None,
            "shard_boundaries": shard_boundaries is not None,
            "cluster": cluster is not None,
            "params": bool(params),
        }
        given = sorted(name for name, set_ in overrides.items() if set_)
        if given:
            raise ValidationError(
                f"count_motifs(request) takes no other arguments (got {given}); "
                "set them on the CountRequest instead"
            )
        return execute(graph)
    request = CountRequest(
        graph=graph,
        delta=delta,
        algorithm=algorithm,
        categories=categories,
        workers=workers,
        thrd=thrd,
        schedule=schedule,
        seed=seed,
        n_samples=n_samples,
        backend=backend,
        pool=pool,
        start_method=start_method,
        request_id=request_id,
        deadline=deadline,
        source=source,
        shard_budget=shard_budget,
        num_shards=num_shards,
        shard_boundaries=None if shard_boundaries is None else tuple(shard_boundaries),
        cluster=cluster,
        params=dict(params),
    )
    return execute(request)


def stream_motifs(
    edges,
    delta: float,
    *,
    window: Optional[float] = None,
    algorithm: str = "fast",
    categories: str = "all",
    backend: str = "auto",
    workers: int = 1,
    checkpoint_every: int = 10_000,
    batch_edges: Optional[int] = None,
    **params: object,
):
    """Replay an edge iterable and yield per-checkpoint counts.

    The one-call streaming API: builds a
    :class:`~repro.core.registry.StreamRequest`, opens the incremental
    engine through the registry (:func:`~repro.core.registry.open_stream`)
    and drives ``edges`` through it, yielding a
    :class:`~repro.core.streaming.Checkpoint` every
    ``checkpoint_every`` edges (plus a final one for any trailing
    partial interval).  Checkpoint counts are bit-identical to a batch
    :func:`count_motifs` recount of the engine's live edge set.

    Parameters mirror :func:`count_motifs` where they overlap;
    ``window`` is the sliding-window width (``None`` = append-only)
    and ``batch_edges`` the ingest micro-batch size (default: one
    batch per checkpoint interval).

    >>> from repro.core.api import stream_motifs
    >>> edges = [(0, 1, t) for t in range(6)]
    >>> [cp.counts.total() for cp in stream_motifs(edges, 10, checkpoint_every=3)]
    [1, 20]
    """
    request = StreamRequest(
        delta=delta,
        window=window,
        algorithm=algorithm,
        categories=categories,
        backend=backend,
        workers=workers,
        checkpoint_every=checkpoint_every,
        params=dict(params),
    )
    # Plain function returning the replay generator (not a generator
    # function): validation errors surface at the call site, exactly
    # like count_motifs.
    engine = open_stream(request)
    return engine.replay(edges, batch_edges=batch_edges)


@dataclass
class SweepResult:
    """Results of a multi-δ / multi-algorithm sweep.

    Iterates in run order (algorithms outer, deltas inner); lookup by
    ``(algorithm, delta)`` via :meth:`get`.
    """

    keys: List[Tuple[str, float]] = field(default_factory=list)
    results: List[MotifCounts] = field(default_factory=list)

    def add(self, algorithm: str, delta: float, result: MotifCounts) -> None:
        self.keys.append((algorithm, delta))
        self.results.append(result)

    def get(self, algorithm: str, delta: float) -> MotifCounts:
        """The result of one (algorithm, δ) cell of the sweep."""
        for key, result in zip(self.keys, self.results):
            if key == (algorithm, delta):
                return result
        raise ValidationError(
            f"no sweep result for ({algorithm!r}, {delta!r}); ran {self.keys}"
        )

    def elapsed(self, algorithm: str) -> List[float]:
        """Wall-clock seconds of one algorithm's runs, in δ order."""
        return [
            result.elapsed_seconds
            for key, result in zip(self.keys, self.results)
            if key[0] == algorithm
        ]

    def phase_report(self) -> List[Dict[str, object]]:
        """Per-run provenance: backend and dominant phase of every cell.

        One dict per sweep cell (run order) with ``algorithm``,
        ``delta``, ``backend``, ``elapsed_seconds``, ``phase_seconds``
        and the ``dominant_phase`` pair — what benchmark drivers print
        to show which backend/phase the runtime went to.
        """
        report: List[Dict[str, object]] = []
        for (algorithm, delta), result in zip(self.keys, self.results):
            report.append(
                {
                    "algorithm": algorithm,
                    "delta": delta,
                    "backend": result.backend,
                    "elapsed_seconds": result.elapsed_seconds,
                    "phase_seconds": dict(result.phase_seconds),
                    "dominant_phase": result.dominant_phase(),
                }
            )
        return report

    def __iter__(self) -> Iterator[MotifCounts]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def count_motifs_sweep(
    graph: TemporalGraph,
    deltas: Sequence[float],
    algorithms: Sequence[str] = ("fast",),
    *,
    categories: str = "all",
    workers: int = 1,
    thrd: Optional[float] = None,
    schedule: str = "dynamic",
    seed: Optional[int] = None,
    n_samples: Optional[int] = None,
    backend: str = "auto",
    pool: Optional[object] = None,
    start_method: Optional[str] = None,
    deadline: Optional[float] = None,
    **params: object,
) -> SweepResult:
    """Run every (algorithm, δ) combination and collect the results.

    This is the batch shape the ``bench_*`` experiments need — one
    graph, several δ values, several algorithms — without hand-rolled
    double loops.  Algorithm-specific ``params`` are forwarded only to
    the algorithms that declare them, so mixed sweeps like
    ``algorithms=("fast", "bts"), q=0.5`` work.

    With ``workers > 1`` and at least one pool-runtime algorithm in
    the sweep (the HARE family — currently ``fast``), the whole sweep
    executes on one persistent
    :class:`~repro.parallel.pool.WorkerPool` — the one passed as
    ``pool=``, or a sweep-owned pool created (and closed) here — so
    the graph is published to shared memory once and every such cell
    amortizes the startup the per-call fork path would repay per run.
    (EX and BTS run their own fork-only farming and ignore the pool.)
    """
    from repro.core.registry import get_algorithm

    if not deltas:
        raise ValidationError("deltas must be non-empty")
    if not algorithms:
        raise ValidationError("algorithms must be non-empty")
    specs = [get_algorithm(name) for name in algorithms]
    # A param must be meaningful to at least one algorithm in the sweep;
    # otherwise it is a typo and silently dropping it would hide it.
    orphaned = [
        key for key in params if not any(key in spec.params for spec in specs)
    ]
    if orphaned:
        raise ValidationError(
            f"parameter(s) {sorted(orphaned)} are accepted by none of "
            f"{tuple(algorithms)}"
        )
    own_pool = None
    if pool is None and workers > 1 and any(spec.pool_runtime for spec in specs):
        from repro.parallel.pool import WorkerPool

        pool = own_pool = WorkerPool(workers, start_method=start_method)
    sweep = SweepResult()
    try:
        for spec in specs:
            accepted: Dict[str, object] = {
                key: value for key, value in params.items() if key in spec.params
            }
            for delta in deltas:
                request = CountRequest(
                    graph=graph,
                    delta=delta,
                    algorithm=spec.name,
                    categories=categories,
                    workers=workers if spec.parallel else 1,
                    thrd=thrd,
                    schedule=schedule,
                    seed=seed if not spec.is_exact else None,
                    n_samples=n_samples if not spec.is_exact else None,
                    backend=backend,
                    pool=pool if spec.pool_runtime else None,
                    start_method=start_method,
                    deadline=deadline,
                    params=accepted,
                )
                sweep.add(spec.name, delta, execute(request))
    finally:
        if own_pool is not None:
            own_pool.close()
    return sweep
