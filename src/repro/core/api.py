"""Unified counting entry point.

:func:`count_motifs` is the one-call public API: it runs the requested
algorithm (FAST by default), assembles the 6×6 grid, and records
timing metadata.  Parallel execution routes through
:mod:`repro.parallel.hare`; baseline algorithms route through
:mod:`repro.baselines`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.counters import MotifCounts
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: Algorithms selectable through :func:`count_motifs`.
ALGORITHMS = ("fast", "ex", "bruteforce")

#: Motif-category selections.
CATEGORIES = ("all", "star", "pair", "triangle", "star_pair")


def count_motifs(
    graph: TemporalGraph,
    delta: float,
    *,
    algorithm: str = "fast",
    categories: str = "all",
    workers: int = 1,
    thrd: Optional[int] = None,
    schedule: str = "dynamic",
) -> MotifCounts:
    """Count 2- and 3-node, 3-edge δ-temporal motifs (Problem 1).

    Parameters
    ----------
    graph:
        Input temporal graph.
    delta:
        Time constraint δ, in the timestamps' unit.
    algorithm:
        ``"fast"`` (the paper's FAST-Star + FAST-Tri, default),
        ``"ex"`` (the Paranjape et al. baseline), or ``"bruteforce"``
        (reference enumeration; small graphs only).
    categories:
        Restrict counting to ``"star"``, ``"pair"``, ``"triangle"`` or
        ``"star_pair"``; ``"all"`` (default) counts everything.  Cells
        outside the selection are zero in the returned grid.
    workers:
        Degree of parallelism.  ``1`` runs serially in-process;
        ``> 1`` runs the HARE hierarchical parallel framework (FAST)
        or the time-slab parallel variant (EX).
    thrd:
        HARE's degree threshold for intra-node parallelism.  ``None``
        uses the paper's default: the minimum degree among the top-20
        highest-degree nodes.
    schedule:
        ``"dynamic"`` (default) or ``"static"`` task scheduling, the
        OpenMP analogy of §IV-C.

    Returns
    -------
    MotifCounts
        Exact counts (for exact algorithms) with ``elapsed_seconds``
        and algorithm metadata filled in.
    """
    if algorithm not in ALGORITHMS:
        raise ValidationError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if categories not in CATEGORIES:
        raise ValidationError(f"unknown categories {categories!r}; choose from {CATEGORIES}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")

    start = time.perf_counter()
    if algorithm == "bruteforce":
        result = _bruteforce(graph, delta, categories)
    elif algorithm == "ex":
        result = _ex(graph, delta, categories, workers)
    elif workers == 1:
        result = _fast_serial(graph, delta, categories)
    else:
        from repro.parallel.hare import hare_count

        result = hare_count(
            graph,
            delta,
            workers=workers,
            thrd=thrd,
            schedule=schedule,
            categories=categories,
        )
    result.elapsed_seconds = time.perf_counter() - start
    result.delta = delta
    return result


def _fast_serial(graph: TemporalGraph, delta: float, categories: str) -> MotifCounts:
    star = pair = triangle = None
    if categories in ("all", "star", "pair", "star_pair"):
        star, pair = count_star_pair(graph, delta)
        if categories == "star":
            pair = None
        elif categories == "pair":
            star = None
    if categories in ("all", "triangle"):
        triangle = count_triangle(graph, delta)
    return MotifCounts.from_counters(star, pair, triangle, algorithm="fast")


def _bruteforce(graph: TemporalGraph, delta: float, categories: str) -> MotifCounts:
    from repro.core.bruteforce import brute_force_counts

    result = brute_force_counts(graph, delta)
    if categories != "all":
        result = _mask_categories(result, categories)
    return result


def _ex(graph: TemporalGraph, delta: float, categories: str, workers: int) -> MotifCounts:
    from repro.baselines.exact_ex import ex_count

    return ex_count(graph, delta, categories=categories, workers=workers)


def _mask_categories(counts: MotifCounts, categories: str) -> MotifCounts:
    """Zero out grid cells that fall outside the selected categories."""
    from repro.core.motifs import GRID, MotifCategory

    wanted = {
        "star": {MotifCategory.STAR},
        "pair": {MotifCategory.PAIR},
        "triangle": {MotifCategory.TRIANGLE},
        "star_pair": {MotifCategory.STAR, MotifCategory.PAIR},
        "all": {MotifCategory.STAR, MotifCategory.PAIR, MotifCategory.TRIANGLE},
    }[categories]
    grid = counts.grid.copy()
    for motif in GRID.values():
        if motif.category not in wanted:
            grid[motif.row - 1, motif.col - 1] = 0
    return MotifCounts(grid, algorithm=counts.algorithm, delta=counts.delta)
