"""Ablation variants of the FAST algorithms.

DESIGN.md §5 calls out the design choices these isolate:

* :func:`count_star_pair_rescan` removes FAST-Star's ``min``/``mout``
  hash-map trick: for every (first, third) edge pair the middle edges
  are re-scanned explicitly.  This is the "traversing all edges
  between the first edge and the third edge" strawman §IV-A.3
  contrasts against, turning the per-center cost from O(d·d^δ) into
  O(d·(d^δ)²).
* :func:`count_triangle_no_window` removes FAST-Tri's pair-timeline
  bisection: each candidate (ei, ej) scans the *entire* ``E(v, w)``
  timeline and filters by timestamp, i.e. the "implementation tricks"
  of §IV-B.3 that reduce ξ to the in-window edge count are disabled.

Both produce bit-identical counters to their optimised counterparts
(property-tested), so benchmark deltas measure the optimisation alone.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.counters import PairCounter, StarCounter, TriangleCounter
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


def count_star_pair_rescan(
    graph: TemporalGraph,
    delta: float,
    *,
    nodes: Optional[Sequence[int]] = None,
) -> Tuple[StarCounter, PairCounter]:
    """FAST-Star with the middle-edge rescan instead of hash maps."""
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    star_counter = StarCounter()
    pair_counter = PairCounter()
    star = star_counter.data
    pair = pair_counter.data
    center_ids = range(graph.num_nodes) if nodes is None else nodes
    for node in center_ids:
        seq = graph.node_sequence(node)
        times = seq.times
        nbrs = seq.nbrs
        dirs = seq.dirs
        s = len(times)
        for i in range(s - 2):
            ti = times[i]
            tmax = ti + delta
            if times[i + 2] > tmax:
                continue
            vi = nbrs[i]
            di4 = dirs[i] * 4
            for j in range(i + 2, s):
                if times[j] > tmax:
                    break
                vj = nbrs[j]
                dj = dirs[j]
                cell = di4 + dj
                if vj == vi:
                    for k in range(i + 1, j):
                        dk2 = dirs[k] * 2
                        if nbrs[k] == vi:
                            pair[cell + dk2] += 1
                        else:
                            star[8 + cell + dk2] += 1
                else:
                    for k in range(i + 1, j):
                        vk = nbrs[k]
                        dk2 = dirs[k] * 2
                        if vk == vj:
                            star[cell + dk2] += 1
                        elif vk == vi:
                            star[16 + cell + dk2] += 1
    return star_counter, pair_counter


def count_triangle_no_window(
    graph: TemporalGraph,
    delta: float,
    *,
    nodes: Optional[Sequence[int]] = None,
) -> TriangleCounter:
    """FAST-Tri scanning whole pair timelines (no bisect windows)."""
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    counter = TriangleCounter(multiplicity=3)
    tri = counter.data
    pair_timeline = graph.pair_timeline
    center_ids = range(graph.num_nodes) if nodes is None else nodes
    for node in center_ids:
        seq = graph.node_sequence(node)
        times = seq.times
        nbrs = seq.nbrs
        dirs = seq.dirs
        eids = seq.eids
        s = len(times)
        for i in range(s - 1):
            ti = times[i]
            eidi = eids[i]
            vi = nbrs[i]
            di4 = dirs[i] * 4
            tmax = ti + delta
            for j in range(i + 1, s):
                tj = times[j]
                if tj > tmax:
                    break
                vj = nbrs[j]
                if vj == vi:
                    continue
                p_times, p_dirs, p_eids = pair_timeline(vi, vj)
                if not p_times:
                    continue
                eidj = eids[j]
                base = di4 + dirs[j] * 2
                flip = 1 if vi > vj else 0
                for k in range(len(p_times)):  # no bisect, no break: full scan
                    tk = p_times[k]
                    if tk < tj - delta or tk > tmax:
                        continue
                    cell = base + (p_dirs[k] ^ flip)
                    if tk < ti:
                        tri[cell] += 1
                    elif tk > tj:
                        tri[16 + cell] += 1
                    else:
                        eidk = p_eids[k]
                        if tk == ti and eidk < eidi:
                            tri[cell] += 1
                        elif tk == tj and eidk > eidj:
                            tri[16 + cell] += 1
                        else:
                            tri[8 + cell] += 1
    return counter
