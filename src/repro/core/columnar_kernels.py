"""Vectorized FAST counting kernels over the columnar edge store.

These kernels produce counts **identical** to the pure-Python loops in
:mod:`repro.core.fast_star` / :mod:`repro.core.fast_tri`
(property-tested across all motif classes, timestamp ties included),
but express Algorithms 1 and 2 of the paper as a handful of NumPy
array passes instead of per-edge interpreter steps.  Select them with
``backend="columnar"`` anywhere a
:class:`~repro.core.registry.CountRequest` is accepted.

How the Python loops vectorize
------------------------------

**Window bounds are edge-id ranks.**  Edges are canonically sorted by
``(t, input pos)``, so for any threshold ``x`` the set
``{e : t_e <= x}`` is an edge-id prefix found by one binary search on
the timestamp column, and "entries of center *u*'s CSR row below that
id" is one probe of the row-composite key
(:attr:`~repro.graph.columnar.ColumnarGraph.inc_row_key`).  Every
δ-window bound used below is precomputed this way for *all* incidence
positions at once — six vectorized ``searchsorted`` passes total,
memoized per δ on the columnar store (HARE warms the memo before
forking so every worker shares it copy-on-write instead of
recomputing per batch).

**FAST-Star has a closed form per anchor.**  Every star/pair motif
triple contains at least two edges on the *same* (center, neighbour)
pair: the pair motifs use all three, Star-I its 2nd+3rd, Star-II its
1st+3rd, Star-III its 1st+2nd edge (the "anchor pair").  Fixing the
anchor pair, the third edge is counted by a prefix-sum difference
(Algorithm 1's incremental ``min``/``mout`` hash maps become rank
differences in the group-sorted ordering
:attr:`~repro.graph.columnar.ColumnarGraph.grp_inv` / ``grp_cum_in``).
Summing those differences over the anchor pair's second element — a
contiguous slot range — telescopes into differences of *prefix sums of
prefix sums*, so the kernel never materialises edge pairs at all: it
builds ~16 direction-split prefix arrays over the 2m incidence entries
(also memoized per δ) and then evaluates every counter cell with O(1)
arithmetic per anchor edge.  Total work is O(m log m), *below* the
paper's O(d^δ · m) bound for FAST-Star.

**FAST-Tri classifies by edge id.**  The canonical tie-break rule
makes "``e_k`` before ``e_i``" ⟺ ``eid_k < eid_i`` and "after ``e_j``"
⟺ ``eid_k > eid_j``, so the Triangle I/II/III split of the pair
timeline ``E(v, w)`` is three contiguous id ranges, located by rank
probes into the pair CSR and split by direction with prefix sums.
Open wedges (far pairs that never interact) are rejected early by a
Bloom-filter gather before any binary search runs.

**Exact accumulation.**  Counter cells are scatter-added with pure
int64 masked sums (never float64 ``bincount`` weights), so counts stay
exact arbitrarily far beyond 2**53.

Work decomposition
------------------

Both kernels accept the scheduler's ``(node, i_lo, i_hi)`` tasks.
Ownership of a triple is defined by its *anchor edge* — the earlier
edge of the anchor pair for stars, the wedge's first edge for
triangles — which every complete task cover visits exactly once, so
merged task results equal the serial count exactly.  (The per-task
*split* may differ from the Python kernels, whose ownership is always
the triple's first edge; only the union is contracted — see
:func:`repro.core.fast_star.count_star_pair_tasks`.)

Peak memory is O(m) for the star kernel and bounded by
``chunk_pairs`` expanded wedges (default 2**22 ≈ 4M) for the triangle
kernel, independent of δ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.columnar import ColumnarGraph
from repro.graph.temporal_graph import TemporalGraph

#: Default cap on expanded wedge pairs processed at once (FAST-Tri).
DEFAULT_CHUNK_PAIRS = 1 << 22

#: A work task, as produced by the HARE scheduler.
Task = Tuple[int, int, Optional[int]]


def _task_positions(
    col: ColumnarGraph, tasks: Optional[Iterable[Task]], tail: int = 1
) -> np.ndarray:
    """Flatten tasks into absolute incidence positions of anchor edges.

    ``tail`` is how many trailing positions of a CSR row cannot anchor
    anything (at least one later edge must exist).  ``tasks=None``
    selects every eligible position of every center — the full serial
    count.
    """
    indptr = col.inc_indptr
    if tasks is None:
        sizes = np.maximum(np.diff(indptr) - tail, 0)
        total = int(sizes.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        reps = np.repeat(np.arange(col.num_nodes, dtype=np.int64), sizes)
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        return (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, sizes)
            + indptr[reps]
        )
    pieces: List[np.ndarray] = []
    for node, i_lo, i_hi in tasks:
        row_lo = int(indptr[node])
        limit = int(indptr[node + 1]) - row_lo - tail
        hi = limit if i_hi is None else min(i_hi, limit)
        if hi > i_lo:
            pieces.append(np.arange(row_lo + i_lo, row_lo + hi, dtype=np.int64))
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)


def _expand_pairs(
    anchor: np.ndarray, counts: np.ndarray, gap: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-anchor successor counts into flat (anchor, other) pairs."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    A = np.repeat(anchor, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    B = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + A + gap
    return A, B


def _chunks(counts: np.ndarray, chunk_pairs: int) -> Iterable[Tuple[int, int]]:
    """Slice the anchor axis so each slice expands to ≤ chunk_pairs.

    A single anchor whose window alone exceeds the cap still forms its
    own (oversized) chunk — correctness never depends on the cap.
    """
    if len(counts) == 0:
        return
    csum = np.cumsum(counts)
    start = 0
    while start < len(counts):
        base = int(csum[start - 1]) if start else 0
        stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
        stop = min(max(stop, start + 1), len(counts))
        yield start, stop
        start = stop


def _window_bounds(
    col: ColumnarGraph, delta: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-position δ-window bounds, all four flavours, fully vectorized.

    Returns ``(lo_eid, hi_eid, ws, we)`` where for every incidence
    position ``p``:

    * ``lo_eid[p]`` / ``hi_eid[p]`` — global edge-id ranks of the
      window ``[t_p - δ, t_p + δ]`` (first id with ``t >= t_p - δ``,
      first id with ``t > t_p + δ``);
    * ``ws[p]`` / ``we[p]`` — the same bounds as absolute positions
      inside ``p``'s own CSR row (row-composite probes).

    Memoized per δ on ``col.delta_cache`` (single entry — sweeps
    revisit deltas rarely, HARE batches revisit the same δ often).
    """
    key = ("bounds", float(delta))
    cached = col.delta_cache.get(key)
    if cached is not None:
        return cached
    t = col.t
    time_col = col.inc_time
    lo_eid = np.searchsorted(t, time_col - delta, side="left")
    hi_eid = np.searchsorted(t, time_col + delta, side="right")
    row_base = col.inc_row * np.int64(col.num_edges + 1)
    ws = np.searchsorted(col.inc_row_key, row_base + lo_eid)
    we = np.searchsorted(col.inc_row_key, row_base + hi_eid)
    col.delta_cache.clear()
    col.delta_cache[key] = (lo_eid, hi_eid, ws, we)
    return col.delta_cache[key]


def _dir_prefixes(values: np.ndarray, is_in: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Direction-split exclusive prefix sums of a per-slot array."""
    zero = np.int64(0)
    out = np.concatenate(([zero], np.cumsum(np.where(is_in, 0, values))))
    into = np.concatenate(([zero], np.cumsum(np.where(is_in, values, 0))))
    return out, into


def _star_precompute(col: ColumnarGraph, delta: float):
    """δ-dependent, task-independent tables of the star closed form.

    Returns ``(gws, gwe, prefixes)`` where ``prefixes`` maps base-term
    name → its direction-split prefix pair.  Memoized alongside the
    window bounds so HARE batches (and repeated serial calls at one δ)
    pay the O(m log m) setup once.
    """
    key = ("star", float(delta))
    cached = col.delta_cache.get(key)
    if cached is not None:
        return cached
    _, _, ws, we = _window_bounds(col, delta)
    L = 2 * col.num_edges
    slot_ids = np.arange(L, dtype=np.int64)
    gkey_base = col.grp_id * np.int64(L + 1)
    gws = np.searchsorted(col.grp_rank_key, gkey_base + ws)
    gwe = np.searchsorted(col.grp_rank_key, gkey_base + we)

    # Per-slot base terms (slot s holds position p_s = order[s]):
    # "outside-group" rank excesses — global minus in-group quantities.
    pos_s = col.grp_order
    cum_in = col.inc_cum_in
    gcum_in = col.grp_cum_in
    is_in = col.inc_dir[pos_s] == 1
    cin = cum_in[pos_s] - gcum_in[slot_ids]          # IN before p_s, other nbrs
    gin = cum_in[pos_s + 1] - gcum_in[slot_ids + 1]  # ... up to and incl. p_s
    win = cum_in[ws[pos_s]] - gcum_in[gws[pos_s]]    # ... before p_s's window
    prefixes = {
        "one": _dir_prefixes(np.ones(L, dtype=np.int64), is_in),
        "slot": _dir_prefixes(slot_ids, is_in),
        "cin": _dir_prefixes(cin, is_in),
        "gin": _dir_prefixes(gin, is_in),
        "win": _dir_prefixes(win, is_in),
        "osub": _dir_prefixes(pos_s - slot_ids, is_in),
        "wsub": _dir_prefixes(ws[pos_s] - gws[pos_s], is_in),
        "ggin": _dir_prefixes(gcum_in[slot_ids], is_in),
    }
    col.delta_cache[key] = (gws, gwe, prefixes)
    return col.delta_cache[key]


def edge_window_ends(col: ColumnarGraph, delta: float) -> np.ndarray:
    """Per-*edge* forward δ-window end ranks: first id with ``t > t_e + δ``.

    The edge-indexed sibling of :func:`_window_bounds` (which is
    incidence-position-indexed): an edge's forward δ-window is exactly
    the id range ``(e, edge_window_ends(col, δ)[e])``.  This is the
    candidate-cap primitive of the sampling kernels
    (:mod:`repro.core.sampling_kernels`), which only ever look
    *forward* from an anchor — so no backward-bound array is computed
    or shipped.  Memoized per δ alongside the other kernel tables;
    exported/installed through the same shared-memory bundle so pool
    workers share one copy.
    """
    key = ("ewin", float(delta))
    cached = col.delta_cache.get(key)
    if cached is not None:
        return cached
    t = col.t
    hi = np.searchsorted(t, t + delta, side="right")
    col.delta_cache[key] = hi
    return hi


def warm_delta_cache(
    col: ColumnarGraph, delta: float, star_pair: bool = True
) -> None:
    """Force the FAST per-δ memos now (called before forking HARE workers).

    Sampling jobs warm their own (and only their own) table by calling
    :func:`edge_window_ends` directly — it has no dependency on the
    position-indexed window bounds built here.
    """
    _window_bounds(col, delta)
    if star_pair:
        _star_precompute(col, delta)


#: Star prefix-table names, in their packed export order.
_STAR_TERMS = ("one", "slot", "cin", "gin", "win", "osub", "wsub", "ggin")


def export_delta_cache(
    col: ColumnarGraph, delta: float, star_pair: bool = True,
    *, window_bounds: bool = True, edge_window: bool = False,
) -> "Dict[str, np.ndarray]":
    """Flatten the per-δ memo tables into a named-array dict.

    Warms the memos first if needed.  The returned mapping round-trips
    through :func:`install_delta_cache`, which is how the persistent
    worker pool ships one copy of the O(m)-sized δ tables to every
    worker via shared memory instead of having each worker redo the
    O(m log m) setup (and hold its own quarter-gigabyte copy).
    ``window_bounds``/``star_pair`` select the FAST kernel tables;
    ``edge_window`` adds the sampling kernels' per-edge window ranks
    (:func:`edge_window_ends`) — a sampling-only job exports just
    those.
    """
    arrays: "Dict[str, np.ndarray]" = {}
    if window_bounds or star_pair:
        lo_eid, hi_eid, ws, we = _window_bounds(col, delta)
        arrays.update({
            "bounds.lo_eid": lo_eid,
            "bounds.hi_eid": hi_eid,
            "bounds.ws": ws,
            "bounds.we": we,
        })
    if star_pair:
        gws, gwe, prefixes = _star_precompute(col, delta)
        arrays["star.gws"] = gws
        arrays["star.gwe"] = gwe
        for name in _STAR_TERMS:
            out, into = prefixes[name]
            arrays[f"star.{name}.out"] = out
            arrays[f"star.{name}.in"] = into
    if edge_window:
        arrays["ewin.hi"] = edge_window_ends(col, delta)
    return arrays


def install_delta_cache(
    col: ColumnarGraph, delta: float, arrays: "Mapping[str, np.ndarray]"
) -> None:
    """Install exported per-δ tables into ``col.delta_cache``.

    The inverse of :func:`export_delta_cache`: after this call the
    kernels hit the memo instead of recomputing.  Replaces whatever δ
    was resident (the cache is single-entry per kind, matching
    :func:`_window_bounds`).
    """
    col.delta_cache.clear()
    if "bounds.lo_eid" in arrays:
        col.delta_cache[("bounds", float(delta))] = (
            arrays["bounds.lo_eid"],
            arrays["bounds.hi_eid"],
            arrays["bounds.ws"],
            arrays["bounds.we"],
        )
    if "ewin.hi" in arrays:
        col.delta_cache[("ewin", float(delta))] = arrays["ewin.hi"]
    if "star.gws" in arrays:
        prefixes = {
            name: (arrays[f"star.{name}.out"], arrays[f"star.{name}.in"])
            for name in _STAR_TERMS
        }
        col.delta_cache[("star", float(delta))] = (
            arrays["star.gws"],
            arrays["star.gwe"],
            prefixes,
        )


def count_star_pair_columnar(
    graph: TemporalGraph,
    delta: float,
    tasks: Optional[Iterable[Task]] = None,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized FAST-Star (Algorithm 1): star + pair flat counters.

    Returns the 24-cell star and 8-cell pair counter arrays (int64,
    layout of :func:`repro.core.counters.star_index` /
    :func:`~repro.core.counters.pair_index`).  The merged result over
    any complete task cover is identical to
    :func:`repro.core.fast_star.count_star_pair` (``tasks=None`` *is*
    the complete cover).  ``chunk_pairs`` is accepted for interface
    symmetry with the triangle kernel; this kernel materialises no
    pairs.
    """
    del chunk_pairs  # closed form: nothing to chunk
    col = graph.columnar()
    star_acc = np.zeros(24, dtype=np.int64)
    pair_acc = np.zeros(8, dtype=np.int64)

    anchors = _task_positions(col, tasks)
    if len(anchors) == 0:
        return star_acc, pair_acc

    _, gwe, P = _star_precompute(col, delta)
    _, _, _, we = _window_bounds(col, delta)
    cum_in = col.inc_cum_in
    gcum_in = col.grp_cum_in

    # -- per-anchor closed form ----------------------------------------
    # The anchor edge (position A, slot s1) pairs with every later
    # same-group edge in its δ-window: slots s2 in (s1, gwe[A]).  All
    # four motif roles sum a per-s2 affine term over that slot range,
    # evaluated below as prefix-sum differences, split by d2 = dir(s2).
    A = anchors
    s1 = col.grp_inv[A]
    d1 = col.inc_dir[A]
    lo = s1 + 1
    hi = gwe[A]
    cin1 = cum_in[A] - gcum_in[s1]
    osub1 = A - s1
    ggin1 = gcum_in[s1] + d1
    we_A = we[A]
    const3_in = cum_in[we_A] - gcum_in[hi]     # Star-III: IN lasts in window
    const3_any = we_A - hi                     # ... any-direction counterpart

    d1_masks = (d1 == 0, d1 == 1)

    def scatter(acc: np.ndarray, cell_d1: Tuple[int, int], weight: np.ndarray) -> None:
        # Exact int64 scatter-add: the cell is determined by the
        # anchor's direction, so two masked integer sums per term.
        acc[cell_d1[0]] += int(weight[d1_masks[0]].sum())
        acc[cell_d1[1]] += int(weight[d1_masks[1]].sum())

    for d2 in (0, 1):
        def span(name: str) -> np.ndarray:
            prefix = P[name][d2]
            return prefix[hi] - prefix[lo]

        N = span("one")
        S_slot = span("slot")
        S_cin = span("cin")
        S_gin = span("gin")
        S_win = span("win")
        S_osub = span("osub")
        S_wsub = span("wsub")
        S_ggin = span("ggin")

        # Pair motifs: anchor = (1st, 3rd) edge, middles in-group.
        w_in = S_ggin - N * ggin1
        w_out = (S_slot - N * (s1 + 1)) - w_in
        scatter(pair_acc, (2 + d2, 6 + d2), w_in)       # d1*4 + IN*2 + d2
        scatter(pair_acc, (d2, 4 + d2), w_out)

        # Star-II: anchor = (1st, 3rd) edge, middles on other nbrs.
        w_in = S_cin - N * cin1
        w_out = (S_osub - S_cin) - N * (osub1 - cin1)
        scatter(star_acc, (10 + d2, 14 + d2), w_in)     # 8 + d1*4 + 2 + d2
        scatter(star_acc, (8 + d2, 12 + d2), w_out)

        # Star-I: anchor = (2nd, 3rd) edge, firsts on other nbrs in
        # [window start of the 3rd edge, anchor).
        w_in = N * cin1 - S_win
        w_out = N * (osub1 - cin1) - (S_wsub - S_win)
        scatter(star_acc, (4 + d2, 6 + d2), w_in)       # dI*4 + d1*2 + d2
        scatter(star_acc, (d2, 2 + d2), w_out)

        # Star-III: anchor = (1st, 2nd) edge, lasts on other nbrs in
        # (2nd edge, window end of the anchor].
        w_in = N * const3_in - S_gin
        w_out = N * (const3_any - const3_in) - (S_osub - S_gin)
        scatter(star_acc, (17 + d2 * 2, 21 + d2 * 2), w_in)  # 16+d1*4+d2*2+1
        scatter(star_acc, (16 + d2 * 2, 20 + d2 * 2), w_out)

    return star_acc, pair_acc


def count_triangle_columnar(
    graph: TemporalGraph,
    delta: float,
    tasks: Optional[Iterable[Task]] = None,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> np.ndarray:
    """Vectorized FAST-Tri (Algorithm 2): the 24-cell triangle counter.

    Produces the dependency-free (``multiplicity=3``) counts, identical
    to :func:`repro.core.fast_tri.count_triangle` over any complete
    task cover.  The sequential center-removal mode has no vectorized
    form (it is inherently order-dependent); callers wanting it use the
    Python backend.
    """
    col = graph.columnar()
    tri_acc = np.zeros(24, dtype=np.int64)

    anchors = _task_positions(col, tasks)
    if len(anchors) == 0 or len(col.pair_keys) == 0:
        return tri_acc

    n = col.num_nodes
    nbr = col.inc_nbr
    dirs = col.inc_dir
    eid = col.inc_eid
    pair_keys = col.pair_keys
    pair_rank = col.pair_rank_key
    pair_cum_in = col.pair_cum_in
    m_plus = np.int64(col.num_edges + 1)

    lo_eid, hi_eid, _, we = _window_bounds(col, delta)
    counts = np.maximum(we[anchors] - (anchors + 1), 0)

    for a, b in _chunks(counts, chunk_pairs):
        pos_i, pos_j = _expand_pairs(anchors[a:b], counts[a:b], gap=1)
        vi = nbr[pos_i]
        vj = nbr[pos_j]
        # A wedge needs distinct far endpoints whose pair exists at
        # all; the Bloom gather rejects the bulk of open wedges before
        # any binary search runs.
        key = np.minimum(vi, vj) * np.int64(n) + np.maximum(vi, vj)
        keep = (vi != vj) & col.pair_bloom[col.bloom_hash(key)]
        if not keep.any():
            continue
        pos_i = pos_i[keep]
        pos_j = pos_j[keep]
        vi = vi[keep]
        vj = vj[keep]
        key = key[keep]
        slot = np.searchsorted(pair_keys, key)
        valid = slot < len(pair_keys)
        valid &= pair_keys[np.minimum(slot, len(pair_keys) - 1)] == key
        if not valid.any():
            continue
        pos_i = pos_i[valid]
        pos_j = pos_j[valid]
        vi = vi[valid]
        vj = vj[valid]
        slot = slot[valid]

        # Timeline bounds as edge-id ranks: t_k >= t_j - δ (the
        # Triangle-I constraint) and t_k <= t_i + δ (the Triangle-III
        # constraint), both inclusive, exactly as in the Python loop.
        base_slot = slot * m_plus
        idx_lo = np.searchsorted(pair_rank, base_slot + lo_eid[pos_j])
        idx_hi = np.searchsorted(pair_rank, base_slot + hi_eid[pos_i])
        split_i = np.searchsorted(pair_rank, base_slot + eid[pos_i])
        split_j = np.searchsorted(pair_rank, base_slot + eid[pos_j] + 1)

        cell_base = dirs[pos_i] * 4 + dirs[pos_j] * 2
        base_masks = [(value, cell_base == value) for value in (0, 2, 4, 6)]
        # dk is the third edge's direction relative to vi; pair dirs
        # are normalised to the smaller endpoint, so flip when vi is
        # the larger one (the Fig. 7 convention).
        flip = vi > vj

        for lo, hi, offset in (
            (idx_lo, split_i, 0),  # e_k before e_i  → Triangle-I
            (split_i, split_j, 8),  # e_k between     → Triangle-II
            (split_j, idx_hi, 16),  # e_k after e_j   → Triangle-III
        ):
            span = hi - lo
            n_in = pair_cum_in[hi] - pair_cum_in[lo]
            n_dk1 = np.where(flip, span - n_in, n_in)
            n_dk0 = span - n_dk1
            # Exact int64 scatter-add over the four (di, dj) cells.
            for value, mask in base_masks:
                tri_acc[offset + value + 1] += int(n_dk1[mask].sum())
                tri_acc[offset + value] += int(n_dk0[mask].sum())

    return tri_acc
