"""FAST-Star: exact counting of star and pair temporal motifs.

This is Algorithm 1 of the paper.  Every node ``u`` is treated as a
center in turn.  For each choice of first edge ``e1 = S_u[i]`` the
third edge ``e3 = S_u[j]`` sweeps forward while ``e3.t - e1.t <= δ``;
two hash maps ``min``/``mout`` (inward/outward middle-edge counts per
neighbour) are maintained incrementally so that the number of valid
second edges for *every* motif kind is available in O(1) when ``e3``
is fixed:

* ``e3.v == e1.v`` — the three-edges-on-one-pair case: middles on the
  same neighbour are **pair** motifs, middles on other neighbours are
  **Star-II** (isolated second edge);
* ``e3.v != e1.v`` — middles on ``e3.v`` are **Star-I** (isolated first
  edge), middles on ``e1.v`` are **Star-III** (isolated third edge).

The scan is O(d_u · d^δ_u) per center and O(2·d^δ·|E|) overall — linear
in the number of temporal edges (§IV-A.4).

Work decomposition hooks: ``nodes`` restricts the set of centers
(HARE's inter-node parallelism) and a task's ``first_edge_range``
restricts the outer ``i`` loop (HARE's intra-node parallelism).  Both
decompositions are exact because every (center, first-edge) pair is
counted by exactly one task.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.counters import PairCounter, StarCounter
from repro.graph.temporal_graph import NodeSequence, TemporalGraph

#: An intra-node work unit: (center node, first-edge index range).
StarTask = Tuple[int, int, Optional[int]]


def scan_center(
    seq: NodeSequence,
    delta: float,
    star_data: List[int],
    pair_data: List[int],
    i_lo: int = 0,
    i_hi: Optional[int] = None,
) -> None:
    """Run Algorithm 1's inner loops for one center node.

    Counts every star/pair motif whose *first* edge index falls in
    ``[i_lo, i_hi)`` directly into the provided flat counter lists
    (layout: ``Star[type,d1,d2,d3] -> type*8 + d1*4 + d2*2 + d3`` and
    ``Pair[d1,d2,d3] -> d1*4 + d2*2 + d3``).
    """
    times = seq.times
    nbrs = seq.nbrs
    dirs = seq.dirs
    s = len(times)
    limit = s - 2
    if i_hi is None or i_hi > limit:
        i_hi = limit
    star = star_data
    pair = pair_data
    for i in range(i_lo, i_hi):
        ti = times[i]
        tmax = ti + delta
        if times[i + 2] > tmax:
            # Not even two edges fit after e1 within δ: no motif here.
            continue
        vi = nbrs[i]
        di4 = dirs[i] * 4
        # Seed the middle-edge maps with S_u[i+1] (it can only ever be
        # a middle edge for this i).
        v1 = nbrs[i + 1]
        if dirs[i + 1]:
            min_map = {v1: 1}
            mout_map = {}
            n_in = 1
            n_out = 0
        else:
            min_map = {}
            mout_map = {v1: 1}
            n_in = 0
            n_out = 1
        for j in range(i + 2, s):
            if times[j] > tmax:
                break
            vj = nbrs[j]
            dj = dirs[j]
            k = di4 + dj
            if vj == vi:
                cin = min_map.get(vi, 0)
                cout = mout_map.get(vi, 0)
                # Middles on the same pair are pair motifs ...
                pair[k + 2] += cin
                pair[k] += cout
                # ... middles elsewhere are Star-II (isolated 2nd edge).
                star[8 + k + 2] += n_in - cin
                star[8 + k] += n_out - cout
            else:
                # Star-I: middle shares e3's neighbour (isolated 1st edge).
                star[k + 2] += min_map.get(vj, 0)
                star[k] += mout_map.get(vj, 0)
                # Star-III: middle shares e1's neighbour (isolated 3rd edge).
                star[16 + k + 2] += min_map.get(vi, 0)
                star[16 + k] += mout_map.get(vi, 0)
            if dj:
                min_map[vj] = min_map.get(vj, 0) + 1
                n_in += 1
            else:
                mout_map[vj] = mout_map.get(vj, 0) + 1
                n_out += 1


def count_star_pair_tasks(
    graph: TemporalGraph,
    delta: float,
    tasks: Iterable[StarTask],
) -> Tuple[StarCounter, PairCounter]:
    """Count star/pair motifs over explicit (node, i_lo, i_hi) tasks.

    This is the worker entry point HARE uses; the de-duplication
    argument only holds when, across all tasks executed by all
    workers, every (center, first-edge) pair appears exactly once.
    """
    star = StarCounter()
    pair = PairCounter()
    star_data = star.data
    pair_data = pair.data
    for node, i_lo, i_hi in tasks:
        scan_center(graph.node_sequence(node), delta, star_data, pair_data, i_lo, i_hi)
    return star, pair


def count_star_pair(
    graph: TemporalGraph,
    delta: float,
    *,
    nodes: Optional[Sequence[int]] = None,
    backend: str = "python",
) -> Tuple[StarCounter, PairCounter]:
    """Count all star and pair temporal motifs (FAST-Star, serial).

    Parameters
    ----------
    graph:
        The input temporal graph.
    delta:
        The motif time constraint δ (same unit as the timestamps).
    nodes:
        Optional subset of internal node ids to use as centers; the
        default is every node, which yields the complete exact counts.
    backend:
        ``"python"`` runs the interpreted per-edge scan above;
        ``"columnar"`` runs the vectorized kernel of
        :mod:`repro.core.columnar_kernels` over the graph's columnar
        view — same exact counts, array-at-a-time execution.

    Returns
    -------
    (StarCounter, PairCounter)
        Star cells hold exact per-motif counts.  Pair cells hold the
        both-endpoints view (see :class:`~repro.core.counters.PairCounter`).
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if backend == "columnar":
        from repro.core.columnar_kernels import count_star_pair_columnar

        tasks = None if nodes is None else [(u, 0, None) for u in nodes]
        star_data, pair_data = count_star_pair_columnar(graph, delta, tasks)
        return StarCounter(star_data.tolist()), PairCounter(pair_data.tolist())
    center_ids = range(graph.num_nodes) if nodes is None else nodes
    return count_star_pair_tasks(graph, delta, ((u, 0, None) for u in center_ids))
