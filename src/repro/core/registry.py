"""Pluggable algorithm registry: one entry point, seven (and counting) backends.

Every counting algorithm — the paper's FAST/HARE as well as the
baselines it is evaluated against — registers itself here with
:func:`register_algorithm`, declaring its capabilities in an
:class:`AlgorithmSpec`: exact vs. approximate, which motif-category
selections it supports, whether it can run parallel, and which extra
parameters (``q``, ``p``, ``window_factor``, …) it accepts.

Callers describe *what* to count with a :class:`CountRequest` and get
back a :class:`~repro.core.counters.MotifCounts` (aliased
:data:`CountResult`) regardless of the backend:

>>> from repro.core.registry import CountRequest, execute
>>> result = execute(CountRequest(graph=g, delta=600, algorithm="bts"))
>>> result.is_exact, result.stderr is not None
(False, True)

Sampling estimators are replicated ``n_samples`` times with
consecutive seeds; the dispatcher averages the replicate grids and
fills ``result.stderr`` with the standard error of the mean, so every
approximate answer carries its own uncertainty.

Adding a backend is one decorated function::

    @register_algorithm("mycounter", exact=True)
    def _mycounter(request: CountRequest) -> MotifCounts:
        return MotifCounts(my_grid(request.graph, request.delta))

The built-in algorithms live in :mod:`repro.core.algorithms` and are
loaded lazily on first registry access, so importing :mod:`repro`
stays cheap.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.counters import MotifCounts
    from repro.graph.temporal_graph import TemporalGraph

#: Motif-category selections every request may ask for.
CATEGORIES = ("all", "star", "pair", "triangle", "star_pair")

#: Replicates run by default for approximate algorithms (the stderr
#: of a single draw is undefined; three is the cheapest defensible n).
DEFAULT_SAMPLING_REPLICATES = 3

#: Category selections that require the FAST star/pair pass.
STAR_PAIR_CATEGORIES = ("all", "star", "pair", "star_pair")

#: Category selections that require a triangle pass.
TRIANGLE_CATEGORIES = ("all", "triangle")

#: Execution backends a request may ask for.  ``"auto"`` resolves to
#: the fastest backend the chosen algorithm declares (columnar when
#: available, python otherwise); algorithms without vectorized kernels
#: silently run their python path, so ``backend=`` never changes
#: results, only execution strategy.
BACKENDS = ("auto", "python", "columnar")

#: Process start methods a request may pin for parallel execution
#: (``None`` defers to ``REPRO_START_METHOD`` / the platform default).
START_METHODS = (None, "fork", "spawn", "forkserver")


def _check_start_method(start_method: Optional[str]) -> None:
    if start_method not in START_METHODS:
        raise ValidationError(
            f"unknown start_method {start_method!r}; choose from {START_METHODS}"
        )


def _check_capabilities(
    spec: "AlgorithmSpec",
    *,
    categories: str,
    workers: int,
    params: Mapping[str, object],
) -> Dict[str, object]:
    """Validate shared request knobs against a spec; return merged params.

    The capability checks common to batch (:class:`CountRequest`) and
    streaming (:class:`StreamRequest`) resolution: category support,
    parallel support, and unknown algorithm parameters.  Returns the
    request's ``params`` merged over the spec's declared defaults.
    """
    if categories not in spec.categories:
        raise ValidationError(
            f"algorithm {spec.name!r} does not support categories="
            f"{categories!r} (supported: {spec.categories})"
        )
    if workers > 1 and not spec.parallel:
        raise ValidationError(
            f"algorithm {spec.name!r} does not support parallel execution "
            f"(workers={workers})"
        )
    unknown = set(params) - set(spec.params)
    if unknown:
        raise ValidationError(
            f"unknown parameter(s) {sorted(unknown)} for algorithm "
            f"{spec.name!r} (accepted: {sorted(spec.params)})"
        )
    merged = dict(spec.params)
    merged.update(params)
    return merged


@dataclass
class CountRequest:
    """A validated, normalized description of one counting run.

    Generic knobs (``delta``, ``categories``, ``workers``) are checked
    here; algorithm-specific capability checks happen in
    :meth:`resolve` once the :class:`AlgorithmSpec` is known.
    """

    graph: Optional["TemporalGraph"] = None
    delta: Optional[float] = None
    algorithm: str = "fast"
    categories: str = "all"
    workers: int = 1
    thrd: Optional[float] = None
    schedule: str = "dynamic"
    seed: Optional[int] = None
    n_samples: Optional[int] = None
    backend: str = "auto"
    #: Persistent shared-memory worker pool
    #: (:class:`repro.parallel.pool.WorkerPool`) to execute on;
    #: ``None`` uses the per-call runtime.  Consumed by algorithms
    #: whose spec declares ``pool_runtime`` (the HARE family —
    #: currently ``fast``); others ignore it.  Repeated requests
    #: against one pool amortize graph publication, planning, and —
    #: for identical requests — the counting itself.
    pool: Optional[object] = field(default=None, repr=False, compare=False)
    #: Process start method for parallel execution without a pool
    #: (``"fork"``/``"spawn"``; default: ``REPRO_START_METHOD`` env
    #: var, then the platform default).
    start_method: Optional[str] = None
    #: Caller-assigned identifier for tracing one request through the
    #: serving layer, worker pools, and result metadata.  Purely
    #: provenance: never affects results or cache keys.
    request_id: Optional[str] = field(default=None, compare=False)
    #: Absolute :func:`time.monotonic` instant after which the request
    #: is worthless.  :func:`execute` refuses to start (and the pool
    #: runtimes abort in-flight collection) past it, raising
    #: :class:`~repro.errors.DeadlineExceededError`.  ``None`` (the
    #: default) means no deadline.  An execution knob like ``pool``:
    #: excluded from equality and from every result cache key.
    deadline: Optional[float] = field(default=None, compare=False)
    #: Path to a packed graph file (``repro pack`` output) to count
    #: instead of an in-memory ``graph``: :func:`execute` opens it
    #: zero-copy through :func:`repro.storage.format.open_packed`
    #: before dispatch.  Exactly one of ``graph``/``source`` must be
    #: given by callers (a materialized request carries both).
    source: Optional[str] = None
    #: Out-of-core execution knob: maximum *own* edges per time shard.
    #: When set, exact algorithms run through the shard-halo union of
    #: :mod:`repro.storage.sharded` — peak memory tracks this budget,
    #: results stay bit-identical.  Sampling algorithms ignore it
    #: (recorded in ``meta["sharding"]``) because their global RNG
    #: stream does not decompose.  At most one of ``shard_budget`` /
    #: ``num_shards`` / ``shard_boundaries`` may be given.
    shard_budget: Optional[int] = None
    #: Alternative cut mode: split the canonical edge sequence into
    #: this many near-equal shards (``ShardedGraph(num_shards=)``).
    num_shards: Optional[int] = None
    #: Alternative cut mode: explicit interior canonical-edge-id cut
    #: points, strictly increasing in ``(0, num_edges)``
    #: (``ShardedGraph(boundaries=)``) — what equivalence tests
    #: randomize over.  Normalized to a tuple of ints.
    shard_boundaries: Optional[Tuple[int, ...]] = None
    #: Distributed execution: comma-separated ``host:port`` addresses
    #: of running ``repro worker`` daemons.  Exact algorithms farm the
    #: shard plan across them through
    #: :mod:`repro.distributed.cluster` (results stay bit-identical to
    #: the serial shard-halo union); sampling algorithms run
    #: whole-graph locally, recorded in ``meta["cluster"]``.  Accepts a
    #: sequence of addresses; normalized to the comma string.
    cluster: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.graph is None and self.source is None:
            raise ValidationError("a CountRequest needs a graph or a source path")
        if self.source is not None:
            import os

            self.source = os.fspath(self.source)
        if self.shard_budget is not None and self.shard_budget < 1:
            raise ValidationError(
                f"shard_budget must be >= 1, got {self.shard_budget}"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_boundaries is not None:
            try:
                self.shard_boundaries = tuple(int(b) for b in self.shard_boundaries)
            except (TypeError, ValueError):
                raise ValidationError(
                    f"shard_boundaries must be a sequence of edge ids, "
                    f"got {self.shard_boundaries!r}"
                ) from None
            if not self.shard_boundaries:
                raise ValidationError("shard_boundaries must be non-empty when given")
        cut_modes = (self.shard_budget, self.num_shards, self.shard_boundaries)
        if sum(x is not None for x in cut_modes) > 1:
            raise ValidationError(
                "give at most one of shard_budget / num_shards / shard_boundaries"
            )
        if self.cluster is not None:
            from repro.distributed.protocol import parse_cluster

            self.cluster = ",".join(parse_cluster(self.cluster))
        if self.delta is None or self.delta < 0:
            raise ValidationError(f"delta must be non-negative, got {self.delta}")
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.categories not in CATEGORIES:
            raise ValidationError(
                f"unknown categories {self.categories!r}; choose from {CATEGORIES}"
            )
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.schedule not in ("dynamic", "static"):
            raise ValidationError(
                f"schedule must be 'dynamic' or 'static', got {self.schedule!r}"
            )
        if self.n_samples is not None and self.n_samples < 1:
            raise ValidationError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.deadline is not None:
            self.deadline = float(self.deadline)
        if self.request_id is not None and not isinstance(self.request_id, str):
            raise ValidationError(
                f"request_id must be a string, got {type(self.request_id).__name__}"
            )
        _check_start_method(self.start_method)

    def check_deadline(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            from repro.errors import DeadlineExceededError

            label = f" {self.request_id!r}" if self.request_id else ""
            raise DeadlineExceededError(
                f"request{label} missed its deadline before completion"
            )

    # -- sharding helpers -----------------------------------------------
    @property
    def wants_sharding(self) -> bool:
        """Whether any shard cut mode was requested."""
        return (
            self.shard_budget is not None
            or self.num_shards is not None
            or self.shard_boundaries is not None
        )

    @property
    def shard_spec(self) -> Dict[str, object]:
        """The request's cut mode as ``ShardedGraph`` keyword arguments.

        Empty when no cut mode was given (callers pick their own
        default — the registry uses ``shard_budget``'s default, the
        cluster executor sizes shards to the worker count).
        """
        if self.shard_budget is not None:
            return {"max_shard_edges": self.shard_budget}
        if self.num_shards is not None:
            return {"num_shards": self.num_shards}
        if self.shard_boundaries is not None:
            return {"boundaries": self.shard_boundaries}
        return {}

    # -- category helpers used by adapters -----------------------------
    @property
    def wants_star_pair(self) -> bool:
        return self.categories in STAR_PAIR_CATEGORIES

    @property
    def wants_triangle(self) -> bool:
        return self.categories in TRIANGLE_CATEGORIES

    def param(self, name: str, default: object = None) -> object:
        return self.params.get(name, default)

    def resolve(self, spec: "AlgorithmSpec") -> "CountRequest":
        """Capability-check against ``spec`` and fill defaults.

        Returns a new request with ``seed``/``n_samples`` made concrete
        and ``params`` merged over the spec's declared defaults.
        """
        params = _check_capabilities(
            spec, categories=self.categories, workers=self.workers, params=self.params
        )
        if spec.is_exact and self.n_samples is not None and self.n_samples > 1:
            raise ValidationError(
                f"n_samples applies to sampling algorithms only; "
                f"{spec.name!r} is exact"
            )
        if spec.is_exact and self.seed is not None:
            raise ValidationError(
                f"seed applies to sampling algorithms only; {spec.name!r} is exact"
            )
        n_samples = self.n_samples
        if n_samples is None:
            n_samples = 1 if spec.is_exact else DEFAULT_SAMPLING_REPLICATES
        # Resolve the backend to a concrete one: "auto" prefers the
        # spec's first declared backend (specs list fastest first);
        # an explicit choice the spec does not implement falls back to
        # python — the backend knob selects execution strategy, never
        # results, so every algorithm accepts it without signature
        # churn.
        if self.backend == "auto":
            backend = spec.backends[0]
        elif self.backend in spec.backends:
            backend = self.backend
        else:
            backend = "python"
        return dataclasses.replace(
            self,
            seed=0 if self.seed is None else self.seed,
            n_samples=n_samples,
            backend=backend,
            params=params,
        )

    def with_seed(self, seed: int) -> "CountRequest":
        """Copy of this request with a different RNG seed (replicates)."""
        return dataclasses.replace(self, seed=seed)


@dataclass
class StreamRequest:
    """A validated description of one *streaming* counting session.

    The streaming analogue of :class:`CountRequest`: instead of one
    graph and one answer, it configures an incremental engine
    (obtained via :func:`open_stream`) that ingests timestamped edges,
    maintains counts over a sliding window, and emits checkpoints.

    Parameters
    ----------
    delta:
        The motif time constraint δ, as in :class:`CountRequest`.
    window:
        Sliding-window width ``W``: after observing latest time ``T``
        the live edge set is ``{t : T - W <= t <= T}`` (edges below
        ``T - W`` are evicted; arrivals below the high-water mark are
        dropped as late).  ``None`` (default) disables expiry — the
        stream is append-only.
    checkpoint_every:
        Edges per checkpoint when replaying with
        ``StreamingMotifEngine.replay``; explicit ``checkpoint()``
        calls are always allowed.
    parallel_min_edges:
        Minimum dirty-slice size before ``workers > 1`` engages the
        HARE pool for a micro-batch (see
        :mod:`repro.core.stream_kernels`).
    """

    delta: float
    window: Optional[float] = None
    algorithm: str = "fast"
    categories: str = "all"
    backend: str = "auto"
    workers: int = 1
    checkpoint_every: int = 10_000
    parallel_min_edges: int = 200_000
    #: Persistent worker pool for large micro-batches; ``None`` lets
    #: the engine keep its own resident pool once one is needed (see
    #: :meth:`repro.core.streaming.StreamingMotifEngine.close`).
    pool: Optional[object] = field(default=None, repr=False, compare=False)
    #: Start method for the engine's resident pool (``None``:
    #: ``REPRO_START_METHOD`` env var, then platform default).
    start_method: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.delta is None or self.delta < 0:
            raise ValidationError(f"delta must be non-negative, got {self.delta}")
        _check_start_method(self.start_method)
        if self.window is not None and self.window <= 0:
            raise ValidationError(
                f"window must be positive (or None for unbounded), got {self.window}"
            )
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.categories not in CATEGORIES:
            raise ValidationError(
                f"unknown categories {self.categories!r}; choose from {CATEGORIES}"
            )
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.parallel_min_edges < 0:
            raise ValidationError(
                f"parallel_min_edges must be >= 0, got {self.parallel_min_edges}"
            )

    # -- category helpers (same contract as CountRequest) ---------------
    @property
    def wants_star_pair(self) -> bool:
        return self.categories in STAR_PAIR_CATEGORIES

    @property
    def wants_triangle(self) -> bool:
        return self.categories in TRIANGLE_CATEGORIES

    def resolve(self, spec: "AlgorithmSpec") -> "StreamRequest":
        """Capability-check against ``spec`` and make the backend concrete.

        Unlike batch resolution, ``"auto"`` stays symbolic when the
        spec implements the columnar backend: the engine picks python
        vs columnar *per dirty slice* by size (tiny slices are faster
        interpreted).  An explicit backend is honoured as-is.
        """
        if not spec.streaming:
            raise ValidationError(
                f"algorithm {spec.name!r} does not support streaming "
                f"(streaming-capable: {streaming_algorithms()})"
            )
        params = _check_capabilities(
            spec, categories=self.categories, workers=self.workers, params=self.params
        )
        backend = self.backend
        if backend != "auto" and backend not in spec.backends:
            backend = "python"
        if backend == "auto" and "columnar" not in spec.backends:
            backend = "python"
        return dataclasses.replace(self, backend=backend, params=params)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declared capabilities of one registered counting algorithm."""

    name: str
    func: Callable[[CountRequest], "MotifCounts"]
    is_exact: bool
    categories: Tuple[str, ...] = CATEGORIES
    parallel: bool = False
    #: Whether the algorithm executes through the shared HARE runtime
    #: and therefore consumes ``CountRequest.pool`` (a persistent
    #: :class:`~repro.parallel.pool.WorkerPool`).  Parallel algorithms
    #: without it (EX time slabs, BTS block farming) run their own
    #: fork-only pools and fall back to serial under other start
    #: methods.
    pool_runtime: bool = False
    #: Backends the algorithm implements, fastest first ("auto" picks
    #: the first).  Every algorithm has at least the python path.
    backends: Tuple[str, ...] = ("python",)
    params: Mapping[str, object] = field(default_factory=dict)
    description: str = ""
    #: Factory building an incremental engine from a resolved
    #: :class:`StreamRequest`; ``None`` means the algorithm has no
    #: streaming mode (see :func:`open_stream`).
    stream_factory: Optional[Callable[["StreamRequest"], object]] = None

    @property
    def kind(self) -> str:
        return "exact" if self.is_exact else "approximate"

    @property
    def streaming(self) -> bool:
        """Whether the algorithm can run incrementally over a stream."""
        return self.stream_factory is not None

    def describe(self) -> str:
        """One line for ``repro list-algorithms`` / ``--help``."""
        bits = [self.kind, "parallel" if self.parallel else "serial"]
        if "columnar" in self.backends:
            bits.append("columnar")
        if self.streaming:
            bits.append("streaming")
        if set(self.categories) != set(CATEGORIES):
            bits.append("categories: " + ",".join(self.categories))
        if self.params:
            bits.append(
                "params: " + ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            )
        detail = "; ".join(bits)
        text = f"{self.name:12s} [{detail}]"
        if self.description:
            text += f"  {self.description}"
        return text


_REGISTRY: Dict[str, AlgorithmSpec] = {}
_BUILTINS_LOADED = False


def register_algorithm(
    name: str,
    *,
    exact: bool,
    categories: Tuple[str, ...] = CATEGORIES,
    parallel: bool = False,
    pool_runtime: bool = False,
    backends: Tuple[str, ...] = ("python",),
    params: Optional[Mapping[str, object]] = None,
    description: str = "",
    stream_factory: Optional[Callable[["StreamRequest"], object]] = None,
    replace: bool = False,
) -> Callable[[Callable[[CountRequest], "MotifCounts"]], Callable]:
    """Decorator: register a counting function under ``name``.

    The decorated function takes a resolved :class:`CountRequest` and
    returns a :class:`~repro.core.counters.MotifCounts`; masking to the
    requested categories, timing, and sampling replication are handled
    by the dispatcher, not the function.
    """
    if not name or not isinstance(name, str):
        raise ValidationError(f"algorithm name must be a non-empty string, got {name!r}")
    bad = set(categories) - set(CATEGORIES)
    if bad:
        raise ValidationError(
            f"invalid capability: categories {sorted(bad)} not in {CATEGORIES}"
        )
    if "all" not in categories:
        raise ValidationError("invalid capability: every algorithm must support 'all'")
    bad_backends = set(backends) - (set(BACKENDS) - {"auto"})
    if bad_backends:
        raise ValidationError(
            f"invalid capability: backends {sorted(bad_backends)} not in "
            f"{tuple(b for b in BACKENDS if b != 'auto')}"
        )
    if "python" not in backends:
        raise ValidationError(
            "invalid capability: every algorithm must implement the python backend"
        )

    def decorator(func: Callable[[CountRequest], "MotifCounts"]) -> Callable:
        if name in _REGISTRY and not replace:
            raise ValidationError(
                f"algorithm {name!r} is already registered; pass replace=True to override"
            )
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            func=func,
            is_exact=exact,
            categories=tuple(categories),
            parallel=parallel,
            pool_runtime=pool_runtime,
            backends=tuple(backends),
            params=dict(params or {}),
            description=description,
            stream_factory=stream_factory,
        )
        return func

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (primarily for tests)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Flag is set only after a successful import: a failure part-way
        # (e.g. a user registration colliding with a builtin name) must
        # surface again on the next access, not leave a silently
        # half-populated registry.
        import repro.core.algorithms  # noqa: F401  (registers on import)

        _BUILTINS_LOADED = True


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm; raises on unknown names."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown algorithm {name!r}; choose from {available_algorithms()}"
        ) from None


def available_algorithms() -> Tuple[str, ...]:
    """Names of every registered algorithm, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def algorithm_specs() -> List[AlgorithmSpec]:
    """All registered specs, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY.values())


def streaming_algorithms() -> Tuple[str, ...]:
    """Names of the algorithms that declare a streaming mode."""
    _ensure_builtins()
    return tuple(name for name, spec in _REGISTRY.items() if spec.streaming)


def open_stream(request: StreamRequest):
    """Open an incremental counting session for a :class:`StreamRequest`.

    The streaming sibling of :func:`execute`: looks up the algorithm,
    capability-checks the request (:meth:`StreamRequest.resolve`) and
    hands it to the spec's ``stream_factory``, which returns an engine
    exposing ``ingest`` / ``checkpoint`` / ``replay`` (see
    :class:`repro.core.streaming.StreamingMotifEngine` for the
    reference implementation backing ``"fast"``).

    >>> from repro.core.registry import StreamRequest, open_stream
    >>> engine = open_stream(StreamRequest(delta=10.0, window=100.0))
    >>> engine.ingest([(0, 1, 0), (1, 0, 5), (0, 1, 9)])
    3
    >>> engine.checkpoint().counts.total()
    1
    """
    spec = get_algorithm(request.algorithm)
    req = request.resolve(spec)
    assert spec.stream_factory is not None  # guaranteed by resolve()
    return spec.stream_factory(req)


def execute(request: CountRequest) -> "MotifCounts":
    """Dispatch a request to its algorithm and normalize the result.

    The uniform post-processing contract, applied to every backend:

    * approximate algorithms run ``n_samples`` replicates with
      consecutive seeds; the grids are averaged and ``stderr`` holds
      the standard error of the mean (``None`` for a single draw);
    * ``is_exact`` reflects the spec, not the grid dtype;
    * the grid is masked to the requested categories via
      :meth:`MotifCounts.masked` — one masking implementation for all
      algorithms;
    * ``delta``, ``elapsed_seconds``, ``phase_seconds`` and provenance
      ``meta`` keys are always filled.
    """
    from repro.core.counters import MotifCounts

    spec = get_algorithm(request.algorithm)
    if request.graph is None:
        # Materialize a packed-file source into a zero-copy mmap-backed
        # graph; ``source`` is kept on the request for provenance.
        from repro.storage.format import open_packed

        request = dataclasses.replace(request, graph=open_packed(request.source).graph)
    req = request.resolve(spec)
    req.check_deadline()
    start = time.perf_counter()
    if req.n_samples == 1:
        if req.cluster is not None and spec.is_exact:
            from repro.distributed.cluster import cluster_count

            result = cluster_count(req, spec)
        elif req.wants_sharding and spec.is_exact:
            from repro.storage.sharded import sharded_count

            result = sharded_count(req, spec)
        else:
            result = spec.func(req)
        result.is_exact = spec.is_exact
    else:
        from repro.core.counters import category_keep_mask

        grids = []
        inner_phases: Dict[str, float] = {}
        sample_seconds: List[float] = []
        replicate = None
        assert req.seed is not None and req.n_samples is not None
        for i in range(req.n_samples):
            req.check_deadline()
            tick = time.perf_counter()
            replicate = spec.func(req.with_seed(req.seed + i))
            sample_seconds.append(time.perf_counter() - tick)
            # Surface which inner phase dominated: sum each phase the
            # replicates report.  Per-sample wall-clock goes to meta —
            # keeping it out of phase_seconds so the dict stays a
            # partition of the runtime, not a double count.
            for phase, seconds in replicate.phase_seconds.items():
                inner_phases[phase] = inner_phases.get(phase, 0.0) + seconds
            grids.append(np.asarray(replicate.grid, dtype=np.float64))
        phase_seconds = inner_phases or {
            f"sample[{i}]": seconds for i, seconds in enumerate(sample_seconds)
        }
        # Mask the replicates before aggregating so per-cell stderr and
        # the total's stderr both describe the requested selection.
        stacked = np.stack(grids) * category_keep_mask(req.categories)
        stderr = stacked.std(axis=0, ddof=1) / np.sqrt(req.n_samples)
        # The cells of one replicate are correlated (they come from the
        # same sample), so the total's stderr is computed from the
        # per-replicate totals, not by adding cell variances.
        totals = stacked.sum(axis=(1, 2))
        total_stderr = float(totals.std(ddof=1) / np.sqrt(req.n_samples))
        assert replicate is not None
        result = MotifCounts(
            stacked.mean(axis=0),
            algorithm=replicate.algorithm,
            stderr=stderr,
            is_exact=False,
            phase_seconds=phase_seconds,
            meta={"total_stderr": total_stderr, "sample_seconds": sample_seconds},
        )
    result.delta = req.delta
    # Adapters may set a custom label (e.g. "hare[2]"); if one left the
    # dataclass default, stamp the requested name so output is honest.
    if result.algorithm == "fast" and req.algorithm != "fast":
        result.algorithm = req.algorithm
    result.meta.setdefault("requested_algorithm", req.algorithm)
    result.meta.setdefault("backend", req.backend)
    if req.source is not None:
        result.meta.setdefault("source", req.source)
    if req.wants_sharding and not spec.is_exact:
        result.meta.setdefault(
            "sharding",
            "whole-graph (sampling estimators draw one global RNG stream)",
        )
    if req.cluster is not None and not spec.is_exact:
        result.meta.setdefault(
            "cluster",
            {"passthrough": "sampling estimators run whole-graph locally"},
        )
    if req.request_id is not None:
        result.meta.setdefault("request_id", req.request_id)
    if not spec.is_exact:
        result.meta.setdefault("n_samples", req.n_samples)
        result.meta.setdefault("seed", req.seed)
        for key, value in req.params.items():
            result.meta.setdefault(key, value)
    result = result.masked(req.categories)
    result.elapsed_seconds = time.perf_counter() - start
    return result


# The unified result type: every algorithm returns MotifCounts, so the
# request/result pair of this API is (CountRequest, CountResult).
from repro.core.counters import MotifCounts as CountResult  # noqa: E402, F401
