"""The taxonomy of 2- and 3-node, 3-edge δ-temporal motifs (Fig. 2).

Canonical form
--------------
A motif is a sequence of three directed edges in time order.  We write
it with nodes labelled by **order of first appearance**: the first edge
is always ``1→2`` and the first node that appears later and is neither
1 nor 2 is labelled ``3``.  Example: the temporal cycle is
``((1,2),(2,3),(3,1))``.  Two edge triples are the same motif iff their
canonical forms are equal.

Grid positions
--------------
The paper arranges the 36 motifs in the 6×6 grid ``M_ij`` of its
Fig. 2, split into three categories:

* 4 **pair** motifs (2 nodes): ``M55, M56, M65, M66``;
* 24 **star** motifs: columns 1–4, with Star-I in rows 1–2, Star-II in
  rows 3–4, Star-III in rows 5–6 (the paper's Fig. 3);
* 8 **triangle** motifs: rows 1–4, columns 5–6.

Grid positions are pinned to every anchor recoverable from the paper's
text — ``M24 = Star[I,in,o,in]``, ``M63 = Star[III,o,o,in]``,
``M65 = ⟨x→y, y→x, x→y⟩``, ``M25``/``M46`` worked examples, the full
triangle table of Fig. 8, and ``M26`` being the temporal cycle that
2SCENT counts.  Star cells not pinned by an anchor follow a systematic
rule (documented in DESIGN.md §2): within a type's row pair, the row is
chosen by the direction of the *isolated* edge (outward→odd row,
inward→even row) and the column by the directions of the two *paired*
edges in time order (``(in,in)→1, (in,o)→2, (o,o)→3, (o,in)→4``).

Counter-cell correspondence
---------------------------
The triple/quadruple counters of the paper index motifs by edge
directions relative to a **center node** ``u``.  The functions
:func:`star_cell_motif`, :func:`pair_cell_motif` and
:func:`tri_cell_motif` derive, for each counter cell, the canonical
motif it observes — reproducing the isomorphism table of the paper's
Fig. 8 programmatically (and tested against it verbatim).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.temporal_graph import IN, OUT

#: One directed edge of a canonical motif: (source label, dest label).
CanonicalEdge = Tuple[int, int]
#: A canonical motif: three edges in time order, appearance-labelled.
CanonicalForm = Tuple[CanonicalEdge, CanonicalEdge, CanonicalEdge]

#: Star types of Fig. 3 (index into the quadruple counter's first axis).
STAR_I, STAR_II, STAR_III = 0, 1, 2
#: Triangle types of Fig. 7.
TRI_I, TRI_II, TRI_III = 0, 1, 2

_STAR_TYPE_NAMES = {STAR_I: "I", STAR_II: "II", STAR_III: "III"}


class MotifCategory(enum.Enum):
    """Topological category of a motif (the Fig. 2 colour groups)."""

    PAIR = "pair"
    STAR = "star"
    TRIANGLE = "triangle"


def canonicalize(edges: Sequence[Tuple[int, int]]) -> CanonicalForm:
    """Relabel an edge triple's nodes by order of first appearance.

    ``edges`` must already be in time order.  Node identities may be
    arbitrary ints; the result uses labels 1, 2, 3.
    """
    mapping: Dict[int, int] = {}
    out: List[CanonicalEdge] = []
    for u, v in edges:
        for node in (u, v):
            if node not in mapping:
                mapping[node] = len(mapping) + 1
        out.append((mapping[u], mapping[v]))
    return (out[0], out[1], out[2])


@dataclass(frozen=True)
class Motif:
    """One of the 36 motifs: grid position + canonical edge pattern."""

    row: int
    col: int
    canonical: CanonicalForm
    category: MotifCategory = field(compare=False)

    @property
    def name(self) -> str:
        """The paper's label, e.g. ``"M24"``."""
        return f"M{self.row}{self.col}"

    @property
    def num_nodes(self) -> int:
        return len({n for e in self.canonical for n in e})

    @property
    def is_cycle(self) -> bool:
        """True for the temporal 3-cycle (``M26``), 2SCENT's target."""
        return self.canonical == ((1, 2), (2, 3), (3, 1))

    def __repr__(self) -> str:
        arrows = ", ".join(f"{u}→{v}" for u, v in self.canonical)
        return f"Motif({self.name}: ⟨{arrows}⟩)"


def _categorize(canonical: CanonicalForm) -> MotifCategory:
    nodes = {n for e in canonical for n in e}
    if len(nodes) == 2:
        return MotifCategory.PAIR
    pairs = {frozenset(e) for e in canonical}
    return MotifCategory.TRIANGLE if len(pairs) == 3 else MotifCategory.STAR


# ---------------------------------------------------------------------------
# Counter-cell -> canonical-motif derivations
# ---------------------------------------------------------------------------

def _star_cell_canonical(star_type: int, d1: int, d2: int, d3: int) -> CanonicalForm:
    """Canonical form observed by counter cell ``Star[type, d1, d2, d3]``.

    Node roles: center ``u``; the *isolated* edge connects neighbour
    ``a``; the two *paired* edges connect neighbour ``b``.  Directions
    are relative to ``u`` (:data:`OUT` = away from the center).
    """
    u, a, b = 0, 1, 2
    if star_type == STAR_I:
        nbrs = (a, b, b)
    elif star_type == STAR_II:
        nbrs = (b, a, b)
    elif star_type == STAR_III:
        nbrs = (b, b, a)
    else:
        raise ValueError(f"invalid star type {star_type}")
    dirs = (d1, d2, d3)
    edges = [(u, n) if d == OUT else (n, u) for n, d in zip(nbrs, dirs)]
    return canonicalize(edges)


def _pair_cell_canonical(d1: int, d2: int, d3: int) -> CanonicalForm:
    """Canonical form observed by counter cell ``Pair[d1, d2, d3]``."""
    u, w = 0, 1
    edges = [(u, w) if d == OUT else (w, u) for d in (d1, d2, d3)]
    return canonicalize(edges)


def _tri_cell_canonical(tri_type: int, di: int, dj: int, dk: int) -> CanonicalForm:
    """Canonical form observed by counter cell ``Tri[type, di, dj, dk]``.

    Following Fig. 7: ``ei`` joins center ``u`` and ``v`` (``di`` is
    relative to ``u``), ``ej`` joins ``u`` and ``w`` (``dj`` relative to
    ``u``), and ``ek`` joins ``v`` and ``w`` with ``dk`` relative to
    ``v`` (:data:`OUT` means ``v→w``).  The type fixes where ``ek``
    falls in time: before ``ei`` (Type I), between (Type II), or after
    ``ej`` (Type III); ``ei`` always precedes ``ej``.
    """
    u, v, w = 0, 1, 2
    ei = (u, v) if di == OUT else (v, u)
    ej = (u, w) if dj == OUT else (w, u)
    ek = (v, w) if dk == OUT else (w, v)
    if tri_type == TRI_I:
        seq = (ek, ei, ej)
    elif tri_type == TRI_II:
        seq = (ei, ek, ej)
    elif tri_type == TRI_III:
        seq = (ei, ej, ek)
    else:
        raise ValueError(f"invalid triangle type {tri_type}")
    return canonicalize(seq)


def _star_cell_grid_position(star_type: int, d1: int, d2: int, d3: int) -> Tuple[int, int]:
    """Grid position of a star counter cell (see module docstring)."""
    # star_type is 0/1/2 and the isolated edge is the 1st/2nd/3rd edge.
    isolated = (d1, d2, d3)[star_type]
    paired = {
        STAR_I: (d2, d3),
        STAR_II: (d1, d3),
        STAR_III: (d1, d2),
    }[star_type]
    base_row = {STAR_I: 1, STAR_II: 3, STAR_III: 5}[star_type]
    row = base_row if isolated == OUT else base_row + 1
    col = {(IN, IN): 1, (IN, OUT): 2, (OUT, OUT): 3, (OUT, IN): 4}[paired]
    return (row, col)


# ---------------------------------------------------------------------------
# Grid construction
# ---------------------------------------------------------------------------

def _build_grid() -> Dict[Tuple[int, int], Motif]:
    grid: Dict[Tuple[int, int], Motif] = {}

    def place(row: int, col: int, canonical: CanonicalForm) -> None:
        key = (row, col)
        if key in grid:
            raise AssertionError(f"grid cell {key} assigned twice")
        grid[key] = Motif(row, col, canonical, _categorize(canonical))

    # Pair motifs: row <- direction of 2nd edge, col <- direction of 3rd
    # (M65 = <1->2, 2->1, 1->2> per the paper's Fig. 1 walkthrough).
    place(5, 5, ((1, 2), (1, 2), (1, 2)))  # M55
    place(5, 6, ((1, 2), (1, 2), (2, 1)))  # M56
    place(6, 5, ((1, 2), (2, 1), (1, 2)))  # M65
    place(6, 6, ((1, 2), (2, 1), (2, 1)))  # M66

    # Triangle motifs, exactly the eight classes of Fig. 8.
    place(1, 5, ((1, 2), (1, 3), (2, 3)))  # M15
    place(1, 6, ((1, 2), (2, 3), (1, 3)))  # M16
    place(2, 5, ((1, 2), (3, 1), (2, 3)))  # M25
    place(2, 6, ((1, 2), (2, 3), (3, 1)))  # M26 — the temporal cycle
    place(3, 5, ((1, 2), (3, 1), (3, 2)))  # M35
    place(3, 6, ((1, 2), (3, 2), (1, 3)))  # M36
    place(4, 5, ((1, 2), (1, 3), (3, 2)))  # M45
    place(4, 6, ((1, 2), (3, 2), (3, 1)))  # M46

    # Star motifs: derived from the 24 counter cells.
    for star_type in (STAR_I, STAR_II, STAR_III):
        for d1 in (OUT, IN):
            for d2 in (OUT, IN):
                for d3 in (OUT, IN):
                    row, col = _star_cell_grid_position(star_type, d1, d2, d3)
                    place(row, col, _star_cell_canonical(star_type, d1, d2, d3))
    return grid


#: Grid position ``(row, col)`` -> :class:`Motif`, all 36 cells.
GRID: Dict[Tuple[int, int], Motif] = _build_grid()

#: Canonical form -> :class:`Motif` (forms are unique across the grid).
BY_CANONICAL: Dict[CanonicalForm, Motif] = {}
for _m in GRID.values():
    if _m.canonical in BY_CANONICAL:
        raise AssertionError(f"duplicate canonical form {_m.canonical}")
    BY_CANONICAL[_m.canonical] = _m

#: Name (``"M11"`` ... ``"M66"``) -> :class:`Motif`.
MOTIFS_BY_NAME: Dict[str, Motif] = {m.name: m for m in GRID.values()}

#: All 36 motifs in row-major grid order.
ALL_MOTIFS: List[Motif] = [GRID[(i, j)] for i in range(1, 7) for j in range(1, 7)]

#: The motifs of each category, in grid order.
PAIR_MOTIFS = [m for m in ALL_MOTIFS if m.category is MotifCategory.PAIR]
STAR_MOTIFS = [m for m in ALL_MOTIFS if m.category is MotifCategory.STAR]
TRIANGLE_MOTIFS = [m for m in ALL_MOTIFS if m.category is MotifCategory.TRIANGLE]


# ---------------------------------------------------------------------------
# Public lookup helpers
# ---------------------------------------------------------------------------

def star_cell_motif(star_type: int, d1: int, d2: int, d3: int) -> Motif:
    """Motif recorded by counter cell ``Star[type, d1, d2, d3]``."""
    return BY_CANONICAL[_star_cell_canonical(star_type, d1, d2, d3)]


def pair_cell_motif(d1: int, d2: int, d3: int) -> Motif:
    """Motif recorded by counter cell ``Pair[d1, d2, d3]``."""
    return BY_CANONICAL[_pair_cell_canonical(d1, d2, d3)]


def tri_cell_motif(tri_type: int, di: int, dj: int, dk: int) -> Motif:
    """Motif recorded by counter cell ``Tri[type, di, dj, dk]``.

    The paper's Fig. 8: the three cells (one per type) that map to the
    same motif are isomorphic views of one instance from its three
    corners.
    """
    return BY_CANONICAL[_tri_cell_canonical(tri_type, di, dj, dk)]


def classify_triple(
    edges: Sequence[Tuple[int, int]],
) -> Optional[Motif]:
    """Classify three time-ordered directed edges as one of the 36 motifs.

    Returns ``None`` when the triple is not a valid 2- or 3-node
    pattern (more than three distinct nodes, or a self-loop).  Any
    triple on at most three nodes is necessarily connected.
    """
    nodes = set()
    for u, v in edges:
        if u == v:
            return None
        nodes.add(u)
        nodes.add(v)
    if len(nodes) > 3:
        return None
    return BY_CANONICAL[canonicalize(edges)]


def motif_cell(motif: Motif) -> int:
    """Flat row-major grid cell of a motif: ``(row-1)*6 + (col-1)``.

    The one definition of the 6×6 grid's flat layout — the sampling
    kernels, their classification table, and the per-cell tallies all
    index through this.
    """
    return (motif.row - 1) * 6 + (motif.col - 1)


def star_type_name(star_type: int) -> str:
    """Human-readable star type (``"I"``, ``"II"``, ``"III"``)."""
    return _STAR_TYPE_NAMES[star_type]
