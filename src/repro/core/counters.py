"""The paper's compact counters and the 6×6 result grid.

Three counters record motif instances during a FAST pass:

* ``Star[type, dir1, dir2, dir3]`` — quadruple counter, 3·2·2·2 = 24
  cells, one per non-isomorphic star motif;
* ``Pair[dir1, dir2, dir3]`` — triple counter, 8 cells for the 4
  non-isomorphic pair motifs (each instance is observed from both of
  its endpoints, landing in the two complementary cells);
* ``Tri[type, diri, dirj, dirk]`` — quadruple counter, 24 cells for the
  8 non-isomorphic triangle motifs (each instance is observed from its
  three corners, landing in the three isomorphic cells of Fig. 8).

Counters are plain flat ``list`` objects underneath so the counting
hot loops can index them without attribute lookups; the classes here
wrap projection to the grid, merging (the OpenMP ``reduction``
analogue) and the paper's de-duplication rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.core import motifs as motif_mod
from repro.core.motifs import (
    MotifCategory,
    GRID,
    MOTIFS_BY_NAME,
    pair_cell_motif,
    star_cell_motif,
    tri_cell_motif,
)
from repro.graph.temporal_graph import IN, OUT


def star_index(star_type: int, d1: int, d2: int, d3: int) -> int:
    """Flat index of ``Star[type, d1, d2, d3]`` (also used by ``Tri``)."""
    return star_type * 8 + d1 * 4 + d2 * 2 + d3


def pair_index(d1: int, d2: int, d3: int) -> int:
    """Flat index of ``Pair[d1, d2, d3]``."""
    return d1 * 4 + d2 * 2 + d3


def _dir_name(d: int) -> str:
    return "o" if d == OUT else "in"


class _FlatCounter:
    """Shared machinery for the flat-list counters."""

    size = 0

    def __init__(self, data: Optional[List[int]] = None) -> None:
        if data is None:
            data = [0] * self.size
        elif len(data) != self.size:
            raise ValidationError(
                f"{type(self).__name__} expects {self.size} cells, got {len(data)}"
            )
        self.data: List[int] = list(data)

    def merge(self, other: "_FlatCounter") -> "_FlatCounter":
        """Add ``other`` into this counter in place (reduction step)."""
        if type(other) is not type(self):
            raise ValidationError(f"cannot merge {type(other).__name__} into {type(self).__name__}")
        self.data = [a + b for a, b in zip(self.data, other.data)]
        return self

    def copy(self):
        """Independent deep copy (workers start from a private copy)."""
        return type(self)(list(self.data))

    def total(self) -> int:
        """Sum over all cells (raw, before de-duplication)."""
        return sum(self.data)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.data == other.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(total={self.total()})"


class StarCounter(_FlatCounter):
    """``Star[·,·,·,·]`` — 24 cells, one per star motif, counted once."""

    size = 24

    def get(self, star_type: int, d1: int, d2: int, d3: int) -> int:
        """Count of ``Star[type, d1, d2, d3]`` (§IV-A.2, Table I).

        ``star_type`` is 0/1/2 for Star-I/II/III (which edge is the
        isolated one); ``d1..d3`` are the chronological edge
        directions relative to the center (:data:`OUT`/:data:`IN`).
        """
        return self.data[star_index(star_type, d1, d2, d3)]

    def add(self, star_type: int, d1: int, d2: int, d3: int, count: int = 1) -> None:
        """Add ``count`` instances to one star cell (Algorithm 1 line 13)."""
        self.data[star_index(star_type, d1, d2, d3)] += count

    def cells(self) -> Iterable[Tuple[str, int]]:
        """Yield ``("Star[I,in,o,in]", count)`` labelled cells."""
        for t in (0, 1, 2):
            for d1 in (OUT, IN):
                for d2 in (OUT, IN):
                    for d3 in (OUT, IN):
                        label = (
                            f"Star[{motif_mod.star_type_name(t)},"
                            f"{_dir_name(d1)},{_dir_name(d2)},{_dir_name(d3)}]"
                        )
                        yield label, self.get(t, d1, d2, d3)

    def per_motif(self) -> Dict[str, int]:
        """Exact per-motif counts (stars have a unique center: no dedup)."""
        result: Dict[str, int] = {}
        for t in (0, 1, 2):
            for d1 in (OUT, IN):
                for d2 in (OUT, IN):
                    for d3 in (OUT, IN):
                        motif = star_cell_motif(t, d1, d2, d3)
                        result[motif.name] = self.get(t, d1, d2, d3)
        return result


class PairCounter(_FlatCounter):
    """``Pair[·,·,·]`` — 8 cells for the 4 pair motifs.

    A pair instance with edges between ``x`` and ``y`` is found twice:
    once with center ``x`` (cell ``[d1,d2,d3]``) and once with center
    ``y`` (the complementary cell ``[¬d1,¬d2,¬d3]``).  The cell whose
    first direction is :data:`OUT` therefore holds the exact count, and
    after a full pass complementary cells must agree —
    :meth:`check_center_symmetry` asserts exactly that.
    """

    size = 8

    def get(self, d1: int, d2: int, d3: int) -> int:
        """Count of ``Pair[d1, d2, d3]`` seen from one endpoint (§IV-A.3)."""
        return self.data[pair_index(d1, d2, d3)]

    def add(self, d1: int, d2: int, d3: int, count: int = 1) -> None:
        """Add ``count`` instances to one pair cell (Algorithm 1 line 11)."""
        self.data[pair_index(d1, d2, d3)] += count

    def check_center_symmetry(self) -> bool:
        """True iff every cell equals its direction-flipped complement."""
        for d1 in (OUT, IN):
            for d2 in (OUT, IN):
                for d3 in (OUT, IN):
                    if self.get(d1, d2, d3) != self.get(1 - d1, 1 - d2, 1 - d3):
                        return False
        return True

    def per_motif(self) -> Dict[str, int]:
        """Exact per-motif counts via the OUT-rooted cells."""
        result: Dict[str, int] = {}
        for d2 in (OUT, IN):
            for d3 in (OUT, IN):
                motif = pair_cell_motif(OUT, d2, d3)
                result[motif.name] = self.get(OUT, d2, d3)
        return result


class TriangleCounter(_FlatCounter):
    """``Tri[·,·,·,·]`` — 24 cells for the 8 triangle motifs.

    In the dependency-free (parallel-safe) mode of the paper each
    instance is counted three times — once per corner, landing in the
    three isomorphic cells of Fig. 8 — so per-motif projection divides
    by three.  With the single-threaded center-removal trick
    (Algorithm 2, line 26) each instance is counted once and
    ``multiplicity`` is 1.
    """

    size = 24

    def __init__(self, data: Optional[List[int]] = None, multiplicity: int = 3) -> None:
        super().__init__(data)
        if multiplicity not in (1, 3):
            raise ValidationError(f"multiplicity must be 1 or 3, got {multiplicity}")
        self.multiplicity = multiplicity

    def copy(self):
        """Independent deep copy preserving the multiplicity mode."""
        return TriangleCounter(list(self.data), self.multiplicity)

    def merge(self, other: "_FlatCounter") -> "TriangleCounter":
        """Reduce another triangle counter into this one (§IV-C).

        Only counters of equal ``multiplicity`` are mergeable — mixing
        a center-removal run into a dependency-free one would break
        the per-motif division rule.
        """
        if isinstance(other, TriangleCounter) and other.multiplicity != self.multiplicity:
            raise ValidationError("cannot merge TriangleCounters of different multiplicity")
        super().merge(other)
        return self

    def get(self, tri_type: int, di: int, dj: int, dk: int) -> int:
        """Count of ``Tri[type, di, dj, dk]`` (§IV-B, Fig. 7).

        ``tri_type`` is 0/1/2 for Triangle-I/II/III (where the far
        edge ``e_k`` falls relative to the center's ``e_i``/``e_j``);
        directions are relative to the corner the instance was
        observed from.
        """
        return self.data[star_index(tri_type, di, dj, dk)]

    def add(self, tri_type: int, di: int, dj: int, dk: int, count: int = 1) -> None:
        """Add ``count`` instances to one triangle cell (Algorithm 2 line 19)."""
        self.data[star_index(tri_type, di, dj, dk)] += count

    def isomorphic_cells(self) -> Dict[str, List[Tuple[int, int, int, int]]]:
        """Motif name -> its (type, di, dj, dk) counter cells (Fig. 8)."""
        groups: Dict[str, List[Tuple[int, int, int, int]]] = {}
        for t in (0, 1, 2):
            for di in (OUT, IN):
                for dj in (OUT, IN):
                    for dk in (OUT, IN):
                        name = tri_cell_motif(t, di, dj, dk).name
                        groups.setdefault(name, []).append((t, di, dj, dk))
        return groups

    def check_corner_symmetry(self) -> bool:
        """True iff the three isomorphic cells of every motif agree.

        Holds after a full multiplicity-3 pass; does not hold for
        partial (per-worker) counters or center-removal runs.
        """
        if self.multiplicity != 3:
            return True
        for cells in self.isomorphic_cells().values():
            values = {self.get(*cell) for cell in cells}
            if len(values) > 1:
                return False
        return True

    def per_motif(self) -> Dict[str, int]:
        """Exact per-motif counts, de-duplicated by ``multiplicity``."""
        sums: Dict[str, int] = {}
        for t in (0, 1, 2):
            for di in (OUT, IN):
                for dj in (OUT, IN):
                    for dk in (OUT, IN):
                        name = tri_cell_motif(t, di, dj, dk).name
                        sums[name] = sums.get(name, 0) + self.get(t, di, dj, dk)
        result: Dict[str, int] = {}
        for name, value in sums.items():
            if value % self.multiplicity:
                raise ValidationError(
                    f"triangle counter for {name} is {value}, not divisible by "
                    f"multiplicity {self.multiplicity}; was a partial counter projected?"
                )
            result[name] = value // self.multiplicity
        return result


def _format_count(value) -> str:
    """Format a count the way Fig. 10 does (K/M suffixes)."""
    if value >= 10_000_000:
        return f"{value / 1e6:.1f}M"
    if value >= 10_000:
        return f"{value / 1e3:.1f}K"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


@dataclass
class MotifCounts:
    """Counts of all 36 motifs: the paper's 6×6 grid (Fig. 10).

    Supports lookup by motif name (``counts["M24"]``), per-category
    totals, exact equality, addition, and a text rendering of the grid.

    This is also the registry's unified ``CountResult``: sampling
    estimators carry a ``stderr`` grid (standard error of the mean over
    replicates, see :func:`repro.core.registry.execute`), algorithms
    report per-phase wall-clock in ``phase_seconds``, and ``is_exact``
    records whether the producing algorithm is exact (defaulting to
    dtype inference: integer grids are exact).
    """

    grid: np.ndarray
    algorithm: str = "fast"
    delta: float = 0.0
    elapsed_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)
    stderr: Optional[np.ndarray] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    is_exact: Optional[bool] = None

    def __post_init__(self) -> None:
        grid = np.asarray(self.grid)
        if np.issubdtype(grid.dtype, np.integer) or np.issubdtype(grid.dtype, np.bool_):
            grid = grid.astype(np.int64)
        else:
            # Sampling estimators carry fractional expectations.
            grid = grid.astype(np.float64)
        self.grid = grid
        if self.grid.shape != (6, 6):
            raise ValidationError(f"grid must be 6x6, got shape {self.grid.shape}")
        if self.stderr is not None:
            self.stderr = np.asarray(self.stderr, dtype=np.float64)
            if self.stderr.shape != (6, 6):
                raise ValidationError(
                    f"stderr must be 6x6, got shape {self.stderr.shape}"
                )
        if self.is_exact is None:
            self.is_exact = bool(np.issubdtype(self.grid.dtype, np.integer))

    @classmethod
    def zeros(cls, **kwargs) -> "MotifCounts":
        """An all-zero exact grid (identity element of ``+``)."""
        return cls(np.zeros((6, 6), dtype=np.int64), **kwargs)

    @classmethod
    def from_dict(cls, per_motif: Dict[str, int], **kwargs) -> "MotifCounts":
        """Build a grid from ``{"M11": count, ...}`` names (Fig. 10 ids)."""
        grid = np.zeros((6, 6), dtype=np.int64)
        for name, value in per_motif.items():
            motif = MOTIFS_BY_NAME[name]
            grid[motif.row - 1, motif.col - 1] = value
        return cls(grid, **kwargs)

    @classmethod
    def from_counters(
        cls,
        star: Optional[StarCounter] = None,
        pair: Optional[PairCounter] = None,
        triangle: Optional[TriangleCounter] = None,
        **kwargs,
    ) -> "MotifCounts":
        """Project counters onto the grid (de-duplicating as documented)."""
        per_motif: Dict[str, int] = {}
        for counter in (star, pair, triangle):
            if counter is not None:
                per_motif.update(counter.per_motif())
        return cls.from_dict(per_motif, **kwargs)

    # -- lookups ------------------------------------------------------
    def __getitem__(self, name: str):
        motif = MOTIFS_BY_NAME[name]
        return self.grid[motif.row - 1, motif.col - 1].item()

    def get(self, row: int, col: int):
        """Count of ``M{row}{col}`` (1-indexed, as in the paper)."""
        return self.grid[row - 1, col - 1].item()

    def category_total(self, category: MotifCategory) -> int:
        return sum(
            self.get(m.row, m.col) for m in GRID.values() if m.category is category
        )

    def total(self):
        """Total motif instances across all 36 motifs."""
        return self.grid.sum().item()

    def per_motif(self) -> Dict[str, int]:
        return {m.name: self.get(m.row, m.col) for m in GRID.values()}

    # -- provenance ---------------------------------------------------
    @property
    def backend(self) -> str:
        """Effective execution backend (``"python"``/``"columnar"``).

        Recorded by the registry dispatcher; defaults to ``"python"``
        for results constructed outside it.
        """
        return str(self.meta.get("backend", "python"))

    def dominant_phase(self) -> Optional[Tuple[str, float]]:
        """The ``(name, seconds)`` phase that dominated the runtime.

        ``None`` when the producing algorithm reported no per-phase
        timings.  Lets callers see at a glance *where* a run spent its
        time (e.g. ``star_pair`` vs ``triangle`` vs ``columnar_build``).
        """
        if not self.phase_seconds:
            return None
        name = max(self.phase_seconds, key=lambda k: self.phase_seconds[k])
        return name, self.phase_seconds[name]

    # -- uncertainty (sampling estimators) ----------------------------
    def stderr_of(self, name: str) -> float:
        """Standard error of one motif's estimate (0.0 when exact)."""
        if self.stderr is None:
            return 0.0
        motif = MOTIFS_BY_NAME[name]
        return float(self.stderr[motif.row - 1, motif.col - 1])

    def confidence_interval(self, name: str, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for one motif (default 95%)."""
        center = float(self[name])
        half = z * self.stderr_of(name)
        return (center - half, center + half)

    # -- category masking ---------------------------------------------
    def masked(self, categories: str) -> "MotifCounts":
        """Copy with cells outside the selected categories zeroed.

        The single masking implementation shared by every algorithm
        (the registry dispatcher applies it uniformly).  ``"all"``
        returns ``self`` unchanged.
        """
        keep = category_keep_mask(categories)
        if categories == "all":
            return self
        return MotifCounts(
            np.where(keep, self.grid, 0),
            algorithm=self.algorithm,
            delta=self.delta,
            elapsed_seconds=self.elapsed_seconds,
            meta=dict(self.meta),
            stderr=None if self.stderr is None else np.where(keep, self.stderr, 0.0),
            phase_seconds=dict(self.phase_seconds),
            is_exact=self.is_exact,
        )

    # -- algebra ------------------------------------------------------
    def __add__(self, other: "MotifCounts") -> "MotifCounts":
        # Adding independent estimates: variances add, so stderr cells
        # combine in quadrature (and are dropped if either side lacks
        # them).  Exactness survives only if both sides are exact.
        stderr = None
        if self.stderr is not None and other.stderr is not None:
            stderr = np.sqrt(self.stderr ** 2 + other.stderr ** 2)
        return MotifCounts(
            self.grid + other.grid,
            algorithm=self.algorithm,
            delta=self.delta,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            meta=dict(self.meta),
            stderr=stderr,
            is_exact=bool(self.is_exact and other.is_exact),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MotifCounts):
            return NotImplemented
        return bool(np.array_equal(self.grid, other.grid))

    def same_counts(self, other: "MotifCounts") -> bool:
        """Alias for equality, reads better at call sites."""
        return self == other

    # -- rendering ----------------------------------------------------
    def to_text(self, title: Optional[str] = None) -> str:
        """Render the 6×6 grid in the style of Fig. 10."""
        lines: List[str] = []
        if title:
            lines.append(title)
        header = "      " + "".join(f"{f'j={j}':>9}" for j in range(1, 7))
        lines.append(header)
        for i in range(1, 7):
            row = "".join(f"{_format_count(self.get(i, j)):>9}" for j in range(1, 7))
            lines.append(f"  i={i}{row}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text(
            f"MotifCounts[{self.algorithm}, δ={self.delta}] total={self.total()}"
        )


def category_keep_mask(categories: str) -> np.ndarray:
    """Boolean 6×6 mask of the grid cells a category selection keeps."""
    wanted = {
        "star": {MotifCategory.STAR},
        "pair": {MotifCategory.PAIR},
        "triangle": {MotifCategory.TRIANGLE},
        "star_pair": {MotifCategory.STAR, MotifCategory.PAIR},
        "all": {MotifCategory.STAR, MotifCategory.PAIR, MotifCategory.TRIANGLE},
    }.get(categories)
    if wanted is None:
        raise ValidationError(
            f"unknown categories {categories!r}; choose from "
            "('all', 'star', 'pair', 'triangle', 'star_pair')"
        )
    keep = np.zeros((6, 6), dtype=bool)
    for motif in GRID.values():
        if motif.category in wanted:
            keep[motif.row - 1, motif.col - 1] = True
    return keep


def merge_counters(counters: Iterable[_FlatCounter]) -> Optional[_FlatCounter]:
    """Reduce an iterable of same-type counters into one (sum of cells)."""
    result: Optional[_FlatCounter] = None
    for counter in counters:
        if result is None:
            result = counter.copy()
        else:
            result.merge(counter)
    return result
