"""The paper's primary contribution: FAST counting algorithms.

Public entry point: :func:`repro.core.api.count_motifs`, which runs
FAST-Star and FAST-Tri and assembles the 6×6 motif-count grid of the
paper's Fig. 2/Fig. 10.
"""

from repro.core.motifs import (
    Motif,
    MotifCategory,
    ALL_MOTIFS,
    GRID,
    MOTIFS_BY_NAME,
    classify_triple,
    canonicalize,
)
from repro.core.counters import (
    MotifCounts,
    PairCounter,
    StarCounter,
    TriangleCounter,
)
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle
from repro.core.registry import (
    AlgorithmSpec,
    CountRequest,
    available_algorithms,
    execute,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.api import count_motifs, count_motifs_sweep, SweepResult
from repro.core.bruteforce import brute_force_counts

__all__ = [
    "Motif",
    "MotifCategory",
    "ALL_MOTIFS",
    "GRID",
    "MOTIFS_BY_NAME",
    "classify_triple",
    "canonicalize",
    "MotifCounts",
    "PairCounter",
    "StarCounter",
    "TriangleCounter",
    "count_star_pair",
    "count_triangle",
    "count_motifs",
    "count_motifs_sweep",
    "SweepResult",
    "AlgorithmSpec",
    "CountRequest",
    "available_algorithms",
    "execute",
    "register_algorithm",
    "unregister_algorithm",
    "brute_force_counts",
]
