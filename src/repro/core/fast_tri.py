"""FAST-Tri: exact counting of triangle temporal motifs.

This is Algorithm 2 of the paper.  For each center ``u``, every pair
of edges ``ei = S_u[i]``, ``ej = S_u[j]`` (``i < j``,
``ej.t - ei.t <= δ``, distinct far endpoints ``v != w``) nominates a
potential triangle; the pair timeline ``E(v, w)`` is then sliced by
binary search to the edges ``ek`` that satisfy the three-edge δ window,
and each ``ek`` is classified by where it falls relative to ``ei`` and
``ej``:

* before ``ei`` → **Triangle-I** (requires ``ej.t - ek.t <= δ``),
* between     → **Triangle-II**,
* after ``ej`` → **Triangle-III** (requires ``ek.t - ei.t <= δ``).

Each instance is discovered three times — once per corner, as one
Type-I, one Type-II and one Type-III cell (Fig. 8) — so the default,
dependency-free mode divides by three at projection time
(``multiplicity=3``).  ``remove_centers=True`` reproduces the paper's
single-threaded alternative (Algorithm 2, line 26): a processed center
is deleted from the graph so every instance is found exactly once
(``multiplicity=1``).  That mode is inherently sequential, which is
precisely why HARE does not use it.

Timestamp ties are resolved by canonical edge id, consistent with the
rest of the repository (see :mod:`repro.graph.temporal_graph`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.counters import TriangleCounter
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: An intra-node work unit: (center node, first-edge index range).
TriTask = Tuple[int, int, Optional[int]]


def scan_center(
    graph: TemporalGraph,
    node: int,
    delta: float,
    tri_data: List[int],
    i_lo: int = 0,
    i_hi: Optional[int] = None,
    removed: Optional[bytearray] = None,
) -> None:
    """Run Algorithm 2's inner loops for one center node.

    Counts every triangle whose ``ei`` index falls in ``[i_lo, i_hi)``
    into the flat counter list (layout
    ``Tri[type,di,dj,dk] -> type*8 + di*4 + dj*2 + dk``).  ``removed``
    marks already-processed centers for the single-threaded
    de-duplication mode.
    """
    seq = graph.node_sequence(node)
    times = seq.times
    nbrs = seq.nbrs
    dirs = seq.dirs
    eids = seq.eids
    s = len(times)
    limit = s - 1
    if i_hi is None or i_hi > limit:
        i_hi = limit
    tri = tri_data
    pair_timeline = graph.pair_timeline
    for i in range(i_lo, i_hi):
        vi = nbrs[i]
        if removed is not None and removed[vi]:
            continue
        ti = times[i]
        eidi = eids[i]
        di4 = dirs[i] * 4
        tmax = ti + delta
        for j in range(i + 1, s):
            tj = times[j]
            if tj > tmax:
                break
            vj = nbrs[j]
            if vj == vi:
                continue
            if removed is not None and removed[vj]:
                continue
            p_times, p_dirs, p_eids = pair_timeline(vi, vj)
            if not p_times:
                continue
            eidj = eids[j]
            base = di4 + dirs[j] * 2
            # Pair-timeline directions are stored relative to the
            # smaller internal id; flip when vi is the larger one so
            # dk is relative to v (= vi), as Fig. 7 defines it.
            flip = 1 if vi > vj else 0
            lo = bisect_left(p_times, tj - delta)
            for k in range(lo, len(p_times)):
                tk = p_times[k]
                if tk > tmax:
                    break
                cell = base + (p_dirs[k] ^ flip)
                if tk < ti:
                    tri[cell] += 1  # Triangle-I
                elif tk > tj:
                    tri[16 + cell] += 1  # Triangle-III
                else:
                    eidk = p_eids[k]
                    if tk == ti and eidk < eidi:
                        tri[cell] += 1  # Triangle-I (tie on ei)
                    elif tk == tj and eidk > eidj:
                        tri[16 + cell] += 1  # Triangle-III (tie on ej)
                    else:
                        tri[8 + cell] += 1  # Triangle-II


def count_triangle_tasks(
    graph: TemporalGraph,
    delta: float,
    tasks: Iterable[TriTask],
) -> TriangleCounter:
    """Count triangles over explicit (node, i_lo, i_hi) tasks.

    HARE's worker entry point; exactness requires every (center,
    ``ei``-index) pair to be covered exactly once across all tasks.
    The result uses ``multiplicity=3``.
    """
    counter = TriangleCounter(multiplicity=3)
    data = counter.data
    for node, i_lo, i_hi in tasks:
        scan_center(graph, node, delta, data, i_lo, i_hi)
    return counter


def count_triangle(
    graph: TemporalGraph,
    delta: float,
    *,
    nodes: Optional[Sequence[int]] = None,
    remove_centers: bool = False,
    backend: str = "python",
) -> TriangleCounter:
    """Count all triangle temporal motifs (FAST-Tri, serial).

    Parameters
    ----------
    graph:
        The input temporal graph.
    delta:
        The motif time constraint δ.
    nodes:
        Optional subset of centers (HARE inter-node decomposition).
    remove_centers:
        Use the paper's single-threaded de-duplication (line 26 of
        Algorithm 2): incompatible with ``nodes`` because correctness
        depends on processing every center in one sequence.
    backend:
        ``"python"`` runs the interpreted per-edge scan above;
        ``"columnar"`` runs the vectorized kernel of
        :mod:`repro.core.columnar_kernels` — same exact counts,
        ``multiplicity=3`` only (center removal is order-dependent and
        is rejected).

    Returns
    -------
    TriangleCounter
        ``multiplicity=3`` by default; ``multiplicity=1`` with
        ``remove_centers=True``.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if backend == "columnar":
        if remove_centers:
            raise ValidationError(
                "remove_centers is inherently sequential; use backend='python'"
            )
        from repro.core.columnar_kernels import count_triangle_columnar

        tasks = None if nodes is None else [(u, 0, None) for u in nodes]
        tri_data = count_triangle_columnar(graph, delta, tasks)
        return TriangleCounter(tri_data.tolist(), multiplicity=3)
    if remove_centers:
        if nodes is not None:
            raise ValidationError("remove_centers requires processing all nodes")
        counter = TriangleCounter(multiplicity=1)
        data = counter.data
        removed = bytearray(graph.num_nodes)
        for node in range(graph.num_nodes):
            scan_center(graph, node, delta, data, removed=removed)
            removed[node] = 1
        return counter
    center_ids = range(graph.num_nodes) if nodes is None else nodes
    return count_triangle_tasks(graph, delta, ((u, 0, None) for u in center_ids))
