"""Built-in registry adapters for the seven counting algorithms.

Each adapter translates a resolved
:class:`~repro.core.registry.CountRequest` into the underlying
module's native call and returns a raw
:class:`~repro.core.counters.MotifCounts`.  The dispatcher — not the
adapters — applies category masking, sampling replication/stderr, and
timing, so adapters restrict *computation* where cheap (skipping a
pass that the category selection cannot need) but never mask results
themselves.

Heavy modules are imported lazily inside each adapter so importing the
registry stays cheap.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.counters import MotifCounts
from repro.core.registry import CountRequest, register_algorithm


def _category_motifs(categories: str) -> List["object"]:
    """Motif subset implied by a category selection (for per-motif BT/BTS)."""
    from repro.core.motifs import (
        ALL_MOTIFS,
        PAIR_MOTIFS,
        STAR_MOTIFS,
        TRIANGLE_MOTIFS,
    )

    return {
        "all": ALL_MOTIFS,
        "star": STAR_MOTIFS,
        "pair": PAIR_MOTIFS,
        "triangle": TRIANGLE_MOTIFS,
        "star_pair": STAR_MOTIFS + PAIR_MOTIFS,
    }[categories]


def _fast_stream_factory(request):
    """Build the incremental engine for ``algorithm="fast"`` streams."""
    from repro.core.streaming import StreamingMotifEngine

    return StreamingMotifEngine(request)


@register_algorithm(
    "fast",
    exact=True,
    parallel=True,
    pool_runtime=True,
    backends=("columnar", "python"),
    description="FAST-Star + FAST-Tri (this paper); HARE when workers > 1",
    stream_factory=_fast_stream_factory,
)
def _fast(request: CountRequest) -> MotifCounts:
    if request.workers > 1:
        from repro.parallel.hare import hare_count_request

        return hare_count_request(request)
    from repro.core.fast_star import count_star_pair
    from repro.core.fast_tri import count_triangle

    phase_seconds = {}
    if request.backend == "columnar":
        # Force (and time) the one-off columnar build so the counting
        # phases below measure pure kernel time.
        tick = time.perf_counter()
        request.graph.columnar()
        phase_seconds["columnar_build"] = time.perf_counter() - tick
    star = pair = triangle = None
    if request.wants_star_pair:
        tick = time.perf_counter()
        star, pair = count_star_pair(
            request.graph, request.delta, backend=request.backend
        )
        phase_seconds["star_pair"] = time.perf_counter() - tick
    if request.wants_triangle:
        tick = time.perf_counter()
        triangle = count_triangle(
            request.graph, request.delta, backend=request.backend
        )
        phase_seconds["triangle"] = time.perf_counter() - tick
    return MotifCounts.from_counters(
        star, pair, triangle, algorithm="fast", phase_seconds=phase_seconds
    )


@register_algorithm(
    "ex",
    exact=True,
    parallel=True,
    # Python first: EX's window counters are sublinear in instances,
    # the columnar enumeration is Θ(instances) — columnar stays
    # explicit opt-in, never the "auto" resolution.
    backends=("python", "columnar"),
    description="EX sliding-window baseline (Paranjape et al., WSDM'17)",
)
def _ex(request: CountRequest) -> MotifCounts:
    from repro.baselines.exact_ex import ex_count

    return ex_count(
        request.graph,
        request.delta,
        categories=request.categories,
        workers=request.workers,
        start_method=request.start_method,
        backend=request.backend,
    )


@register_algorithm(
    "bruteforce",
    exact=True,
    description="reference triple enumeration; small graphs only",
)
def _bruteforce(request: CountRequest) -> MotifCounts:
    from repro.core.bruteforce import brute_force_counts

    return brute_force_counts(request.graph, request.delta)


@register_algorithm(
    "bt",
    exact=True,
    description="BT chronological backtracking (Mackey et al.), one pass per motif",
)
def _bt(request: CountRequest) -> MotifCounts:
    from repro.baselines.backtracking import bt_count

    return bt_count(request.graph, request.delta, _category_motifs(request.categories))


@register_algorithm(
    "twoscent",
    exact=True,
    categories=("all", "triangle"),
    params={"enumerate_all_lengths": False},
    description="2SCENT cycle enumeration (Kumar & Calders); counts M26 only",
)
def _twoscent(request: CountRequest) -> MotifCounts:
    from repro.baselines.twoscent import twoscent_count

    return twoscent_count(
        request.graph,
        request.delta,
        enumerate_all_lengths=bool(request.param("enumerate_all_lengths", False)),
    )


@register_algorithm(
    "bts",
    exact=False,
    parallel=True,
    pool_runtime=True,
    backends=("columnar", "python"),
    params={"q": 0.3, "window_factor": 5.0},
    description="BTS interval sampling over BT (Liu et al., WSDM'19)",
)
def _bts(request: CountRequest) -> MotifCounts:
    from repro.baselines.sampling_bts import bts_count

    return bts_count(
        request.graph,
        request.delta,
        q=float(request.param("q")),
        window_factor=float(request.param("window_factor")),
        seed=int(request.seed or 0),
        motifs=_category_motifs(request.categories),
        exact_when_full=False,
        workers=request.workers,
        start_method=request.start_method,
        backend=request.backend,
        pool=request.pool,
    )


@register_algorithm(
    "ews",
    exact=False,
    backends=("columnar", "python"),
    params={"p": 0.01, "q": 1.0},
    description="EWS edge/wedge sampling (Wang et al., CIKM'20)",
)
def _ews(request: CountRequest) -> MotifCounts:
    from repro.baselines.sampling_ews import ews_count

    return ews_count(
        request.graph,
        request.delta,
        p=float(request.param("p")),
        q=float(request.param("q")),
        seed=int(request.seed or 0),
        backend=request.backend,
    )
