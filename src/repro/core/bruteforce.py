"""Brute-force reference counter (ground truth for the test suite).

Enumerates every ordered triple of edges ``a < b < c`` (canonical
order) with ``t_c - t_a <= δ`` and classifies it against the canonical
motif table.  This is Θ(m · w²) where ``w`` is the δ-window size — far
too slow for the benchmark graphs, but unbeatable as an independent
oracle: it shares *no* code path with FAST beyond the motif table
itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.counters import MotifCounts
from repro.core.motifs import classify_triple
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


def brute_force_counts(graph: TemporalGraph, delta: float) -> MotifCounts:
    """Count all 36 motifs by exhaustive triple enumeration.

    Intended for small graphs in tests; raises on negative ``delta``.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    src, dst, t = graph.edge_lists()
    m = graph.num_edges
    grid = np.zeros((6, 6), dtype=np.int64)
    for a in range(m):
        ta = t[a]
        limit = ta + delta
        ea = (src[a], dst[a])
        for b in range(a + 1, m):
            if t[b] > limit:
                break
            eb = (src[b], dst[b])
            for c in range(b + 1, m):
                if t[c] > limit:
                    break
                motif = classify_triple((ea, eb, (src[c], dst[c])))
                if motif is not None:
                    grid[motif.row - 1, motif.col - 1] += 1
    return MotifCounts(grid, algorithm="bruteforce", delta=delta)
