"""Vectorized sampling-estimator kernels over the columnar edge store.

The sampling estimators — BTS (Liu, Benson & Charikar, WSDM 2019) and
EWS (Wang et al., CIKM 2020) — are both *reweighted sums over
independently sampled units*: time blocks for BTS, anchor edges for
EWS.  Their python baselines resolve each unit through per-edge
generator loops (:func:`repro.baselines.backtracking.match_instances`,
``_later_incident_edges``); this module evaluates whole unit batches
as NumPy array passes over the :class:`~repro.graph.columnar.ColumnarGraph`
CSR layouts instead.  Select them with ``backend="columnar"`` on any
:class:`~repro.core.registry.CountRequest` naming ``bts``, ``ews`` or
``ex``.

The enumeration core
--------------------

All three kernels share one primitive: *enumerate every time-ordered
candidate triple rooted at a set of anchor edges*.  For an anchor edge
``a = (u, v)`` with a per-anchor edge-id cap ``hi`` (its δ-window end,
possibly tightened by a BTS block boundary):

* **second edges** are the entries of CSR rows ``u`` and ``v`` with
  edge id in ``(a, hi)`` — two ``searchsorted`` probes of the
  row-composite key per anchor, expanded to flat (anchor, second)
  pairs; edges between ``u`` and ``v`` appear in both rows and are
  deduplicated by dropping the row-``v`` copy;
* **third edges** are the entries of the rows of all bound nodes
  (``u``, ``v``, and the wedge node ``w`` when the second edge opened
  one) with id in ``(b, hi)``, deduplicated the same way;
* each candidate triple is classified to its Fig. 2 grid cell (or
  rejected, when the third edge leaves the ≤3-node world) by **pure
  integer arithmetic** against :data:`TRIPLE_CELL_TABLE` — the
  precomputed (second-edge shape, third-edge endpoints) → cell lookup
  that replaces per-instance
  :func:`repro.core.motifs.classify_triple` calls (the python EWS
  path uses the same table through the scalar helpers below).

Candidate volume is the same Θ(instances + rejected wedges) the python
generators walk; the win is executing it at NumPy, not interpreter,
speed.  Expansion is chunked (``chunk_pairs``), and BTS additionally
batches its blocks (:data:`BLOCK_BATCH_ANCHORS`), so peak memory
tracks a bounded slice of the work, not δ or the sample size.

Bit-identical estimates
-----------------------

``backend=`` selects execution strategy, never results, so for a fixed
seed the kernels reproduce the python estimators *bit for bit*:

* **same sample draws** — EWS draws its anchor Bernoulli vector with
  one ``rng.random(m)`` call and its wedge coins in (anchor, second
  edge id) order, exactly the order the python loop consumes them
  (NumPy's ``Generator`` produces the same stream batched or one at a
  time); BTS block boundaries and coin flips were already vectorized
  and are shared verbatim;
* **canonical reductions** — both backends reduce floating-point
  weights through the same helpers: :func:`ht_weight_sum` (sort the
  spans of one (block, motif) group, weight, ``np.add.reduce``) for
  BTS and :func:`ews_grid` (exact int64 occurrence counts per cell and
  weight class, one float multiply-add at the end) for EWS.  Identical
  input multisets therefore produce identical bits no matter which
  backend — or how many workers — enumerated them.

``ex`` is the degenerate case: with every anchor kept and unit
weights, the enumeration core counts the full grid exactly, giving the
EX baseline a columnar backend whose cost is Θ(instances) — explicit
opt-in only (its ``"auto"`` backend stays python, whose window-counter
machinery is *sublinear* in instances on dense timelines).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.columnar_kernels import (
    DEFAULT_CHUNK_PAIRS,
    _chunks,
    edge_window_ends,
)
from repro.core.motifs import PAIR_MOTIFS, classify_triple, motif_cell
from repro.graph.columnar import ColumnarGraph
from repro.graph.temporal_graph import TemporalGraph

#: Flat grid cells (:func:`~repro.core.motifs.motif_cell`) of the four
#: 2-node motifs.
PAIR_CELLS = frozenset(motif_cell(motif) for motif in PAIR_MOTIFS)

#: First-edge count per internal BTS block batch: spans buffer per
#: batch, so this (together with ``chunk_pairs``) bounds the kernel's
#: working set to a few blocks' instances instead of the whole sample.
BLOCK_BATCH_ANCHORS = 1 << 15


# ----------------------------------------------------------------------
# triple classification: (shape, directions) -> grid cell
# ----------------------------------------------------------------------

def _build_triple_table() -> np.ndarray:
    """``code2 * 16 + a3 * 4 + b3`` → flat grid cell, or -1.

    ``code2`` encodes how the second edge sits on the first edge
    ``(u, v)`` (see :func:`second_edge_code`); ``a3``/``b3`` locate the
    third edge's source/destination among ``u`` (0), ``v`` (1), the
    wedge node ``w`` (2), or a fresh node (3).  Entries that leave the
    ≤3-node world — or are unreachable, like ``w`` references under a
    pair-shaped second edge — hold -1.
    """
    u, v, w = 0, 1, 2
    fresh_s, fresh_d = 3, 4  # distinct, so "both fresh" exceeds 3 nodes
    second = {0: (u, v), 1: (v, u), 2: (u, w), 3: (v, w), 4: (w, u), 5: (w, v)}
    table = np.full(96, -1, dtype=np.int64)
    for code2, e2 in second.items():
        has_w = code2 >= 2
        for a3, s3 in enumerate((u, v, w, fresh_s)):
            for b3, d3 in enumerate((u, v, w, fresh_d)):
                if (a3 == 2 or b3 == 2) and not has_w:
                    continue  # no wedge node to reference
                motif = classify_triple(((u, v), e2, (s3, d3)))
                if motif is not None:
                    table[code2 * 16 + a3 * 4 + b3] = motif_cell(motif)
    return table


#: The shared classification table (python EWS path and all kernels).
TRIPLE_CELL_TABLE = _build_triple_table()


def second_edge_code(u1: int, v1: int, s2: int, d2: int) -> int:
    """Shape code of a second edge ``(s2, d2)`` against ``(u1, v1)``.

    0/1: same pair (same direction / reversed); 2–5: wedge, by which
    endpoint is shared and in which role.  ``(s2, d2)`` must share a
    node with ``(u1, v1)`` (always true for incidence candidates).
    """
    if s2 == u1:
        return 0 if d2 == v1 else 2
    if s2 == v1:
        return 1 if d2 == u1 else 3
    return 4 if d2 == u1 else 5


def third_edge_code(u1: int, v1: int, w: int, s3: int, d3: int) -> int:
    """Endpoint code of a third edge (``w = -1`` when no wedge node)."""
    a3 = 0 if s3 == u1 else 1 if s3 == v1 else 2 if s3 == w else 3
    b3 = 0 if d3 == u1 else 1 if d3 == v1 else 2 if d3 == w else 3
    return a3 * 4 + b3


def wedge_node(code2: int, s2: int, d2: int) -> int:
    """The second edge's new node under ``code2``, or -1 for pair shapes."""
    if code2 < 2:
        return -1
    return d2 if code2 < 4 else s2


def _second_codes(
    u1: np.ndarray, v1: np.ndarray, s2: np.ndarray, d2: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`second_edge_code`."""
    return np.where(
        s2 == u1,
        np.where(d2 == v1, 0, 2),
        np.where(
            s2 == v1,
            np.where(d2 == u1, 1, 3),
            np.where(d2 == u1, 4, 5),
        ),
    )


def _third_codes(
    u1: np.ndarray, v1: np.ndarray, w: np.ndarray, s3: np.ndarray, d3: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`third_edge_code` (``w`` may be -1)."""
    a3 = np.where(s3 == u1, 0, np.where(s3 == v1, 1, np.where(s3 == w, 2, 3)))
    b3 = np.where(d3 == u1, 0, np.where(d3 == v1, 1, np.where(d3 == w, 2, 3)))
    return a3 * 4 + b3


# ----------------------------------------------------------------------
# canonical floating-point reductions (shared by both backends)
# ----------------------------------------------------------------------

def ht_weight_sum(spans: Sequence[float], W: float, q: float) -> float:
    """Horvitz–Thompson weight sum of one (block, motif) instance group.

    ``weight = 1 / ((W - span) · q / W)`` per instance — the inverse
    probability that a random block partition covers the instance and
    the block's coin keeps it.  Sorting the spans first makes the
    floating-point reduction *canonical*: any enumeration order (DFS
    generators, vectorized chunks, any worker split) of the same
    instance multiset produces the same bits.
    """
    arr = np.sort(np.asarray(spans, dtype=np.float64))
    q_over_w = q / W
    return float(np.add.reduce(1.0 / ((W - arr) * q_over_w)))


def ews_grid(
    pair_counts: np.ndarray, wedge_counts: np.ndarray, p: float, q: float
) -> np.ndarray:
    """Assemble the EWS estimate grid from exact per-cell tallies.

    EWS weights take exactly two values — ``1/p`` for second edges on
    the anchor pair and ``1/(p·q)`` for wedges — so both backends tally
    int64 occurrences per (cell, weight class) and multiply once here:
    integer tallies are order-free, which is what makes the fixed-seed
    estimate bit-identical across backends and execution strategies.
    """
    inv_p = 1.0 / p
    grid = pair_counts.astype(np.float64).reshape(6, 6) * inv_p
    grid += wedge_counts.astype(np.float64).reshape(6, 6) * (inv_p / q)
    return grid


# ----------------------------------------------------------------------
# expansion helpers
# ----------------------------------------------------------------------

def _expand_ranges(
    starts: np.ndarray, counts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-parent ``[start, start+count)`` ranges to flat positions.

    Returns ``(positions, parents)`` where ``parents[k]`` is the index
    of the range that produced ``positions[k]`` (ranges in order).
    """
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    parents = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    return positions, parents


def _row_ranges(
    col: ColumnarGraph, rows: np.ndarray, lo_eid: np.ndarray, hi_eid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR position bounds of ``rows``' entries with eid in ``[lo, hi)``."""
    base = rows * np.int64(col.num_edges + 1)
    start = np.searchsorted(col.inc_row_key, base + lo_eid)
    end = np.searchsorted(col.inc_row_key, base + hi_eid)
    return start, end


# ----------------------------------------------------------------------
# the enumeration core
# ----------------------------------------------------------------------

#: One chunk of classified triples: (anchor index into the kernel's
#: anchor array, flat grid cell, third-edge id, wedge flag).
TripleChunk = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _iter_triples(
    col: ColumnarGraph,
    anchors: np.ndarray,
    hi_rank: np.ndarray,
    *,
    rng: Optional[np.random.Generator] = None,
    q: float = 1.0,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Iterator[TripleChunk]:
    """Enumerate and classify candidate triples rooted at ``anchors``.

    ``hi_rank[k]`` is the exclusive edge-id cap of anchor ``k``'s
    candidates (its δ-window end, possibly tightened by a BTS block
    boundary).  With ``q < 1`` wedge-shaped second edges are Bernoulli
    subsampled through ``rng`` in (anchor, second-edge id) order — the
    python EWS loop's exact draw order, so the consumed stream matches
    bit for bit.  Anchor-axis chunks preserve that order; triples may
    be split across yields arbitrarily (all consumers are order-free).
    """
    if len(anchors) == 0:
        return
    nbr = col.inc_nbr
    dirs = col.inc_dir
    eid = col.inc_eid
    u_all = col.src[anchors]
    v_all = col.dst[anchors]
    su, eu = _row_ranges(col, u_all, anchors + 1, hi_rank)
    sv, ev = _row_ranges(col, v_all, anchors + 1, hi_rank)
    second_counts = (eu - su) + (ev - sv)

    for a0, a1 in _chunks(second_counts, chunk_pairs):
        # -- second edges: rows u and v, deduped, wedge-subsampled -----
        pos_u, par_u = _expand_ranges(su[a0:a1], eu[a0:a1] - su[a0:a1])
        pos_v, par_v = _expand_ranges(sv[a0:a1], ev[a0:a1] - sv[a0:a1])
        # An edge between u and v appears in both rows; keep the row-u
        # copy.  Remaining row-v entries are all wedges (nbr != u).
        keep_v = nbr[pos_v] != u_all[a0:a1][par_v]
        pos_b = np.concatenate((pos_u, pos_v[keep_v]))
        a_idx = np.concatenate((par_u, par_v[keep_v])) + a0
        if len(pos_b) == 0:
            continue
        u1 = u_all[a_idx]
        v1 = v_all[a_idx]
        b_eid = eid[pos_b]
        b_nbr = nbr[pos_b]
        b_center = np.where(np.arange(len(pos_b)) < len(pos_u), u1, v1)
        b_src = np.where(dirs[pos_b] == 0, b_center, b_nbr)
        b_dst = np.where(dirs[pos_b] == 0, b_nbr, b_center)
        code2 = _second_codes(u1, v1, b_src, b_dst)
        is_wedge = code2 >= 2

        if q < 1:
            # Python draw order: anchors ascending, seconds by edge id.
            order = np.lexsort((b_eid, a_idx))
            pos_b, a_idx, b_eid, code2, is_wedge = (
                pos_b[order], a_idx[order], b_eid[order],
                code2[order], is_wedge[order],
            )
            u1, v1, b_nbr = u1[order], v1[order], b_nbr[order]
            assert rng is not None
            coins = rng.random(int(is_wedge.sum()))
            keep = np.ones(len(pos_b), dtype=bool)
            keep[is_wedge] = coins < q
            pos_b, a_idx, b_eid, code2, is_wedge = (
                pos_b[keep], a_idx[keep], b_eid[keep],
                code2[keep], is_wedge[keep],
            )
            u1, v1, b_nbr = u1[keep], v1[keep], b_nbr[keep]
            if len(pos_b) == 0:
                continue
        w = np.where(is_wedge, b_nbr, np.int64(-1))

        # -- third edges: rows u, v and (for wedges) w, deduped --------
        hi_b = hi_rank[a_idx]
        lo3 = b_eid + 1
        s0, e0 = _row_ranges(col, u1, lo3, hi_b)
        s1, e1 = _row_ranges(col, v1, lo3, hi_b)
        s2, e2 = _row_ranges(col, np.maximum(w, 0), lo3, hi_b)
        c2 = np.where(w >= 0, e2 - s2, 0)
        third_counts = (e0 - s0) + (e1 - s1) + c2

        for p0, p1 in _chunks(third_counts, chunk_pairs):
            pos_0, par_0 = _expand_ranges(s0[p0:p1], (e0 - s0)[p0:p1])
            pos_1, par_1 = _expand_ranges(s1[p0:p1], (e1 - s1)[p0:p1])
            pos_2, par_2 = _expand_ranges(s2[p0:p1], c2[p0:p1])
            # Dedupe: an edge between two bound nodes appears in both
            # rows — keep the copy in the earlier row (u < v < w).
            keep_1 = nbr[pos_1] != u1[p0:p1][par_1]
            keep_2 = (nbr[pos_2] != u1[p0:p1][par_2]) & (
                nbr[pos_2] != v1[p0:p1][par_2]
            )
            pos_c = np.concatenate((pos_0, pos_1[keep_1], pos_2[keep_2]))
            if len(pos_c) == 0:
                continue
            pair_of = np.concatenate((par_0, par_1[keep_1], par_2[keep_2])) + p0
            center_c = np.concatenate((
                u1[p0:p1][par_0], v1[p0:p1][par_1[keep_1]],
                w[p0:p1][par_2[keep_2]],
            ))
            c_nbr = nbr[pos_c]
            c_src = np.where(dirs[pos_c] == 0, center_c, c_nbr)
            c_dst = np.where(dirs[pos_c] == 0, c_nbr, center_c)
            code3 = _third_codes(
                u1[pair_of], v1[pair_of], w[pair_of], c_src, c_dst
            )
            cell = TRIPLE_CELL_TABLE[code2[pair_of] * 16 + code3]
            valid = cell >= 0
            if not valid.any():
                continue
            yield (
                a_idx[pair_of[valid]],
                cell[valid],
                eid[pos_c[valid]],
                is_wedge[pair_of[valid]],
            )


def _iter_pair_triples(
    col: ColumnarGraph,
    anchors: np.ndarray,
    hi_rank: np.ndarray,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Iterator[TripleChunk]:
    """Enumerate triples confined to each anchor's own pair timeline.

    The 2-node specialization of :func:`_iter_triples` for pair-only
    selections (BTS-Pair): candidates come from the pair CSR group of
    ``(src[a], dst[a])`` alone, so a hub's full incidence row is never
    touched — matching the python baseline's pair-timeline scans.
    """
    if len(anchors) == 0:
        return
    m_plus = np.int64(col.num_edges + 1)
    # Pair slot of each anchor's endpoints (anchors are real edges, so
    # the key always exists).
    lo_end = np.minimum(col.src[anchors], col.dst[anchors])
    hi_end = np.maximum(col.src[anchors], col.dst[anchors])
    key = lo_end * np.int64(max(col.num_nodes, 1)) + hi_end
    slot = np.searchsorted(col.pair_keys, key)
    base = slot * m_plus
    idx_lo = np.searchsorted(col.pair_rank_key, base + anchors + 1)
    idx_hi = np.searchsorted(col.pair_rank_key, base + hi_rank)
    # Direction of the anchor relative to the pair's smaller endpoint.
    d1 = (col.src[anchors] > col.dst[anchors]).astype(np.int64)
    second_counts = np.maximum(idx_hi - idx_lo, 0)

    for a0, a1 in _chunks(second_counts, chunk_pairs):
        pos_b, par_b = _expand_ranges(idx_lo[a0:a1], second_counts[a0:a1])
        if len(pos_b) == 0:
            continue
        a_idx = par_b + a0
        hi_pos = idx_hi[a_idx]
        third_counts = hi_pos - (pos_b + 1)
        code2 = (col.pair_dir[pos_b] != d1[a_idx]).astype(np.int64)
        for p0, p1 in _chunks(third_counts, chunk_pairs):
            pos_c, pair_of = _expand_ranges(
                pos_b[p0:p1] + 1, third_counts[p0:p1]
            )
            if len(pos_c) == 0:
                continue
            pair_of = pair_of + p0
            rel3 = col.pair_dir[pos_c] != d1[a_idx[pair_of]]
            # Same-direction third ⟺ (u, v) ⟺ code3 = 0*4+1; reversed
            # ⟺ (v, u) ⟺ code3 = 1*4+0.
            code3 = np.where(rel3, 4, 1)
            cell = TRIPLE_CELL_TABLE[code2[pair_of] * 16 + code3]
            yield (
                a_idx[pair_of],
                cell,
                col.pair_eid[pos_c],
                np.zeros(len(pos_c), dtype=bool),
            )


# ----------------------------------------------------------------------
# EWS kernel
# ----------------------------------------------------------------------

def ews_columnar_counts(
    graph: TemporalGraph,
    delta: float,
    *,
    p: float = 0.01,
    q: float = 1.0,
    seed: int = 0,
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized EWS tallies: int64 (pair, wedge) occurrence grids.

    Draws the anchor Bernoulli vector in one batch and the wedge coins
    in enumeration order — the same RNG stream the python loop
    consumes — then resolves second/third candidates through the CSR
    layouts.  Feed the result to :func:`ews_grid` for the estimate.
    """
    col = graph.columnar()
    m = col.num_edges
    pair_counts = np.zeros(36, dtype=np.int64)
    wedge_counts = np.zeros(36, dtype=np.int64)
    if m == 0:
        return pair_counts, wedge_counts
    rng = np.random.default_rng(seed)
    anchors = np.nonzero(rng.random(m) < p)[0] if p < 1 else np.arange(m)
    if len(anchors) == 0:
        return pair_counts, wedge_counts
    edge_hi = edge_window_ends(col, delta)
    hi_rank = edge_hi[anchors]
    for _, cell, _, is_wedge in _iter_triples(
        col, anchors, hi_rank, rng=rng, q=q, chunk_pairs=chunk_pairs
    ):
        wedge_counts += np.bincount(cell[is_wedge], minlength=36)
        pair_counts += np.bincount(cell[~is_wedge], minlength=36)
    return pair_counts, wedge_counts


# ----------------------------------------------------------------------
# BTS kernel
# ----------------------------------------------------------------------

def bts_columnar_block_grids(
    graph: TemporalGraph,
    delta: float,
    blocks: Sequence[Tuple[int, int, float]],
    W: float,
    q: float,
    cells: Iterable[int],
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> List[np.ndarray]:
    """Per-block HT-weighted 6×6 grids, one per sampled BTS block.

    ``blocks`` are the sampler's ``(first-edge lo, hi, block end time)``
    tuples and ``cells`` the flat grid cells of the selected motifs.
    Every block's grid is a pure function of that block alone (spans
    are grouped per (block, cell) and reduced with
    :func:`ht_weight_sum`), so any batching of blocks — serial, fork
    chunks, pool chunks, and the internal memory batches below —
    produces identical per-block bits.

    Memory: instance spans buffer per *block batch* (batches cut at
    :data:`BLOCK_BATCH_ANCHORS` first edges), never across the whole
    sample, so the working set tracks a few blocks' instances like the
    python backend's, not the sample's.  Note that a partial non-pair
    ``cells`` selection still pays the full enumeration and discards
    unselected classifications afterwards — unlike the python backend,
    which matches only the selected patterns (pair-only selections
    *do* take the cheap pair-timeline path).
    """
    col = graph.columnar()
    cells = sorted(set(cells))
    cell_mask = np.zeros(36, dtype=bool)
    cell_mask[cells] = True
    grids = [np.zeros((6, 6), dtype=np.float64) for _ in blocks]
    if not blocks or col.num_edges == 0:
        return grids
    t = col.t
    edge_hi = edge_window_ends(col, delta)
    pair_only = set(cells) <= PAIR_CELLS

    sizes = np.array([hi - lo for lo, hi, _ in blocks], dtype=np.int64)
    for b0, b1 in _chunks(sizes, BLOCK_BATCH_ANCHORS):
        # Flatten the batch's first-edge ranges into one anchor array;
        # each anchor's candidate cap is its δ-window end tightened to
        # the block boundary: candidates need t strictly below the
        # block end, and the block's own `hi` is exactly that
        # boundary's left rank.
        starts = np.array([lo for lo, _, _ in blocks[b0:b1]], dtype=np.int64)
        caps = np.array([hi for _, hi, _ in blocks[b0:b1]], dtype=np.int64)
        anchors, block_of = _expand_ranges(starts, sizes[b0:b1])
        if len(anchors) == 0:
            continue
        hi_rank = np.minimum(edge_hi[anchors], caps[block_of])

        triples = (
            _iter_pair_triples(col, anchors, hi_rank, chunk_pairs)
            if pair_only
            else _iter_triples(col, anchors, hi_rank, chunk_pairs=chunk_pairs)
        )
        span_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        for a_idx, cell, c_eid, _ in triples:
            keep = cell_mask[cell]
            if not keep.any():
                continue
            a_sel = a_idx[keep]
            spans = (t[c_eid[keep]] - t[anchors[a_sel]]).astype(np.float64)
            span_parts.append(spans)
            key_parts.append(block_of[a_sel] * np.int64(36) + cell[keep])

        if not span_parts:
            continue
        spans = np.concatenate(span_parts)
        keys = np.concatenate(key_parts)
        order = np.argsort(keys, kind="stable")
        spans = spans[order]
        keys = keys[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], keys[1:] != keys[:-1]))
        )
        ends = np.concatenate((boundaries[1:], [len(keys)]))
        for start, end in zip(boundaries, ends):
            block = b0 + int(keys[start]) // 36
            cell = int(keys[start]) % 36
            grids[block][cell // 6, cell % 6] = ht_weight_sum(
                spans[start:end], W, q
            )
    return grids


# ----------------------------------------------------------------------
# EX kernel (degenerate: all anchors, unit weights, exact counts)
# ----------------------------------------------------------------------

def ex_columnar_grid(
    graph: TemporalGraph,
    delta: float,
    categories: str = "all",
    chunk_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> np.ndarray:
    """Exact int64 count grid by full vectorized enumeration.

    The ``p = q = 1`` degeneracy of the EWS kernel: every edge anchors,
    every candidate counts with weight one.  Cost is Θ(instances) —
    unlike python EX's window counters, which are sublinear in
    instances on dense timelines — so this backend is explicit opt-in
    (``backend="columnar"``), never ``"auto"``.
    """
    from repro.core.counters import category_keep_mask

    col = graph.columnar()
    grid = np.zeros(36, dtype=np.int64)
    m = col.num_edges
    if m == 0:
        return grid.reshape(6, 6)
    anchors = np.arange(m, dtype=np.int64)
    edge_hi = edge_window_ends(col, delta)
    if categories == "pair":
        triples = _iter_pair_triples(col, anchors, edge_hi, chunk_pairs)
    else:
        triples = _iter_triples(col, anchors, edge_hi, chunk_pairs=chunk_pairs)
    for _, cell, _, _ in triples:
        grid += np.bincount(cell, minlength=36)
    return grid.reshape(6, 6) * category_keep_mask(categories)
