"""Incremental counting kernels: raw-counter diffs over dirty time slices.

The streaming engine never recounts the whole live window.  It relies
on one structural fact about δ-temporal motifs: **a motif instance
spans at most δ in time** (``t3 - t1 <= delta``).  Two consequences:

*Ingest.*  Let a batch of accepted arrivals have minimum timestamp
``a``.  Every triple involving a new edge lies entirely in
``[a - delta, +inf)`` — a new edge has ``t >= a``, so the triple's
earliest edge has ``t >= a - delta``.  Triples *not* involving a new
edge are counted identically before and after the append.  Hence::

    added = raw(live_after  ∩ [a - delta, +inf))
          - raw(live_before ∩ [a - delta, +inf))

*Expiry.*  Evicting edges with ``t < cutoff`` removes exactly the
triples containing one of them, and each such triple lies entirely in
``(-inf, cutoff + delta)`` (strictly: its latest edge has
``t <= t_expired + delta < cutoff + delta``).  Hence::

    removed = raw(live_before ∩ (-inf, cutoff + delta))
            - raw(live_after  ∩ (-inf, cutoff + delta))

Both identities hold for **raw flat counters** (the 24-cell star, the
8-cell both-endpoints pair, the 24-cell multiplicity-3 triangle
counter) because a triple's raw-cell contribution depends only on its
own edges' directions and relative canonical order — which time
slicing preserves (see :mod:`repro.graph.stream_store`).  Raw counters
are therefore additive over edge-multiset differences; projection to
the de-duplicated 6×6 grid happens only at checkpoint time.

The slice counts reuse the existing batch kernels unchanged — the
python loops, the vectorized columnar kernels, or the HARE process
pool for large dirty ranges (micro-batch execution) — so streaming
inherits every backend the batch path has.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.counters import (
    MotifCounts,
    PairCounter,
    StarCounter,
    TriangleCounter,
)
from repro.graph.temporal_graph import TemporalGraph

#: Raw flat counters: (star 24 cells, pair 8 cells, triangle 24 cells),
#: all int64, triangle in dependency-free multiplicity-3 form.
RawCounts = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: Below this many slice edges the interpreted loops beat the columnar
#: build cost; ``backend="auto"`` switches on it per slice.  Measured
#: crossover on power-law session slices is ~250 edges (columnar wins
#: 2x by 512, 2.7x by 2048, including the slice-graph build).
AUTO_COLUMNAR_MIN_EDGES = 256

#: Default minimum slice size before ``workers > 1`` forks a HARE pool
#: (micro-batch execution); below it fork overhead dominates.
DEFAULT_PARALLEL_MIN_EDGES = 200_000


def zero_raw() -> RawCounts:
    """The additive identity: three zeroed raw counter arrays."""
    return (
        np.zeros(24, dtype=np.int64),
        np.zeros(8, dtype=np.int64),
        np.zeros(24, dtype=np.int64),
    )


def apply_diff(totals: RawCounts, plus: RawCounts, minus: RawCounts) -> None:
    """In-place ``totals += plus - minus`` over all three counter arrays."""
    for total, p, m in zip(totals, plus, minus):
        total += p
        total -= m


def resolve_slice_backend(backend: str, num_edges: int) -> str:
    """Concrete backend for one slice: ``auto`` picks by slice size.

    Streaming slices are often tiny (a micro-batch plus a δ tail); the
    O(k log k) columnar build only pays off past
    :data:`AUTO_COLUMNAR_MIN_EDGES` edges.
    """
    if backend == "auto":
        return "columnar" if num_edges >= AUTO_COLUMNAR_MIN_EDGES else "python"
    return backend


def count_slice_raw(
    graph: TemporalGraph,
    delta: float,
    *,
    star_pair: bool = True,
    triangle: bool = True,
    backend: str = "auto",
    workers: int = 1,
    parallel_min_edges: int = DEFAULT_PARALLEL_MIN_EDGES,
    pool_factory=None,
) -> RawCounts:
    """Raw flat counters of one immutable slice graph.

    Dispatches to the same kernels the batch path uses: serial python
    loops or columnar kernels per :func:`resolve_slice_backend`, and —
    when ``workers > 1`` and the slice has at least
    ``parallel_min_edges`` edges — the HARE runtime, so a large dirty
    range is counted as a micro-batch with full intra-node
    parallelism.  ``pool_factory`` (a zero-argument callable returning
    a :class:`~repro.parallel.pool.WorkerPool`, e.g. the streaming
    engine's resident-pool accessor) is consulted *only* when this
    function decides to go parallel — the threshold decision lives
    here alone — so micro-batches reuse a resident pool instead of
    re-forking per batch, and no pool is ever created for slices that
    stay serial.  Passes the engine does not need are skipped.
    """
    star, pair, tri = zero_raw()
    if graph.num_edges == 0 or not (star_pair or triangle):
        return star, pair, tri
    concrete = resolve_slice_backend(backend, graph.num_edges)
    if workers > 1 and graph.num_edges >= parallel_min_edges:
        from repro.parallel.hare import hare_star_pair, hare_triangle

        pool = pool_factory() if pool_factory is not None else None
        if star_pair:
            star_counter, pair_counter = hare_star_pair(
                graph, delta, workers=workers, backend=concrete, pool=pool
            )
            star = np.array(star_counter.data, dtype=np.int64)
            pair = np.array(pair_counter.data, dtype=np.int64)
        if triangle:
            tri_counter = hare_triangle(
                graph, delta, workers=workers, backend=concrete, pool=pool
            )
            tri = np.array(tri_counter.data, dtype=np.int64)
        return star, pair, tri
    from repro.core.fast_star import count_star_pair
    from repro.core.fast_tri import count_triangle

    if star_pair:
        star_counter, pair_counter = count_star_pair(graph, delta, backend=concrete)
        star = np.array(star_counter.data, dtype=np.int64)
        pair = np.array(pair_counter.data, dtype=np.int64)
    if triangle:
        tri_counter = count_triangle(graph, delta, backend=concrete)
        tri = np.array(tri_counter.data, dtype=np.int64)
    return star, pair, tri


def project_raw(
    totals: RawCounts,
    *,
    star_pair: bool = True,
    triangle: bool = True,
    **kwargs,
) -> MotifCounts:
    """Project running raw totals onto the de-duplicated 6×6 grid.

    The running totals equal the raw counters of a full batch pass
    over the live edge set (that is the diff identities' guarantee),
    so the standard projection rules apply: stars are exact, pairs use
    the OUT-rooted cells, triangles divide by multiplicity 3.
    """
    star, pair, tri = totals
    return MotifCounts.from_counters(
        StarCounter(star.tolist()) if star_pair else None,
        PairCounter(pair.tolist()) if star_pair else None,
        TriangleCounter(tri.tolist(), multiplicity=3) if triangle else None,
        **kwargs,
    )
