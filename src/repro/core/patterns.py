"""Higher-order temporal motifs (the paper's future-work extension).

§VI closes with: "it will be able to efficiently count the
higher-order (more nodes) temporal motifs by expanding the number of
center nodes and slightly adapting the structure of the counters".
This module delivers the capability through the generic chronological
matcher of :mod:`repro.baselines.backtracking`, which supports
arbitrary ``l``-edge, ``k``-node patterns as long as each edge shares a
node with an earlier one (true of every connected temporal motif).

Patterns use the same canonical convention as :mod:`repro.core.motifs`:
edges in time order, nodes labelled by first appearance, first edge
``(1, 2)``.  A small library of the 4-node / 4-edge patterns common in
the temporal-motif literature is included.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.baselines.backtracking import count_pattern, match_instances
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

Pattern = Tuple[Tuple[int, int], ...]

#: Named higher-order patterns: 4-node and 4-edge shapes.
HIGHER_ORDER_PATTERNS: Dict[str, Pattern] = {
    # -- 4-node, 3-edge ------------------------------------------------
    "out-star-4": ((1, 2), (1, 3), (1, 4)),        # broadcast hub
    "in-star-4": ((2, 1), (3, 1), (4, 1)),         # aggregation hub
    "path-4": ((1, 2), (2, 3), (3, 4)),            # temporal path / cascade
    "bifan-half": ((1, 2), (3, 2), (3, 4)),        # shared-target wedge pair
    # -- 3-node, 4-edge ------------------------------------------------
    "ping-pong-2x": ((1, 2), (2, 1), (1, 2), (2, 1)),   # double round trip
    "cycle-then-close": ((1, 2), (2, 3), (3, 1), (1, 2)),
    "wedge-echo": ((1, 2), (2, 3), (1, 2), (2, 3)),     # repeated relay
    # -- 4-node, 4-edge ------------------------------------------------
    "cycle-4": ((1, 2), (2, 3), (3, 4), (4, 1)),        # temporal 4-cycle
    "broadcast-then-collect": ((1, 2), (1, 3), (2, 4), (3, 4)),
    "deep-cascade": ((1, 2), (2, 3), (3, 4), (4, 2)),
}


def pattern_num_nodes(pattern: Sequence[Tuple[int, int]]) -> int:
    """Number of distinct nodes a pattern binds."""
    return len({n for edge in pattern for n in edge})


def count_higher_order(
    graph: TemporalGraph,
    delta: float,
    pattern: Sequence[Tuple[int, int]],
) -> int:
    """Exactly count an arbitrary connected temporal motif pattern.

    ``pattern`` may be any sequence of directed edges in intended time
    order; labels are arbitrary ints.  Self-loop edges and patterns
    with a disconnected prefix are rejected.
    """
    return count_pattern(graph, delta, tuple(pattern))


def count_named_patterns(
    graph: TemporalGraph,
    delta: float,
    names: Sequence[str] = tuple(HIGHER_ORDER_PATTERNS),
) -> Dict[str, int]:
    """Count a selection of the named higher-order patterns."""
    results: Dict[str, int] = {}
    for name in names:
        if name not in HIGHER_ORDER_PATTERNS:
            raise ValidationError(
                f"unknown pattern {name!r}; known: {', '.join(HIGHER_ORDER_PATTERNS)}"
            )
        results[name] = count_pattern(graph, delta, HIGHER_ORDER_PATTERNS[name])
    return results


def enumerate_pattern_instances(
    graph: TemporalGraph,
    delta: float,
    pattern: Sequence[Tuple[int, int]],
):
    """Yield the canonical edge ids of each instance (thin wrapper)."""
    yield from match_instances(graph, delta, tuple(pattern))
