"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.exact_ex` — **EX** (Paranjape et al., WSDM'17):
  exact counting of all 36 motifs via sliding-window sequence counters.
* :mod:`repro.baselines.backtracking` — **BT** (Mackey et al.):
  chronological backtracking temporal subgraph isomorphism.
* :mod:`repro.baselines.twoscent` — **2SCENT** (Kumar & Calders):
  temporal cycle enumeration (motif M26).
* :mod:`repro.baselines.sampling_bts` — **BTS** (Liu et al.):
  interval sampling with BT as the exact subroutine.
* :mod:`repro.baselines.sampling_ews` — **EWS** (Wang et al.):
  edge/wedge sampling estimator.
"""

from repro.baselines.exact_ex import ex_count
from repro.baselines.backtracking import bt_count, bt_count_pairs
from repro.baselines.twoscent import twoscent_count_cycles
from repro.baselines.sampling_bts import bts_count_pairs
from repro.baselines.sampling_ews import ews_count

__all__ = [
    "ex_count",
    "bt_count",
    "bt_count_pairs",
    "twoscent_count_cycles",
    "bts_count_pairs",
    "ews_count",
]
