"""BT — chronological backtracking temporal subgraph isomorphism.

The baseline of Mackey et al. ("a chronological edge-driven approach
to temporal subgraph isomorphism", IEEE BigData 2018), used by the
paper both directly (BT-Pair) and as the exact subroutine inside the
BTS sampler.

The matcher is generic over the motif length ``l``: pattern edges are
matched strictly in time order; the first pattern edge ranges over all
graph edges and each further edge is drawn from the candidate set
implied by the already-bound pattern nodes, pruned by the δ window.
Because every prefix of a connected ≤3-node motif shares a node with
what came before (true for all 36 motifs, and checked at runtime for
custom patterns), candidates always come from a bound node's timeline
rather than the global edge list.

This is Θ(#instances) at best and ``O(|E| · (d^δ)^(l-1))`` at worst —
the exponential-in-``l`` behaviour the paper cites — which is exactly
why FAST-Pair dominates it in Table III.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.counters import MotifCounts
from repro.core.motifs import (
    ALL_MOTIFS,
    Motif,
    PAIR_MOTIFS,
)
from repro.errors import ValidationError
from repro.graph.temporal_graph import IN, OUT, TemporalGraph


def _check_pattern(pattern: Sequence[Tuple[int, int]]) -> None:
    seen = set()
    for k, (ps, pd) in enumerate(pattern):
        if ps == pd:
            raise ValidationError(f"pattern edge {k} is a self-loop")
        if k > 0 and ps not in seen and pd not in seen:
            raise ValidationError(
                "pattern edges must each share a node with an earlier edge "
                f"(edge {k} does not)"
            )
        seen.add(ps)
        seen.add(pd)


def match_instances(
    graph: TemporalGraph,
    delta: float,
    pattern: Sequence[Tuple[int, int]],
    first_range: Optional[Tuple[int, int]] = None,
    t_cap: Optional[float] = None,
) -> Iterator[Tuple[int, ...]]:
    """Enumerate instances of an arbitrary l-edge temporal motif.

    ``pattern`` is a canonical edge sequence (appearance-labelled, as
    in :mod:`repro.core.motifs`, though any labels work).  Yields the
    tuple of canonical edge ids of each instance, in pattern order.
    Edges are matched in strict canonical order with the usual span
    constraint ``t_last - t_first <= delta``.

    ``first_range`` restricts the first edge to canonical ids
    ``[lo, hi)`` and ``t_cap`` caps every matched edge at timestamps
    strictly below it — together these let BTS match inside a sampled
    time block without materialising a subgraph.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    _check_pattern(pattern)
    src, dst, t = graph.edge_lists()
    m = graph.num_edges

    lo, hi = (0, m) if first_range is None else first_range
    lo = max(lo, 0)
    hi = min(hi, m)
    p1s, p1d = pattern[0]
    for first in range(lo, hi):
        t_limit = t[first] + delta
        if t_cap is not None:
            if t[first] >= t_cap:
                break
            t_limit = min(t_limit, _previous_float(t_cap))
        binding = {p1s: src[first], p1d: dst[first]}
        bound_nodes = {src[first], dst[first]}
        yield from _extend(
            graph,
            pattern,
            1,
            binding,
            bound_nodes,
            (first,),
            t_limit,
            t[first],
            first,
        )


def _previous_float(value: float) -> float:
    """Largest float strictly below ``value`` (for half-open time caps)."""
    import math

    return math.nextafter(value, -math.inf)


def _extend(
    graph: TemporalGraph,
    pattern: Sequence[Tuple[int, int]],
    k: int,
    binding: dict,
    bound_nodes: set,
    matched: Tuple[int, ...],
    t_limit: float,
    t_prev: float,
    eid_prev: int,
) -> Iterator[Tuple[int, ...]]:
    if k == len(pattern):
        yield matched
        return
    ps, pd = pattern[k]
    s_bound = ps in binding
    d_bound = pd in binding
    if s_bound and d_bound:
        u, v = binding[ps], binding[pd]
        times, dirs, eids = graph.pair_timeline(u, v)
        # Direction relative to min(u, v): OUT means min -> max.
        want = OUT if u < v else IN
        lo = bisect_left(times, t_prev)
        for idx in range(lo, len(times)):
            tk = times[idx]
            if tk > t_limit:
                break
            eid = eids[idx]
            if dirs[idx] != want or (tk, eid) <= (t_prev, eid_prev):
                continue
            yield from _extend(
                graph, pattern, k + 1, binding, bound_nodes, matched + (eid,),
                t_limit, tk, eid,
            )
    else:
        # Exactly one endpoint bound; scan that node's timeline.
        if s_bound:
            center, want_dir, free_label = binding[ps], OUT, pd
        else:
            center, want_dir, free_label = binding[pd], IN, ps
        seq = graph.node_sequence(center)
        times = seq.times
        lo = bisect_left(times, t_prev)
        nbrs = seq.nbrs
        dirs = seq.dirs
        eids = seq.eids
        for idx in range(lo, len(times)):
            tk = times[idx]
            if tk > t_limit:
                break
            eid = eids[idx]
            if dirs[idx] != want_dir or (tk, eid) <= (t_prev, eid_prev):
                continue
            nbr = nbrs[idx]
            if nbr in bound_nodes:
                continue
            binding[free_label] = nbr
            bound_nodes.add(nbr)
            yield from _extend(
                graph, pattern, k + 1, binding, bound_nodes, matched + (eid,),
                t_limit, tk, eid,
            )
            del binding[free_label]
            bound_nodes.discard(nbr)


def count_pattern(
    graph: TemporalGraph,
    delta: float,
    pattern: Sequence[Tuple[int, int]],
) -> int:
    """Count instances of one motif pattern by full enumeration."""
    return sum(1 for _ in match_instances(graph, delta, pattern))


def bt_count(
    graph: TemporalGraph,
    delta: float,
    motifs: Optional[Iterable[Motif]] = None,
) -> MotifCounts:
    """Count motifs with BT, one enumeration pass per motif.

    This mirrors how the baseline is used in the paper: subgraph
    isomorphism is run per pattern, so counting all 36 motifs costs 36
    passes.
    """
    selected: List[Motif] = list(ALL_MOTIFS if motifs is None else motifs)
    grid = np.zeros((6, 6), dtype=np.int64)
    for motif in selected:
        grid[motif.row - 1, motif.col - 1] = count_pattern(graph, delta, motif.canonical)
    return MotifCounts(grid, algorithm="bt", delta=delta)


def bt_count_pairs(graph: TemporalGraph, delta: float) -> MotifCounts:
    """BT-Pair: count the four 2-node motifs (the paper's variant)."""
    return bt_count(graph, delta, PAIR_MOTIFS)
