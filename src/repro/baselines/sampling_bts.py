"""BTS — interval sampling with BT as the exact subroutine.

The baseline of Liu, Benson & Charikar ("Sampling methods for counting
temporal motifs", WSDM 2019): a sampling *layer* on top of an exact
counter.  Time is partitioned — at a uniformly random offset — into
blocks of width ``c·δ``; each block is kept with probability ``q``;
the exact algorithm (BT here, as in the paper's BTS-Pair) enumerates
the instances lying entirely inside each kept block, and every found
instance is reweighted by the inverse probability that a random
partition of blocks covers it:

    P(covered and sampled) = q · (W - span) / W,   W = c·δ

which makes the estimator unbiased (Horvitz–Thompson over the random
offset and the block coin flips).  Instances that straddle a block
boundary in one draw are covered in others; no instance is ever
over-weighted.

Blocks are matched *in place* on the full graph (first-edge index
range + timestamp cap) rather than on materialised subgraphs, and are
independent — which is also the parallel decomposition: ``workers > 1``
farms sampled blocks out to workers, reproducing the BTS-Pair curves
of the paper's Fig. 11.

``q = 1`` keeps every block but the estimate still varies with the
offset; :func:`bts_count` therefore short-circuits ``q >= 1 and
exact_when_full`` to a plain exact BT run, matching how the original
is used as a sanity configuration.

Backends and runtimes — same bits everywhere
--------------------------------------------

Block sampling (offset, coin flips, edge ranges) is always the
vectorized draw below, so every backend consumes the same RNG stream.
Each kept block's HT-weighted grid is then evaluated by:

* ``backend="python"`` — per-motif :func:`match_instances` generator
  walks (one BT pass per selected motif);
* ``backend="columnar"`` — one vectorized enumeration pass over the
  columnar CSR layouts
  (:func:`repro.core.sampling_kernels.bts_columnar_block_grids`),
  covering all selected motifs at once; pair-only selections stay on
  the anchor's own pair timeline.

Both reduce each (block, motif) instance group through the canonical
:func:`~repro.core.sampling_kernels.ht_weight_sum` (sorted spans), and
per-block grids always merge in sampling order
(:func:`_reduce_block_grids`), so the estimate is bit-identical across
backends, worker counts, and runtimes.  ``workers > 1`` farms block
chunks to a fork pool when the resolved start method is ``fork``, and
through a process-wide shared-memory
:class:`~repro.parallel.pool.WorkerPool` otherwise; an explicit
``pool=`` always wins and reuses its published zero-copy graph (and,
for the columnar backend, the shared per-δ edge-window table).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.backtracking import bt_count, match_instances
from repro.core.counters import MotifCounts
from repro.core.motifs import ALL_MOTIFS, Motif, PAIR_MOTIFS, motif_cell
from repro.core.sampling_kernels import bts_columnar_block_grids, ht_weight_sum
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: A sampled block: (first-edge index lo, hi, block end time).
_Block = Tuple[int, int, float]

_WORKER_GRAPH: Optional[TemporalGraph] = None
_WORKER_ARGS: Tuple = ()


def _block_grid(
    graph: TemporalGraph,
    delta: float,
    motifs: List[Motif],
    block: _Block,
    W: float,
    q: float,
) -> np.ndarray:
    """HT-weighted counts of one sampled block (python backend)."""
    t = graph.edge_lists()[2]
    grid = np.zeros((6, 6), dtype=np.float64)
    lo, hi, b_hi = block
    for motif in motifs:
        spans = [
            t[matched[-1]] - t[matched[0]]
            for matched in match_instances(
                graph, delta, motif.canonical, first_range=(lo, hi), t_cap=b_hi
            )
        ]
        if spans:
            grid[motif.row - 1, motif.col - 1] += ht_weight_sum(spans, W, q)
    return grid


def _reduce_block_grids(indexed_grids: List[Tuple[int, np.ndarray]]) -> np.ndarray:
    """Sum per-block grids in global block order.

    Floating-point addition is not associative, so the reduction tree
    must not depend on how blocks were chunked across workers: summing
    one block at a time, in sampling order, makes the estimate
    bit-identical for any worker count (and for the serial path).
    """
    grid = np.zeros((6, 6), dtype=np.float64)
    for _, block_grid in sorted(indexed_grids, key=lambda item: item[0]):
        grid += block_grid
    return grid


def _chunk_grids(
    graph: TemporalGraph,
    delta: float,
    args: Tuple,
    chunk: Sequence[Tuple[int, _Block]],
) -> List[Tuple[int, np.ndarray]]:
    """Per-block grids of one chunk, tagged with their sampling index.

    The single evaluation point shared by the serial path, forked
    workers, and the shared-memory pool: each block's grid is a pure
    function of that block alone, so results never depend on the
    chunking.
    """
    W, q, motifs, backend = args
    blocks = [block for _, block in chunk]
    if backend == "columnar":
        grids = bts_columnar_block_grids(
            graph, delta, blocks, W, q, [motif_cell(m) for m in motifs]
        )
    else:
        grids = [_block_grid(graph, delta, motifs, block, W, q) for block in blocks]
    return [(index, grid) for (index, _), grid in zip(chunk, grids)]


def pool_map_block_grids(
    graph: TemporalGraph, delta: float, args: Tuple, chunk
) -> List[Tuple[int, List[List[float]]]]:
    """:class:`~repro.parallel.pool.WorkerPool` map function (``"bts_blocks"``).

    Runs :func:`_chunk_grids` against the worker's attached zero-copy
    graph; grids ship back as nested lists (bit-exact float64
    round-trip) tagged with their sampling index for the canonical
    owner-side reduction.
    """
    return [
        (index, grid.tolist())
        for index, grid in _chunk_grids(graph, delta, args, chunk)
    ]


def _pool_worker(chunk: List[Tuple[int, _Block]]) -> List[Tuple[int, np.ndarray]]:
    assert _WORKER_GRAPH is not None
    delta, args = _WORKER_ARGS
    return _chunk_grids(_WORKER_GRAPH, delta, args, chunk)


def _split_chunks(
    indexed: List[Tuple[int, _Block]], workers: int
) -> List[List[Tuple[int, _Block]]]:
    """Strided block chunks: IPC per chunk, order-independent results."""
    n = max(1, workers) * 4
    chunks = [indexed[k::n] for k in range(n)]
    return [chunk for chunk in chunks if chunk]


def bts_count(
    graph: TemporalGraph,
    delta: float,
    *,
    q: float = 0.3,
    window_factor: float = 5.0,
    seed: int = 0,
    motifs: Optional[Iterable[Motif]] = None,
    exact_when_full: bool = True,
    workers: int = 1,
    start_method: Optional[str] = None,
    backend: str = "python",
    pool: Optional[object] = None,
) -> MotifCounts:
    """Estimate motif counts by interval sampling.

    Parameters
    ----------
    q:
        Block sampling probability in ``(0, 1]``.
    window_factor:
        Block width as a multiple ``c`` of δ; must be > 1 so that any
        instance (span ≤ δ) fits inside a block with positive
        probability.
    seed:
        Seed for the random offset and the block coin flips.
    motifs:
        Motifs to estimate (default: all 36).
    exact_when_full:
        With ``q >= 1``, fall back to the exact BT run.
    workers:
        Number of processes to spread sampled blocks over: a fork pool
        under the ``fork`` start method, the process-wide shared-memory
        :func:`~repro.parallel.pool.shared_pool` otherwise.  The
        estimate is bit-identical in every case (per-block grids reduce
        in canonical order).
    start_method:
        Explicit start method; ``None`` resolves via
        ``REPRO_START_METHOD``, then the platform default.
    backend:
        ``"python"`` (per-motif BT generator passes per block) or
        ``"columnar"`` (one vectorized enumeration pass per block
        batch).  Same draws, same canonical reductions — same bits.
        Note the columnar pass always enumerates every candidate
        triple (pair-only selections excepted, which stay on the pair
        timeline): for a small non-pair motif subset the python
        backend's per-pattern matching can be cheaper.
    pool:
        A persistent :class:`~repro.parallel.pool.WorkerPool` to farm
        block chunks to (wins over ``workers``/``start_method``); its
        workers run either backend against the published zero-copy
        graph.
    """
    if not 0 < q <= 1:
        raise ValidationError(f"q must be in (0, 1], got {q}")
    if window_factor <= 1:
        raise ValidationError(f"window_factor must be > 1, got {window_factor}")
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if backend not in ("python", "columnar"):
        raise ValidationError(
            f"backend must be 'python' or 'columnar', got {backend!r}"
        )
    selected: List[Motif] = list(ALL_MOTIFS if motifs is None else motifs)
    if q >= 1 and exact_when_full:
        result = bt_count(graph, delta, selected)
        result.algorithm = "bts"
        return result

    rng = np.random.default_rng(seed)
    W = window_factor * max(delta, 1)
    offset = float(rng.uniform(0, W))
    grid = np.zeros((6, 6), dtype=np.float64)
    m = graph.num_edges
    if m == 0:
        return MotifCounts(grid, algorithm="bts", delta=delta)

    times = graph.timestamps
    first_block = int(np.floor((float(times[0]) - offset) / W))
    last_block = int(np.floor((float(times[-1]) - offset) / W))
    # Vectorised block sampling: coin flips and edge ranges in bulk.
    block_ids = np.arange(first_block, last_block + 1)
    kept = block_ids[rng.random(block_ids.size) < q]
    b_los = offset + kept * W
    los = np.searchsorted(times, b_los, side="left")
    his = np.searchsorted(times, b_los + W, side="left")
    mask = (his - los) >= 3
    blocks: List[_Block] = [
        (int(lo), int(hi), float(b_lo + W))
        for lo, hi, b_lo in zip(los[mask], his[mask], b_los[mask])
    ]

    # The caller's motif objects travel to the workers verbatim (the
    # columnar kernel derives its cell selection from them), so chunk
    # results always reflect exactly the patterns requested.
    args = (W, q, tuple(selected), backend)
    indexed = list(enumerate(blocks))
    if pool is not None and indexed:
        grid += _run_on_pool(pool, graph, delta, args, indexed, workers, backend)
    elif workers == 1 or len(blocks) <= 1:
        grid += _reduce_block_grids(_chunk_grids(graph, delta, args, indexed))
    else:
        import multiprocessing as mp

        from repro.parallel.executor import resolve_start_method

        global _WORKER_GRAPH, _WORKER_ARGS
        # An explicitly requested-but-unavailable method raises inside
        # resolve_start_method, exactly like the HARE path — never
        # silently run another (so "fork" here implies get_context
        # succeeds).
        method = resolve_start_method(start_method)
        if method != "fork":
            # Non-fork start methods route through the process-wide
            # shared-memory pool — real parallelism instead of the
            # historical silent serial fallback.
            from repro.parallel.pool import shared_pool

            grid += _run_on_pool(
                shared_pool(workers, start_method=method),
                graph, delta, args, indexed, workers, backend,
            )
        else:
            ctx = mp.get_context("fork")
            if backend == "columnar":
                from repro.core.columnar_kernels import edge_window_ends

                # Build the store and the per-δ edge-window table
                # before forking so children share them copy-on-write.
                edge_window_ends(graph.columnar(), delta)
            else:
                graph.sequences()
                graph.ensure_pair_index()
                graph.edge_lists()
            _WORKER_GRAPH = graph
            _WORKER_ARGS = (delta, args)
            # Chunk blocks so IPC is per-chunk, not per-block; the
            # per-block grids come back tagged with their sampling
            # index so the reduction order (and hence the estimate,
            # bit for bit) never depends on the chunking.
            chunks = _split_chunks(indexed, workers)
            collected: List[Tuple[int, np.ndarray]] = []
            try:
                with ctx.Pool(processes=workers) as proc_pool:
                    for partial in proc_pool.imap_unordered(
                        _pool_worker, chunks, chunksize=1
                    ):
                        collected.extend(partial)
            finally:
                _WORKER_GRAPH = None
                _WORKER_ARGS = ()
            grid += _reduce_block_grids(collected)
    return MotifCounts(grid, algorithm="bts", delta=delta)


def _run_on_pool(
    pool, graph, delta, args, indexed, workers: int, backend: str
) -> np.ndarray:
    """Farm block chunks to a persistent pool; reduce canonically."""
    chunks = _split_chunks(indexed, max(workers, getattr(pool, "workers", 1)))
    payloads = pool.run_map(
        graph, "bts_blocks", chunks, args=args, delta=delta, backend=backend
    )
    collected = [
        (index, np.asarray(grid, dtype=np.float64))
        for payload in payloads
        for index, grid in payload
    ]
    return _reduce_block_grids(collected)


def bts_count_pairs(
    graph: TemporalGraph,
    delta: float,
    *,
    q: float = 0.3,
    window_factor: float = 5.0,
    seed: int = 0,
    exact_when_full: bool = True,
    workers: int = 1,
    start_method: Optional[str] = None,
    backend: str = "python",
    pool: Optional[object] = None,
) -> MotifCounts:
    """BTS-Pair: interval-sampled estimate of the four 2-node motifs."""
    return bts_count(
        graph,
        delta,
        q=q,
        window_factor=window_factor,
        seed=seed,
        motifs=PAIR_MOTIFS,
        exact_when_full=exact_when_full,
        workers=workers,
        start_method=start_method,
        backend=backend,
        pool=pool,
    )
