"""BTS — interval sampling with BT as the exact subroutine.

The baseline of Liu, Benson & Charikar ("Sampling methods for counting
temporal motifs", WSDM 2019): a sampling *layer* on top of an exact
counter.  Time is partitioned — at a uniformly random offset — into
blocks of width ``c·δ``; each block is kept with probability ``q``;
the exact algorithm (BT here, as in the paper's BTS-Pair) enumerates
the instances lying entirely inside each kept block, and every found
instance is reweighted by the inverse probability that a random
partition of blocks covers it:

    P(covered and sampled) = q · (W - span) / W,   W = c·δ

which makes the estimator unbiased (Horvitz–Thompson over the random
offset and the block coin flips).  Instances that straddle a block
boundary in one draw are covered in others; no instance is ever
over-weighted.

Blocks are matched *in place* on the full graph (first-edge index
range + timestamp cap) rather than on materialised subgraphs, and are
independent — which is also the parallel decomposition: ``workers > 1``
farms sampled blocks out to a fork pool, reproducing the BTS-Pair
curves of the paper's Fig. 11.

``q = 1`` keeps every block but the estimate still varies with the
offset; :func:`bts_count` therefore short-circuits ``q >= 1 and
exact_when_full`` to a plain exact BT run, matching how the original
is used as a sanity configuration.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.baselines.backtracking import bt_count, match_instances
from repro.core.counters import MotifCounts
from repro.core.motifs import ALL_MOTIFS, Motif, PAIR_MOTIFS
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: A sampled block: (first-edge index lo, hi, block end time, weight q).
_Block = Tuple[int, int, float]

_WORKER_GRAPH: Optional[TemporalGraph] = None
_WORKER_ARGS: Tuple = ()


def _block_grid(
    graph: TemporalGraph,
    delta: float,
    motifs: List[Motif],
    block: _Block,
    W: float,
    q: float,
) -> np.ndarray:
    """HT-weighted counts of one sampled block."""
    t = graph.edge_lists()[2]
    grid = np.zeros((6, 6), dtype=np.float64)
    # Instance weight: W / (q * (W - span)) = 1 / ((W - span) * q / W).
    q_over_w = q / W
    lo, hi, b_hi = block
    for motif in motifs:
        acc = 0.0
        for matched in match_instances(
            graph, delta, motif.canonical, first_range=(lo, hi), t_cap=b_hi
        ):
            span = t[matched[-1]] - t[matched[0]]
            acc += 1.0 / ((W - span) * q_over_w)
        if acc:
            grid[motif.row - 1, motif.col - 1] += acc
    return grid


def _reduce_block_grids(indexed_grids: List[Tuple[int, np.ndarray]]) -> np.ndarray:
    """Sum per-block grids in global block order.

    Floating-point addition is not associative, so the reduction tree
    must not depend on how blocks were chunked across workers: summing
    one block at a time, in sampling order, makes the estimate
    bit-identical for any worker count (and for the serial path).
    """
    grid = np.zeros((6, 6), dtype=np.float64)
    for _, block_grid in sorted(indexed_grids, key=lambda item: item[0]):
        grid += block_grid
    return grid


def _pool_worker(chunk: List[Tuple[int, _Block]]) -> List[Tuple[int, np.ndarray]]:
    assert _WORKER_GRAPH is not None
    delta, motifs, W, q = _WORKER_ARGS
    return [
        (index, _block_grid(_WORKER_GRAPH, delta, motifs, block, W, q))
        for index, block in chunk
    ]


def bts_count(
    graph: TemporalGraph,
    delta: float,
    *,
    q: float = 0.3,
    window_factor: float = 5.0,
    seed: int = 0,
    motifs: Optional[Iterable[Motif]] = None,
    exact_when_full: bool = True,
    workers: int = 1,
    start_method: Optional[str] = None,
) -> MotifCounts:
    """Estimate motif counts by interval sampling.

    Parameters
    ----------
    q:
        Block sampling probability in ``(0, 1]``.
    window_factor:
        Block width as a multiple ``c`` of δ; must be > 1 so that any
        instance (span ≤ δ) fits inside a block with positive
        probability.
    seed:
        Seed for the random offset and the block coin flips.
    motifs:
        Motifs to estimate (default: all 36).
    exact_when_full:
        With ``q >= 1``, fall back to the exact BT run.
    workers:
        Number of processes to spread sampled blocks over.  Block
        farming shares the graph via fork copy-on-write, so it only
        engages when the resolved start method is ``fork``; other
        methods run serially.  The estimate is bit-identical either
        way (per-block grids reduce in canonical order).
    start_method:
        Explicit start method; ``None`` resolves via
        ``REPRO_START_METHOD``, then the platform default.
    """
    if not 0 < q <= 1:
        raise ValidationError(f"q must be in (0, 1], got {q}")
    if window_factor <= 1:
        raise ValidationError(f"window_factor must be > 1, got {window_factor}")
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    selected: List[Motif] = list(ALL_MOTIFS if motifs is None else motifs)
    if q >= 1 and exact_when_full:
        result = bt_count(graph, delta, selected)
        result.algorithm = "bts"
        return result

    rng = np.random.default_rng(seed)
    W = window_factor * max(delta, 1)
    offset = float(rng.uniform(0, W))
    grid = np.zeros((6, 6), dtype=np.float64)
    m = graph.num_edges
    if m == 0:
        return MotifCounts(grid, algorithm="bts", delta=delta)

    times = graph.timestamps
    first_block = int(np.floor((float(times[0]) - offset) / W))
    last_block = int(np.floor((float(times[-1]) - offset) / W))
    # Vectorised block sampling: coin flips and edge ranges in bulk.
    block_ids = np.arange(first_block, last_block + 1)
    kept = block_ids[rng.random(block_ids.size) < q]
    b_los = offset + kept * W
    los = np.searchsorted(times, b_los, side="left")
    his = np.searchsorted(times, b_los + W, side="left")
    mask = (his - los) >= 3
    blocks: List[_Block] = [
        (int(lo), int(hi), float(b_lo + W))
        for lo, hi, b_lo in zip(los[mask], his[mask], b_los[mask])
    ]

    indexed = list(enumerate(blocks))
    if workers == 1 or len(blocks) <= 1:
        grids = [
            (index, _block_grid(graph, delta, selected, block, W, q))
            for index, block in indexed
        ]
        grid += _reduce_block_grids(grids)
    else:
        import multiprocessing as mp

        from repro.parallel.executor import resolve_start_method

        global _WORKER_GRAPH, _WORKER_ARGS
        # An explicitly requested-but-unavailable method raises,
        # exactly like the HARE path — never silently run another.
        fork_requested = resolve_start_method(start_method) == "fork"
        try:
            ctx = mp.get_context("fork") if fork_requested else None
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = None
        if ctx is None:
            grids = [
                (index, _block_grid(graph, delta, selected, block, W, q))
                for index, block in indexed
            ]
            grid += _reduce_block_grids(grids)
        else:
            graph.sequences()
            graph.ensure_pair_index()
            graph.edge_lists()
            _WORKER_GRAPH = graph
            _WORKER_ARGS = (delta, selected, W, q)
            # Chunk blocks so IPC is per-chunk, not per-block; the
            # per-block grids come back tagged with their sampling
            # index so the reduction order (and hence the estimate,
            # bit for bit) never depends on the chunking.
            chunks = [indexed[k::workers * 4] for k in range(workers * 4)]
            chunks = [c for c in chunks if c]
            collected: List[Tuple[int, np.ndarray]] = []
            try:
                with ctx.Pool(processes=workers) as pool:
                    for partial in pool.imap_unordered(_pool_worker, chunks, chunksize=1):
                        collected.extend(partial)
            finally:
                _WORKER_GRAPH = None
                _WORKER_ARGS = ()
            grid += _reduce_block_grids(collected)
    return MotifCounts(grid, algorithm="bts", delta=delta)


def bts_count_pairs(
    graph: TemporalGraph,
    delta: float,
    *,
    q: float = 0.3,
    window_factor: float = 5.0,
    seed: int = 0,
    exact_when_full: bool = True,
    workers: int = 1,
) -> MotifCounts:
    """BTS-Pair: interval-sampled estimate of the four 2-node motifs."""
    return bts_count(
        graph,
        delta,
        q=q,
        window_factor=window_factor,
        seed=seed,
        motifs=PAIR_MOTIFS,
        exact_when_full=exact_when_full,
        workers=workers,
    )
