"""Paranjape-style sliding-window sequence counter.

The primitive underlying the EX baseline: given a time-ordered event
stream where each event carries a small *class* label, count every
ordered 3-subsequence whose span fits in δ, bucketed by the class
triple.  The counter is incremental — O(C) work per event for the pair
table plus O(C²) for the triple table — and entirely independent of δ,
which is exactly the property that makes EX flat in the paper's
Fig. 12(a).

The ``count_from`` threshold implements EX's time-slab parallelisation:
a worker warms its window up on the δ-overlap *before* its slab but
only accumulates triples whose last event falls inside the slab, so
every instance is counted by exactly one worker.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: One event: (timestamp, canonical edge id, class label).
Event = Tuple[float, int, int]


def count_sequences(
    events: Sequence[Event],
    delta: float,
    num_classes: int,
    count_from: Optional[Tuple[float, int]] = None,
) -> List[int]:
    """Count δ-windowed ordered 3-subsequences by class triple.

    Parameters
    ----------
    events:
        Time-ordered events (ties broken by edge id, matching the
        repository's canonical order).
    delta:
        Window span: a triple ``(x, y, z)`` is counted iff
        ``z.t - x.t <= delta``.
    num_classes:
        Number of distinct class labels ``C``; labels must be in
        ``[0, C)``.
    count_from:
        Optional ``(t, eid)`` threshold: only triples whose *last*
        event is ``>=`` the threshold are accumulated (slab mode).

    Returns
    -------
    list of int
        Flat counts of length ``C³``, indexed ``(c1*C + c2)*C + c3``.
    """
    C = num_classes
    count1 = [0] * C
    count2 = [0] * (C * C)
    count3 = [0] * (C * C * C)
    start = 0
    n = len(events)
    for idx in range(n):
        tj, eidj, cj = events[idx]
        # Expire events that fall out of the δ window ending at tj.
        while start < idx and events[start][0] + delta < tj:
            cs = events[start][2]
            count1[cs] -= 1
            base = cs * C
            for y in range(C):
                count2[base + y] -= count1[y]
            start += 1
        # Triples ending at the current event.
        if count_from is None or (tj, eidj) >= count_from:
            for xy in range(C * C):
                pairs = count2[xy]
                if pairs:
                    count3[xy * C + cj] += pairs
        # Extend pairs and singles with the current event.
        for x in range(C):
            ones = count1[x]
            if ones:
                count2[x * C + cj] += ones
        count1[cj] += 1
    return count3
