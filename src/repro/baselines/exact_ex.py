"""EX — the exact counting baseline of Paranjape, Benson & Leskovec.

The algorithm the paper benchmarks FAST against ([1] in the paper,
WSDM'17).  EX counts all 2- and 3-node, 3-edge δ-temporal motifs with
three dedicated components, all built on incremental sliding-window
sequence counters whose per-event cost is **independent of δ** (the
defining performance signature of EX in the paper's Fig. 12(a)):

* **2-node motifs** — a C=2 window counter over every pair timeline;
* **star motifs** — a per-center, single-pass counter that maintains
  per-neighbour snapshot sums so the number of (first, second) edge
  pairs of every direction combination and neighbour-equality pattern
  is available in O(1) when an edge is processed as the temporal last
  edge of a motif;
* **triangle motifs** — static-triangle enumeration followed by a C=6
  window counter over each triangle's merged three-pair timeline
  (each temporal edge is re-processed once per static triangle it
  participates in, which is EX's bottleneck on triangle-dense data).

Compared with FAST, EX maintains "more than ten triple and tuple
counters and requires multiple complex update operations for each
temporal edge" (§V-E) — visible here as the ~10× larger per-event
constant of the star/triangle machinery.

Time-slab parallelism (``workers > 1``) reproduces the paper's
parallel-EX behaviour: the canonical edge order is cut into equal
slabs, each worker warms its counters on the δ-overlap preceding its
slab and only accumulates motifs whose temporally-last edge lies
inside the slab.  The duplicated warm-up work and per-process overhead
grow with the worker count, which is why parallel EX saturates and
then *degrades* (Fig. 11).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.window_counter import count_sequences
from repro.core.counters import MotifCounts
from repro.core.motifs import classify_triple, pair_cell_motif, star_cell_motif
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: A slab: (inclusive lower (t, eid) threshold or None, exclusive upper
#: (t, eid) threshold or None).  Instances are attributed to the slab
#: containing their temporally-last edge.
Slab = Tuple[Optional[Tuple[float, int]], Optional[Tuple[float, int]]]

_FULL_SLAB: Slab = (None, None)


# ---------------------------------------------------------------------------
# 2-node (pair) motifs
# ---------------------------------------------------------------------------

def _pair_motif_names() -> List[List[str]]:
    """Map flat (d1*4 + d2*2 + d3) class triples to pair motif names."""
    names = [""] * 8
    for d1, d2, d3 in product((0, 1), repeat=3):
        names[d1 * 4 + d2 * 2 + d3] = pair_cell_motif(d1, d2, d3).name
    return names


_PAIR_NAMES = _pair_motif_names()


def ex_pair_counts(
    graph: TemporalGraph,
    delta: float,
    slab: Slab = _FULL_SLAB,
) -> Dict[str, int]:
    """Exact counts of the four 2-node motifs (EX component).

    Runs the C=2 window counter over every pair timeline.  Directions
    are taken relative to the smaller internal node id, which the
    canonical motif table normalises away.
    """
    lo, hi = slab
    grid: Dict[str, int] = {}
    for a, b in graph.static_pairs():
        times, dirs, eids = graph.pair_timeline(a, b)
        if len(times) < 3 and lo is None and hi is None:
            continue
        events = _slice_events(times, eids, dirs, delta, lo, hi)
        if len(events) < 3:
            continue
        count3 = count_sequences(events, delta, 2, count_from=lo)
        for idx in range(8):
            value = count3[idx]
            if value:
                name = _PAIR_NAMES[idx]
                grid[name] = grid.get(name, 0) + value
    return grid


def _slice_events(
    times: Sequence[float],
    eids: Sequence[int],
    classes: Sequence[int],
    delta: float,
    lo: Optional[Tuple[float, int]],
    hi: Optional[Tuple[float, int]],
) -> List[Tuple[float, int, int]]:
    """Assemble (t, eid, class) events restricted to a slab + warm-up.

    Keeps every event with ``t >= lo.t - delta`` (warm-up) and
    ``(t, eid) < hi``.
    """
    n = len(times)
    start = 0
    if lo is not None:
        warm = lo[0] - delta
        import bisect

        start = bisect.bisect_left(times, warm)
    events = []
    for k in range(start, n):
        key = (times[k], eids[k])
        if hi is not None and key >= hi:
            break
        events.append((times[k], eids[k], classes[k]))
    return events


# ---------------------------------------------------------------------------
# Star motifs
# ---------------------------------------------------------------------------

def _star_cell_names() -> List[List[str]]:
    """``names[star_type][d1*4 + d2*2 + d3]`` -> motif name."""
    names = [[""] * 8 for _ in range(3)]
    for t in range(3):
        for d1, d2, d3 in product((0, 1), repeat=3):
            names[t][d1 * 4 + d2 * 2 + d3] = star_cell_motif(t, d1, d2, d3).name
    return names


_STAR_NAMES = _star_cell_names()


def _ex_star_center(
    times: Sequence[float],
    nbrs: Sequence[int],
    dirs: Sequence[int],
    eids: Sequence[int],
    delta: float,
    star: List[int],
    lo: Optional[Tuple[float, int]],
    hi: Optional[Tuple[float, int]],
) -> None:
    """Single-pass star counting for one center (EX machinery).

    ``star`` is a flat 24-cell list, layout
    ``star_type*8 + d1*4 + d2*2 + d3``.  For each event processed as
    the temporal **last** edge of a motif, the number of qualifying
    (first, second) edge pairs per direction combination is derived
    from snapshot sums:

    * ``A[d1][d2]`` — window pairs whose second edge goes to the
      current neighbour ``v`` (any first edge),
    * ``B[d1][d2]`` — window pairs entirely on ``v``,
    * ``F[d1][d2]`` — window pairs whose first edge goes to ``v``,
    * ``PS[d1][d2]`` — window pairs on a *same* neighbour, any one.

    yielding Star-I ``A−B``, Star-II ``F−B`` and Star-III ``PS−B``
    contributions.  Every structure updates in O(1) per event because
    events expire in FIFO order: an expired event is older than every
    surviving one, so its pair contributions are recoverable from the
    cumulative-arrival snapshots stored when it entered the window.
    """
    import bisect

    n = len(times)
    start_idx = 0
    if lo is not None:
        start_idx = bisect.bisect_left(times, lo[0] - delta)
    # Global state.
    C0 = C1 = 0          # cumulative arrivals by direction
    E0 = E1 = 0          # expired events by direction
    PS = [0, 0, 0, 0]    # sum over nbrs of per-nbr snapshot sums (d1*2+dy)
    G = [0, 0, 0, 0]     # sum over nbrs of Ev[d1]*cnt_v[d2]
    # Per-neighbour state vectors, layout:
    #  [0:2] cnt_v by dir, [2:4] cumulative Cv, [4:6] expired Ev,
    #  [6:10] Sv[d1][dy] snapshot sums of global C, [10:14] SV2[d1][dy]
    #  snapshot sums of per-neighbour Cv.
    per_nbr: Dict[int, List[int]] = {}
    queue: List[Tuple[float, int, int, int, int, int, int]] = []
    qhead = 0
    counting = lo is None

    for idx in range(start_idx, n):
        t = times[idx]
        eid = eids[idx]
        if hi is not None and (t, eid) >= hi:
            break
        # Expire.
        expire_before = t - delta
        while qhead < len(queue) and queue[qhead][0] < expire_before:
            _, w, dx, sC0, sC1, sCw0, sCw1 = queue[qhead]
            qhead += 1
            nw = per_nbr[w]
            nw[dx] -= 1
            nw[6 + dx] -= sC0
            nw[8 + dx] -= sC1
            nw[10 + dx] -= sCw0
            nw[12 + dx] -= sCw1
            PS[dx] -= sCw0
            PS[2 + dx] -= sCw1
            # cnt_w[dx] dropped: G[d1][dx] -= Ev_w[d1]
            G[dx] -= nw[4]
            G[2 + dx] -= nw[5]
            # Ev_w[dx] += 1: G[dx][d2] += cnt_w[d2]
            nw[4 + dx] += 1
            G[dx * 2] += nw[0]
            G[dx * 2 + 1] += nw[1]
            if dx:
                E1 += 1
            else:
                E0 += 1

        v = nbrs[idx]
        d3 = dirs[idx]
        nbr = per_nbr.get(v)
        if nbr is None:
            nbr = [0] * 14
            per_nbr[v] = nbr

        if not counting and (t, eid) >= lo:  # type: ignore[operator]
            counting = True
        if counting:
            cnt_v0 = nbr[0]
            cnt_v1 = nbr[1]
            ev0 = nbr[4]
            ev1 = nbr[5]
            E = (E0, E1)
            Cg = (C0, C1)
            cnt_v = (cnt_v0, cnt_v1)
            for d1 in (0, 1):
                ed1 = E[d1]
                evd1 = (ev0, ev1)[d1]
                row = 6 + d1 * 2
                row2 = 10 + d1 * 2
                g_row = d1 * 2
                for d2 in (0, 1):
                    cv2 = cnt_v[d2]
                    a_cnt = nbr[row + d2] - ed1 * cv2
                    b_cnt = nbr[row2 + d2] - evd1 * cv2
                    f_cnt = cnt_v[d1] * Cg[d2] - nbr[6 + d2 * 2 + d1]
                    if d1 == d2:
                        f_cnt -= cnt_v[d1]
                    ps_cnt = PS[g_row + d2] - G[g_row + d2]
                    cell = d1 * 4 + d2 * 2 + d3
                    star[cell] += a_cnt - b_cnt          # Star-I
                    star[8 + cell] += f_cnt - b_cnt      # Star-II
                    star[16 + cell] += ps_cnt - b_cnt    # Star-III

        # Add the current event.
        sCv0 = nbr[2]
        sCv1 = nbr[3]
        queue.append((t, v, d3, C0, C1, sCv0, sCv1))
        nbr[6 + d3] += C0
        nbr[8 + d3] += C1
        nbr[10 + d3] += sCv0
        nbr[12 + d3] += sCv1
        PS[d3] += sCv0
        PS[2 + d3] += sCv1
        G[d3] += nbr[4]
        G[2 + d3] += nbr[5]
        if d3:
            C1 += 1
        else:
            C0 += 1
        nbr[2 + d3] += 1
        nbr[d3] += 1


def ex_star_counts(
    graph: TemporalGraph,
    delta: float,
    slab: Slab = _FULL_SLAB,
) -> Dict[str, int]:
    """Exact counts of the 24 star motifs (EX component)."""
    lo, hi = slab
    star = [0] * 24
    for node in range(graph.num_nodes):
        seq = graph.node_sequence(node)
        if len(seq) < 3:
            continue
        _ex_star_center(seq.times, seq.nbrs, seq.dirs, seq.eids, delta, star, lo, hi)
    grid: Dict[str, int] = {}
    for t in range(3):
        for cell in range(8):
            value = star[t * 8 + cell]
            if value:
                name = _STAR_NAMES[t][cell]
                grid[name] = grid.get(name, 0) + value
    return grid


# ---------------------------------------------------------------------------
# Triangle motifs
# ---------------------------------------------------------------------------

def _triangle_decode_table() -> List[Optional[str]]:
    """Class-triple -> motif name for the merged-timeline counter.

    Classes are ``slot*2 + dir`` where slot 0/1/2 is the pair
    ``(a,b)/(a,c)/(b,c)`` of the static triangle ``a < b < c`` and dir
    0 means the edge goes from the smaller to the larger id.  Only
    triples whose slots are a permutation of (0, 1, 2) form triangles.
    """
    slot_edges = {
        (0, 0): (0, 1), (0, 1): (1, 0),
        (1, 0): (0, 2), (1, 1): (2, 0),
        (2, 0): (1, 2), (2, 1): (2, 1),
    }
    table: List[Optional[str]] = [None] * 216
    for c1, c2, c3 in product(range(6), repeat=3):
        slots = (c1 // 2, c2 // 2, c3 // 2)
        if sorted(slots) != [0, 1, 2]:
            continue
        edges = tuple(slot_edges[(c // 2, c % 2)] for c in (c1, c2, c3))
        motif = classify_triple(edges)
        assert motif is not None
        table[(c1 * 6 + c2) * 6 + c3] = motif.name
    return table


_TRI_DECODE = _triangle_decode_table()


def static_triangles(graph: TemporalGraph) -> List[Tuple[int, int, int]]:
    """Enumerate static triangles ``(a, b, c)`` with ``a < b < c``."""
    pairs = graph.static_pairs()
    adjacency: Dict[int, set] = {}
    for a, b in pairs:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    triangles = []
    for a, b in pairs:
        adj_a = adjacency[a]
        adj_b = adjacency[b]
        small, large = (adj_a, adj_b) if len(adj_a) <= len(adj_b) else (adj_b, adj_a)
        for c in small:
            if c > b and c in large:
                triangles.append((a, b, c))
    return triangles


def ex_triangle_counts(
    graph: TemporalGraph,
    delta: float,
    slab: Slab = _FULL_SLAB,
) -> Dict[str, int]:
    """Exact counts of the 8 triangle motifs (EX component).

    Merges the three pair timelines of every static triangle and runs
    the C=6 window counter over the merged stream.
    """
    lo, hi = slab
    grid: Dict[str, int] = {}
    for a, b, c in static_triangles(graph):
        merged = _merged_timeline(graph, a, b, c)
        events = _slice_merged(merged, delta, lo, hi)
        if len(events) < 3:
            continue
        count3 = count_sequences(events, delta, 6, count_from=lo)
        for idx, value in enumerate(count3):
            if value:
                name = _TRI_DECODE[idx]
                if name is not None:
                    grid[name] = grid.get(name, 0) + value
    return grid


def _merged_timeline(
    graph: TemporalGraph, a: int, b: int, c: int
) -> List[Tuple[float, int, int]]:
    """Merge E(a,b), E(a,c), E(b,c) into one (t, eid, class) stream."""
    events: List[Tuple[float, int, int]] = []
    for slot, (x, y) in enumerate(((a, b), (a, c), (b, c))):
        times, dirs, eids = graph.pair_timeline(x, y)
        base = slot * 2
        events.extend(
            (times[k], eids[k], base + dirs[k]) for k in range(len(times))
        )
    events.sort(key=lambda e: e[1])  # eid order == canonical (t, id) order
    return events


def _slice_merged(
    events: List[Tuple[float, int, int]],
    delta: float,
    lo: Optional[Tuple[float, int]],
    hi: Optional[Tuple[float, int]],
) -> List[Tuple[float, int, int]]:
    if lo is None and hi is None:
        return events
    warm = None if lo is None else lo[0] - delta
    out = []
    for t, eid, cls in events:
        if warm is not None and t < warm:
            continue
        if hi is not None and (t, eid) >= hi:
            break
        out.append((t, eid, cls))
    return out


# ---------------------------------------------------------------------------
# Composition and time-slab parallelism
# ---------------------------------------------------------------------------

def _ex_partial(
    graph: TemporalGraph,
    delta: float,
    categories: str,
    slab: Slab,
) -> Dict[str, int]:
    grid: Dict[str, int] = {}
    if categories in ("all", "pair", "star_pair"):
        grid.update(ex_pair_counts(graph, delta, slab))
    if categories in ("all", "star", "star_pair"):
        for name, value in ex_star_counts(graph, delta, slab).items():
            grid[name] = grid.get(name, 0) + value
    if categories in ("all", "triangle"):
        for name, value in ex_triangle_counts(graph, delta, slab).items():
            grid[name] = grid.get(name, 0) + value
    return grid


def make_slabs(graph: TemporalGraph, workers: int) -> List[Slab]:
    """Cut the canonical edge order into ``workers`` equal slabs."""
    m = graph.num_edges
    times = graph.timestamps
    boundaries = [m * k // workers for k in range(workers + 1)]
    slabs: List[Slab] = []
    for k in range(workers):
        lo_idx, hi_idx = boundaries[k], boundaries[k + 1]
        lo = None if lo_idx == 0 else (float(times[lo_idx]), lo_idx)
        hi = None if hi_idx >= m else (float(times[hi_idx]), hi_idx)
        slabs.append((lo, hi))
    return slabs


_WORKER_GRAPH: Optional[TemporalGraph] = None
_WORKER_ARGS: Tuple = ()


def _slab_worker(slab: Slab) -> Dict[str, int]:
    assert _WORKER_GRAPH is not None
    delta, categories = _WORKER_ARGS
    return _ex_partial(_WORKER_GRAPH, delta, categories, slab)


def ex_count(
    graph: TemporalGraph,
    delta: float,
    *,
    categories: str = "all",
    workers: int = 1,
    start_method: "Optional[str]" = None,
    backend: str = "python",
) -> MotifCounts:
    """Count motifs with the EX baseline.

    ``workers > 1`` uses the time-slab parallel decomposition
    described in the module docstring.  The decomposition relies on
    fork copy-on-write sharing, so it only engages when the resolved
    start method is ``fork`` (explicit ``start_method``, then the
    ``REPRO_START_METHOD`` env var, then the platform default);
    anything else runs serially — identical counts either way.

    ``backend="columnar"`` counts by full vectorized enumeration over
    the columnar store
    (:func:`repro.core.sampling_kernels.ex_columnar_grid`) — identical
    counts, Θ(instances) cost, serial.  It is explicit opt-in: the
    window-counter machinery below stays the default (and the
    ``"auto"`` resolution), because it is *sublinear* in instances on
    dense timelines.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    if backend not in ("python", "columnar"):
        raise ValidationError(
            f"backend must be 'python' or 'columnar', got {backend!r}"
        )
    if backend == "columnar":
        from repro.core.sampling_kernels import ex_columnar_grid

        result = MotifCounts(
            ex_columnar_grid(graph, delta, categories), algorithm="ex", delta=delta
        )
        # The enumeration kernel has no slab decomposition, so a
        # workers>1 request is answered serially — and says so in the
        # result's provenance instead of implying parallel execution.
        result.meta["runtime"] = "serial"
        if workers > 1:
            result.meta["workers_ignored"] = workers
        return result
    graph.ensure_pair_index()
    if workers == 1 or graph.num_edges == 0:
        grid = _ex_partial(graph, delta, categories, _FULL_SLAB)
        return MotifCounts.from_dict(grid, algorithm="ex", delta=delta)

    import multiprocessing as mp

    from repro.parallel.executor import resolve_start_method

    global _WORKER_GRAPH, _WORKER_ARGS
    # An explicitly requested-but-unavailable method raises, exactly
    # like the HARE path — never silently run something else.
    fork_requested = resolve_start_method(start_method) == "fork"
    # Force the lazy sequence views before forking so slab workers
    # inherit one copy-on-write build instead of each making their own.
    graph.sequences()
    slabs = make_slabs(graph, workers)
    _WORKER_GRAPH = graph
    _WORKER_ARGS = (delta, categories)
    try:
        ctx = mp.get_context("fork") if fork_requested else None
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = None
    if ctx is None:
        _WORKER_GRAPH = None
        _WORKER_ARGS = ()
        grid = _ex_partial(graph, delta, categories, _FULL_SLAB)
        return MotifCounts.from_dict(grid, algorithm="ex", delta=delta)
    try:
        with ctx.Pool(processes=workers) as pool:
            partials = pool.map(_slab_worker, slabs)
    finally:
        _WORKER_GRAPH = None
        _WORKER_ARGS = ()
    grid: Dict[str, int] = {}
    for partial in partials:
        for name, value in partial.items():
            grid[name] = grid.get(name, 0) + value
    return MotifCounts.from_dict(grid, algorithm="ex", delta=delta)
