"""EWS — edge/wedge sampling estimator for temporal motif counts.

The baseline of Wang et al. ("Efficient sampling algorithms for
approximate temporal motif counting", CIKM 2020): an **edge sampler**
(keep each temporal edge as an anchor with probability ``p``) hybridised
with a **wedge sampler** (explore each wedge-forming second edge with
probability ``q``) for 3-node, 3-edge motifs.

Here the anchor is the *first* edge of an instance (every instance has
exactly one, so reweighting by ``1/p`` is unbiased).  For each sampled
anchor the local neighbourhood is searched exactly: second-edge
candidates are the later edges incident to the anchor's endpoints
(every valid second edge shares a node with the first), and third-edge
candidates the later edges incident to any bound node.  Wedges —
second edges that open a third node — are subsampled with probability
``q`` and reweighted ``1/(p·q)``; pair-extending second edges stay at
``1/p``.  With ``p = q = 1`` the estimate is exact (tested against
FAST), which is the degeneracy argument for unbiasedness.

The paper's configuration is ``p = 0.01, q = 1``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

import numpy as np

from repro.core.counters import MotifCounts
from repro.core.motifs import classify_triple
from repro.errors import ValidationError
from repro.graph.temporal_graph import OUT, TemporalGraph


def _later_incident_edges(
    graph: TemporalGraph,
    nodes: Tuple[int, ...],
    t_after: float,
    eid_after: int,
    t_limit: float,
) -> List[Tuple[float, int, int, int]]:
    """Edges incident to ``nodes`` strictly after (t_after, eid_after).

    Returns (t, eid, src, dst) tuples in canonical order, within the δ
    limit.  Edges touching two of the query nodes are reported once.
    """
    found: Dict[int, Tuple[float, int, int, int]] = {}
    for node in nodes:
        seq = graph.node_sequence(node)
        times = seq.times
        dirs = seq.dirs
        nbrs = seq.nbrs
        eids = seq.eids
        lo = bisect_left(times, t_after)
        for k in range(lo, len(times)):
            tk = times[k]
            if tk > t_limit:
                break
            eid = eids[k]
            if (tk, eid) <= (t_after, eid_after) or eid in found:
                continue
            if dirs[k] == OUT:
                found[eid] = (tk, eid, node, nbrs[k])
            else:
                found[eid] = (tk, eid, nbrs[k], node)
    return sorted(found.values(), key=lambda e: e[1])


def ews_count(
    graph: TemporalGraph,
    delta: float,
    *,
    p: float = 0.01,
    q: float = 1.0,
    seed: int = 0,
) -> MotifCounts:
    """Estimate all 36 motif counts by edge/wedge sampling.

    Parameters
    ----------
    p:
        Anchor (first-edge) sampling probability in ``(0, 1]``.
    q:
        Wedge sampling probability in ``(0, 1]`` applied to second
        edges that introduce a third node.
    seed:
        RNG seed for both samplers.
    """
    for name, prob in (("p", p), ("q", q)):
        if not 0 < prob <= 1:
            raise ValidationError(f"{name} must be in (0, 1], got {prob}")
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")

    rng = np.random.default_rng(seed)
    src = graph.sources.tolist()
    dst = graph.destinations.tolist()
    t = graph.timestamps.tolist()
    m = graph.num_edges
    grid = np.zeros((6, 6), dtype=np.float64)
    if m == 0:
        return MotifCounts(grid, algorithm="ews", delta=delta)

    anchors = np.nonzero(rng.random(m) < p)[0] if p < 1 else np.arange(m)
    inv_p = 1.0 / p
    for a in anchors.tolist():
        ta = t[a]
        limit = ta + delta
        ua, va = src[a], dst[a]
        e1 = (ua, va)
        seconds = _later_incident_edges(graph, (ua, va), ta, a, limit)
        for tb, b, ub, vb in seconds:
            second_nodes = {ua, va, ub, vb}
            if len(second_nodes) > 2:
                # Wedge: subsample with probability q.
                if q < 1 and rng.random() >= q:
                    continue
                weight = inv_p / q
            else:
                weight = inv_p
            thirds = _later_incident_edges(
                graph, tuple(second_nodes), tb, b, limit
            )
            e2 = (ub, vb)
            for _, _, uc, vc in thirds:
                motif = classify_triple((e1, e2, (uc, vc)))
                if motif is not None:
                    grid[motif.row - 1, motif.col - 1] += weight
    return MotifCounts(grid, algorithm="ews", delta=delta)
