"""EWS — edge/wedge sampling estimator for temporal motif counts.

The baseline of Wang et al. ("Efficient sampling algorithms for
approximate temporal motif counting", CIKM 2020): an **edge sampler**
(keep each temporal edge as an anchor with probability ``p``) hybridised
with a **wedge sampler** (explore each wedge-forming second edge with
probability ``q``) for 3-node, 3-edge motifs.

Here the anchor is the *first* edge of an instance (every instance has
exactly one, so reweighting by ``1/p`` is unbiased).  For each sampled
anchor the local neighbourhood is searched exactly: second-edge
candidates are the later edges incident to the anchor's endpoints
(every valid second edge shares a node with the first), and third-edge
candidates the later edges incident to any bound node.  Wedges —
second edges that open a third node — are subsampled with probability
``q`` and reweighted ``1/(p·q)``; pair-extending second edges stay at
``1/p``.  With ``p = q = 1`` the estimate is exact (tested against
FAST), which is the degeneracy argument for unbiasedness.

The paper's configuration is ``p = 0.01, q = 1``.

Two execution backends, identical estimates bit for bit per seed:

* ``backend="python"`` — the per-anchor generator walk below.  Each
  candidate triple is classified by the precomputed
  :data:`~repro.core.sampling_kernels.TRIPLE_CELL_TABLE` (an integer
  shape/direction code instead of a
  :func:`~repro.core.motifs.classify_triple` canonicalisation per
  instance), and occurrences are tallied as exact int64 counts per
  (cell, weight class) — the two weights ``1/p`` and ``1/(p·q)`` are
  applied once at the end (:func:`~repro.core.sampling_kernels.ews_grid`).
* ``backend="columnar"`` — the vectorized kernel
  (:func:`~repro.core.sampling_kernels.ews_columnar_counts`), which
  draws the same RNG stream and feeds the same tally → grid reduction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

import numpy as np

from repro.core.counters import MotifCounts
from repro.core.sampling_kernels import (
    TRIPLE_CELL_TABLE,
    ews_grid,
    second_edge_code,
    third_edge_code,
    wedge_node,
)
from repro.errors import ValidationError
from repro.graph.temporal_graph import OUT, TemporalGraph


def _later_incident_edges(
    graph: TemporalGraph,
    nodes: Tuple[int, ...],
    t_after: float,
    eid_after: int,
    t_limit: float,
) -> List[Tuple[float, int, int, int]]:
    """Edges incident to ``nodes`` strictly after (t_after, eid_after).

    Returns (t, eid, src, dst) tuples in canonical order, within the δ
    limit.  Edges touching two of the query nodes are reported once.
    """
    found: Dict[int, Tuple[float, int, int, int]] = {}
    for node in nodes:
        seq = graph.node_sequence(node)
        times = seq.times
        dirs = seq.dirs
        nbrs = seq.nbrs
        eids = seq.eids
        lo = bisect_left(times, t_after)
        for k in range(lo, len(times)):
            tk = times[k]
            if tk > t_limit:
                break
            eid = eids[k]
            if (tk, eid) <= (t_after, eid_after) or eid in found:
                continue
            if dirs[k] == OUT:
                found[eid] = (tk, eid, node, nbrs[k])
            else:
                found[eid] = (tk, eid, nbrs[k], node)
    return sorted(found.values(), key=lambda e: e[1])


def _ews_python_counts(
    graph: TemporalGraph,
    delta: float,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference tallies: int64 (pair, wedge) occurrence grids."""
    src = graph.sources.tolist()
    dst = graph.destinations.tolist()
    t = graph.timestamps.tolist()
    m = graph.num_edges
    pair_counts = np.zeros(36, dtype=np.int64)
    wedge_counts = np.zeros(36, dtype=np.int64)

    anchors = np.nonzero(rng.random(m) < p)[0] if p < 1 else np.arange(m)
    table = TRIPLE_CELL_TABLE
    for a in anchors.tolist():
        ta = t[a]
        limit = ta + delta
        ua, va = src[a], dst[a]
        seconds = _later_incident_edges(graph, (ua, va), ta, a, limit)
        for tb, b, ub, vb in seconds:
            code2 = second_edge_code(ua, va, ub, vb)
            is_wedge = code2 >= 2
            if is_wedge and q < 1 and rng.random() >= q:
                continue
            w = wedge_node(code2, ub, vb)
            bound = (ua, va) if w < 0 else (ua, va, w)
            counts = wedge_counts if is_wedge else pair_counts
            base = code2 * 16
            for _, _, uc, vc in _later_incident_edges(graph, bound, tb, b, limit):
                cell = table[base + third_edge_code(ua, va, w, uc, vc)]
                if cell >= 0:
                    counts[cell] += 1
    return pair_counts, wedge_counts


def ews_count(
    graph: TemporalGraph,
    delta: float,
    *,
    p: float = 0.01,
    q: float = 1.0,
    seed: int = 0,
    backend: str = "python",
) -> MotifCounts:
    """Estimate all 36 motif counts by edge/wedge sampling.

    Parameters
    ----------
    p:
        Anchor (first-edge) sampling probability in ``(0, 1]``.
    q:
        Wedge sampling probability in ``(0, 1]`` applied to second
        edges that introduce a third node.
    seed:
        RNG seed for both samplers.
    backend:
        ``"python"`` (generator walk) or ``"columnar"`` (vectorized
        kernel over the columnar store).  Same draws, same canonical
        tally reduction — the estimate is bit-identical either way.
    """
    for name, prob in (("p", p), ("q", q)):
        if not 0 < prob <= 1:
            raise ValidationError(f"{name} must be in (0, 1], got {prob}")
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if backend not in ("python", "columnar"):
        raise ValidationError(
            f"backend must be 'python' or 'columnar', got {backend!r}"
        )

    if graph.num_edges == 0:
        return MotifCounts(np.zeros((6, 6)), algorithm="ews", delta=delta)
    if backend == "columnar":
        from repro.core.sampling_kernels import ews_columnar_counts

        pair_counts, wedge_counts = ews_columnar_counts(
            graph, delta, p=p, q=q, seed=seed
        )
    else:
        rng = np.random.default_rng(seed)
        pair_counts, wedge_counts = _ews_python_counts(graph, delta, p, q, rng)
    return MotifCounts(
        ews_grid(pair_counts, wedge_counts, p, q), algorithm="ews", delta=delta
    )
