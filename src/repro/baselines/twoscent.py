"""2SCENT — enumeration of simple temporal cycles.

The baseline of Kumar & Calders (PVLDB 2018).  2SCENT enumerates every
*simple temporal cycle*: a sequence of edges with strictly increasing
times, each edge starting where the previous one ended, returning to
the root node, visiting no node twice, and spanning at most δ.  Within
the paper's evaluation it is used as **2SCENT-Tri**, counting only the
cyclic triangle motif ``M26`` — "2SCENT can only detect the triangle
motif M26" (§V-E).

Structure mirrors the original's two phases:

1. **Source detection** — the defining (and expensive) phase of
   2SCENT: a single *backward* pass over all edges maintains, per
   node, a bounded summary of which potential root nodes are reachable
   through time-increasing paths and by when (the original uses bloom
   filters; here a capped dict per node that saturates to a wildcard,
   keeping the filter conservative — false positives possible, false
   negatives never).  Every temporal edge pays the summary-merge cost
   whether or not any cycle exists, which is why 2SCENT's runtime on
   the paper's bipartite datasets (zero cycles possible) is still
   minutes — and why FAST-Tri beats it there by 84×.
2. **Constrained DFS** from each surviving root edge, extending along
   strictly increasing (t, edge-id) order, pruning on the δ budget and
   the simple-path property, and emitting a cycle whenever an edge
   closes back to the root.

Enumeration is Θ(#cycles + exploration): every instance is touched
individually, which is why FAST-Tri — whose counters batch instances —
dominates it on cycle-dense graphs (up to 164× in Table III).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.graph.temporal_graph import OUT, TemporalGraph

#: Per-node summary capacity before the filter saturates to a wildcard
#: (the bloom-filter capacity analogue of the original).
SUMMARY_CAPACITY = 64

#: Wildcard marker: the node's summary overflowed; treat every root as
#: possibly reachable (conservative, like a saturated bloom filter).
_WILDCARD = None


def detect_sources(graph: TemporalGraph, delta: float) -> List[Set[int]]:
    """2SCENT Phase 1: per-edge root-candidate filters.

    Processes edges in reverse canonical order, maintaining for every
    node ``v`` a summary ``S(v)``: the set of nodes reachable from
    ``v`` along strictly time-increasing paths that start within the
    next δ — capped at :data:`SUMMARY_CAPACITY` entries, after which
    the summary saturates to a wildcard.

    Returns, for each edge id ``(u, v, t)``, the candidate-root filter
    for DFS seeds: the set of nodes reachable from ``v`` after ``t``
    (or ``None`` for saturated/wildcard).  An edge can only start a
    cycle rooted at ``u`` if ``u`` is in its filter.
    """
    # summary: node -> ({reachable node -> earliest usable time} | wildcard)
    summaries: List[Optional[Dict[int, float]]] = [
        {} for _ in range(graph.num_nodes)
    ]
    src, dst, times = graph.edge_lists()
    m = graph.num_edges
    filters: List[Optional[Set[int]]] = [None] * m
    for eid in range(m - 1, -1, -1):
        u, v, t = src[eid], dst[eid], times[eid]
        s_v = summaries[v]
        # The filter for this edge: whatever is currently reachable
        # from v using edges strictly after t (within t + delta).
        if s_v is _WILDCARD:
            filters[eid] = None
        else:
            reachable = {v}
            limit = t + delta
            for node, earliest in s_v.items():
                if earliest <= limit:
                    reachable.add(node)
            filters[eid] = reachable
        # Propagate v's summary (plus v itself) into u's: any combined
        # path through this edge starts at time t.  Whether the tail
        # actually continues after t is not tracked — that can only
        # create false positives, never false negatives, keeping the
        # filter sound.
        s_u = summaries[u]
        if s_u is not _WILDCARD:
            if t < s_u.get(v, t + 1):
                s_u[v] = t
            if s_v is _WILDCARD:
                summaries[u] = _WILDCARD
            else:
                for node in s_v:
                    if t < s_u.get(node, t + 1):
                        s_u[node] = t
                if len(s_u) > SUMMARY_CAPACITY:
                    summaries[u] = _WILDCARD
    return filters


def enumerate_cycles(
    graph: TemporalGraph,
    delta: float,
    max_length: Optional[int] = None,
    min_length: int = 2,
) -> Iterator[Tuple[int, ...]]:
    """Enumerate simple temporal cycles of ``min_length..max_length`` edges.

    ``max_length=None`` enumerates cycles of *every* length — the real
    2SCENT's behaviour, bounded only by the δ window and the
    simple-path property.  Yields tuples of canonical edge ids.  Each
    cycle is reported once, rooted at its first (canonically earliest)
    edge.
    """
    if delta < 0:
        raise ValidationError(f"delta must be non-negative, got {delta}")
    if min_length < 2:
        raise ValidationError("temporal cycles need at least 2 edges")
    if max_length is not None and max_length < min_length:
        raise ValidationError("max_length must be >= min_length")

    src, dst, t = graph.edge_lists()
    m = graph.num_edges

    # Phase 1: every edge pays the source-detection cost, cycles or not.
    filters = detect_sources(graph, delta)

    for eid in range(m):
        root = src[eid]
        node = dst[eid]
        t0 = t[eid]
        limit = t0 + delta
        candidate_roots = filters[eid]
        if candidate_roots is not None and root not in candidate_roots:
            continue
        yield from _dfs(
            graph, root, node, (eid,), t0, eid, limit,
            {root, node}, max_length, min_length,
        )


def _dfs(
    graph: TemporalGraph,
    root: int,
    node: int,
    path: Tuple[int, ...],
    t_prev: float,
    eid_prev: int,
    limit: float,
    visited: set,
    max_length: Optional[int],
    min_length: int,
) -> Iterator[Tuple[int, ...]]:
    seq = graph.node_sequence(node)
    times = seq.times
    nbrs = seq.nbrs
    dirs = seq.dirs
    eids = seq.eids
    depth = len(path)
    lo = bisect_left(times, t_prev)
    for k in range(lo, len(times)):
        tk = times[k]
        if tk > limit:
            break
        if dirs[k] != OUT:
            continue
        eid = eids[k]
        if (tk, eid) <= (t_prev, eid_prev):
            continue
        nbr = nbrs[k]
        if nbr == root:
            if depth + 1 >= min_length:
                yield path + (eid,)
            continue
        if (max_length is not None and depth + 1 >= max_length) or nbr in visited:
            continue
        visited.add(nbr)
        yield from _dfs(
            graph, root, nbr, path + (eid,), tk, eid, limit,
            visited, max_length, min_length,
        )
        visited.discard(nbr)


def twoscent_count_cycles(
    graph: TemporalGraph,
    delta: float,
    length: int = 3,
    enumerate_all_lengths: bool = False,
) -> int:
    """Count simple temporal cycles of exactly ``length`` edges.

    ``length=3`` (the default) is the paper's 2SCENT-Tri: the count of
    motif ``M26``.  With ``enumerate_all_lengths=True`` the run
    enumerates cycles of every length — as the original does — and
    filters to ``length`` afterwards; this is the configuration the
    benchmark harness times, because the paper ran the unmodified
    enumerator.
    """
    max_length = None if enumerate_all_lengths else length
    return sum(
        1
        for cycle in enumerate_cycles(graph, delta, max_length=max_length, min_length=length)
        if len(cycle) == length
    )


def twoscent_count(
    graph: TemporalGraph,
    delta: float,
    *,
    enumerate_all_lengths: bool = False,
) -> "MotifCounts":
    """2SCENT-Tri as a grid result: the M26 count in a ``MotifCounts``.

    2SCENT can only detect the cyclic triangle motif M26 (§V-E), so
    every other cell is zero; the registry adapter uses this wrapper so
    2SCENT is interchangeable with the full-grid algorithms.
    """
    from repro.core.counters import MotifCounts

    cycles = twoscent_count_cycles(
        graph, delta, length=3, enumerate_all_lengths=enumerate_all_lengths
    )
    return MotifCounts.from_dict(
        {"M26": cycles},
        algorithm="twoscent",
        delta=delta,
        meta={"coverage": "M26 only; all other cells are uncounted, not zero"},
    )
