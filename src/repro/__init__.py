"""HARE/FAST: scalable exact temporal motif counting.

A faithful, pure-Python reproduction of *"Scalable Motif Counting for
Large-scale Temporal Graphs"* (Gao, Cheng, Yu, Cao, Huang, Dong — ICDE
2022): the FAST-Star and FAST-Tri exact counting algorithms, the HARE
hierarchical parallel framework, and the full set of baselines and
experiments from the paper's evaluation.

Quickstart
----------
Every counting backend — FAST/HARE and the paper's five baselines —
is reachable through one registry-dispatched entry point:

>>> from repro import TemporalGraph, count_motifs, available_algorithms
>>> available_algorithms()
('fast', 'ex', 'bruteforce', 'bt', 'twoscent', 'bts', 'ews')
>>> g = TemporalGraph([(0, 1, 4), (0, 1, 8), (2, 0, 9)])
>>> counts = count_motifs(g, delta=10)          # FAST (exact, default)
>>> counts["M63"]
1

Sampling estimators return the same :class:`MotifCounts` shape with
uncertainty attached — replicate averaging fills a ``stderr`` grid and
per-motif confidence intervals:

>>> est = count_motifs(g, delta=10, algorithm="ews", p=1.0, n_samples=3)
>>> est.is_exact
False
>>> lo, hi = est.confidence_interval("M63")     # 95% CI

Multi-δ / multi-algorithm batches go through one call:

>>> sweep = count_motifs_sweep(g, deltas=[5, 10], algorithms=["fast", "ex"])
>>> sweep.get("ex", 10)["M63"]
1

Temporal graphs are naturally streams: the incremental engine counts
over a sliding window without ever recounting from scratch, emitting
checkpoints that are bit-identical to a batch recount of the live set:

>>> from repro import stream_motifs
>>> edges = [(0, 1, 4), (0, 1, 8), (2, 0, 9)]
>>> [cp.counts.total() for cp in stream_motifs(edges, delta=10)]
[1]

Adding a backend is one decorated function — see
:func:`repro.core.registry.register_algorithm` and docs/extending.md.
"""

from repro.core.api import count_motifs, count_motifs_sweep, stream_motifs, SweepResult
from repro.core.registry import (
    AlgorithmSpec,
    CountRequest,
    StreamRequest,
    available_algorithms,
    open_stream,
    register_algorithm,
    streaming_algorithms,
)
from repro.core.streaming import Checkpoint, StreamingMotifEngine
from repro.graph.stream_store import StreamingEdgeStore
from repro.graph.shared import attach_graph, publish_graph
from repro.parallel.pool import WorkerPool
from repro.core.counters import MotifCounts, PairCounter, StarCounter, TriangleCounter
from repro.core.motifs import ALL_MOTIFS, GRID, MOTIFS_BY_NAME, Motif, MotifCategory
from repro.core.patterns import HIGHER_ORDER_PATTERNS, count_higher_order
from repro.core.serialize import load_counts, save_counts
from repro.analysis import motif_significance, time_shuffled_null
from repro.graph.temporal_graph import IN, OUT, TemporalEdge, TemporalGraph
from repro.graph.edgelist import load_edgelist, save_edgelist
from repro.graph.datasets import dataset_names, load_dataset
from repro.errors import (
    DatasetError,
    GraphFormatError,
    ParallelExecutionError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "count_motifs",
    "count_motifs_sweep",
    "stream_motifs",
    "SweepResult",
    "CountRequest",
    "StreamRequest",
    "Checkpoint",
    "StreamingMotifEngine",
    "StreamingEdgeStore",
    "WorkerPool",
    "publish_graph",
    "attach_graph",
    "open_stream",
    "streaming_algorithms",
    "AlgorithmSpec",
    "register_algorithm",
    "available_algorithms",
    "count_higher_order",
    "HIGHER_ORDER_PATTERNS",
    "motif_significance",
    "time_shuffled_null",
    "save_counts",
    "load_counts",
    "MotifCounts",
    "PairCounter",
    "StarCounter",
    "TriangleCounter",
    "ALL_MOTIFS",
    "GRID",
    "MOTIFS_BY_NAME",
    "Motif",
    "MotifCategory",
    "IN",
    "OUT",
    "TemporalEdge",
    "TemporalGraph",
    "load_edgelist",
    "save_edgelist",
    "dataset_names",
    "load_dataset",
    "DatasetError",
    "GraphFormatError",
    "ParallelExecutionError",
    "ReproError",
    "ValidationError",
    "__version__",
]
