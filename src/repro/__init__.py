"""HARE/FAST: scalable exact temporal motif counting.

A faithful, pure-Python reproduction of *"Scalable Motif Counting for
Large-scale Temporal Graphs"* (Gao, Cheng, Yu, Cao, Huang, Dong — ICDE
2022): the FAST-Star and FAST-Tri exact counting algorithms, the HARE
hierarchical parallel framework, and the full set of baselines and
experiments from the paper's evaluation.

Quickstart
----------
>>> from repro import TemporalGraph, count_motifs
>>> g = TemporalGraph([(0, 1, 4), (0, 1, 8), (2, 0, 9)])
>>> counts = count_motifs(g, delta=10)
>>> counts["M63"]
1
"""

from repro.core.api import count_motifs
from repro.core.counters import MotifCounts, PairCounter, StarCounter, TriangleCounter
from repro.core.motifs import ALL_MOTIFS, GRID, MOTIFS_BY_NAME, Motif, MotifCategory
from repro.core.patterns import HIGHER_ORDER_PATTERNS, count_higher_order
from repro.core.serialize import load_counts, save_counts
from repro.analysis import motif_significance, time_shuffled_null
from repro.graph.temporal_graph import IN, OUT, TemporalEdge, TemporalGraph
from repro.graph.edgelist import load_edgelist, save_edgelist
from repro.graph.datasets import dataset_names, load_dataset
from repro.errors import (
    DatasetError,
    GraphFormatError,
    ParallelExecutionError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "count_motifs",
    "count_higher_order",
    "HIGHER_ORDER_PATTERNS",
    "motif_significance",
    "time_shuffled_null",
    "save_counts",
    "load_counts",
    "MotifCounts",
    "PairCounter",
    "StarCounter",
    "TriangleCounter",
    "ALL_MOTIFS",
    "GRID",
    "MOTIFS_BY_NAME",
    "Motif",
    "MotifCategory",
    "IN",
    "OUT",
    "TemporalEdge",
    "TemporalGraph",
    "load_edgelist",
    "save_edgelist",
    "dataset_names",
    "load_dataset",
    "DatasetError",
    "GraphFormatError",
    "ParallelExecutionError",
    "ReproError",
    "ValidationError",
    "__version__",
]
