"""Temporal-graph substrate: data structures, IO, generators, datasets.

This subpackage is the foundation every counting algorithm builds on.
The central type is :class:`~repro.graph.temporal_graph.TemporalGraph`,
which stores a multiset of directed timestamped edges and exposes the
two access paths the paper's algorithms need:

* the per-node, time-ordered edge sequence ``S_u`` of Table I, via
  :meth:`~repro.graph.temporal_graph.TemporalGraph.node_sequence`, and
* the per-pair timeline ``E(v, w)`` used by FAST-Tri, via
  :meth:`~repro.graph.temporal_graph.TemporalGraph.pair_timeline`.

``TemporalGraph`` is immutable; the streaming workloads use the
mutable, appendable/evictable
:class:`~repro.graph.stream_store.StreamingEdgeStore`, which hands
immutable time-slice graphs back to the counting kernels.
"""

from repro.graph.temporal_graph import (
    IN,
    OUT,
    NodeSequence,
    TemporalEdge,
    TemporalGraph,
)
from repro.graph.stream_store import StreamingEdgeStore
from repro.graph.edgelist import load_edgelist, save_edgelist
from repro.graph.statistics import GraphStatistics, compute_statistics
from repro.graph import generators
from repro.graph.datasets import DatasetSpec, dataset_names, load_dataset

__all__ = [
    "IN",
    "OUT",
    "NodeSequence",
    "TemporalEdge",
    "TemporalGraph",
    "StreamingEdgeStore",
    "load_edgelist",
    "save_edgelist",
    "GraphStatistics",
    "compute_statistics",
    "generators",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
]
