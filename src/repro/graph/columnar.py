"""Columnar (structure-of-arrays) view of a temporal graph.

The paper's scalability claim rests on contiguous, timestamp-sorted
edge arrays: Algorithm 1's window scan is a pointer sweep and
Algorithm 2's pair-timeline slice is a binary search, both of which are
memory-bandwidth problems, not pointer-chasing problems.  The
pure-Python :class:`~repro.graph.temporal_graph.NodeSequence` view pays
interpreter overhead per edge; this module lays the same three views
out as parallel NumPy arrays so the vectorized kernels in
:mod:`repro.core.columnar_kernels` can process *every* center's windows
in a handful of array operations.

Three array families, all derived once and cached on the graph:

**Edge columns** (canonical order, i.e. sorted by ``(t, input pos)``)
    ``src``, ``dst`` (int64 internal node ids) and ``t`` (int64 or
    float64).  Because edges are timestamp-sorted, the canonical edge
    id doubles as a time rank: for any threshold ``x``,
    ``eid < searchsorted(t, x)`` ⟺ ``t[eid] < x``, and canonical-id
    comparison implements the repository's tie-break rule exactly.
    :meth:`ColumnarGraph.window` exploits this for O(log m) δ-window
    slicing.

**Incidence CSR** (the columnar ``S_u`` of Table I)
    One row per node: ``inc_indptr[u]:inc_indptr[u+1]`` indexes into
    ``inc_nbr`` / ``inc_dir`` / ``inc_eid`` / ``inc_time``, the node's
    incident edges in canonical order with directions expressed
    relative to the center.  :meth:`ColumnarGraph.node_slice` returns
    zero-copy views.

**Pair CSR** (the columnar ``E(v, w)`` of §IV-B)
    Edges grouped by unordered endpoint pair, each group in canonical
    order, with directions normalised to the smaller internal id
    (matching :meth:`TemporalGraph.pair_timeline`).  Groups are keyed
    by ``min*n + max`` and located by binary search over the sorted
    unique keys.

The kernels additionally need rank queries ("how many incident edges
of center *u* lie before position *p* with neighbour *v* and direction
*d*?").  Those are answered with the *composite key* arrays also built
here: sort ``group_key * (N+1) + position`` once, then any such rank is
one ``searchsorted`` — vectorizable over millions of queries at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.temporal_graph import TemporalGraph


class ColumnarGraph:
    """Read-only columnar companion of one :class:`TemporalGraph`.

    Construction is O(m log m) (a few sorts); every array is stored
    exactly once and shared copy-on-write across forked HARE workers.
    Do not instantiate directly — use
    :meth:`TemporalGraph.columnar`, which caches the instance.
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "src",
        "dst",
        "t",
        "inc_indptr",
        "inc_time",
        "inc_nbr",
        "inc_dir",
        "inc_eid",
        "inc_cum_in",
        "inc_row",
        "inc_row_key",
        "grp_id",
        "grp_order",
        "grp_inv",
        "grp_rank_key",
        "grp_cum_in",
        "delta_cache",
        "pair_keys",
        "pair_indptr",
        "pair_time",
        "pair_dir",
        "pair_eid",
        "pair_cum_in",
        "pair_rank_key",
        "pair_bloom",
        "pair_bloom_bits",
    )

    #: Fibonacci-hash multiplier for pair keys.
    _BLOOM_MULT = np.uint64(0x9E3779B97F4A7C15)

    def __init__(self, graph: "TemporalGraph") -> None:
        n = graph.num_nodes
        m = graph.num_edges
        src = graph.sources
        dst = graph.destinations
        t = graph.timestamps
        self.num_nodes = n
        self.num_edges = m
        self.src = src
        self.dst = dst
        self.t = t

        # -- incidence CSR ------------------------------------------------
        # Each edge contributes two incidence entries: (center=src, OUT)
        # and (center=dst, IN).  Group by center, keep canonical (eid)
        # order inside each group.
        eids = np.arange(m, dtype=np.int64)
        center = np.concatenate((src, dst))
        nbr = np.concatenate((dst, src))
        # OUT == 0, IN == 1 (repro.graph.temporal_graph.OUT/IN).
        direction = np.concatenate(
            (np.zeros(m, dtype=np.int64), np.ones(m, dtype=np.int64))
        )
        eid2 = np.concatenate((eids, eids))
        order = np.lexsort((eid2, center))
        center = center[order]
        self.inc_nbr = nbr[order]
        self.inc_dir = direction[order]
        self.inc_eid = eid2[order]
        self.inc_time = t[self.inc_eid]
        counts = np.bincount(center, minlength=n) if m else np.zeros(n, dtype=np.int64)
        self.inc_indptr = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        )
        # Prefix sum of IN entries: #IN among positions [0, p).
        self.inc_cum_in = np.concatenate(
            ([0], np.cumsum(self.inc_dir, dtype=np.int64))
        )
        # Center id per incidence position, and the row-composite key
        # `center * (m+1) + eid`.  Positions are grouped by center with
        # eids ascending inside each row, so the composite is globally
        # sorted as built: "number of entries of row u with eid < e" is
        # one searchsorted probe — the δ-window-end primitive.
        self.inc_row = center
        self.inc_row_key = center * np.int64(m + 1) + self.inc_eid
        # Group view: incidence entries re-sorted by (center, neighbour)
        # with positions ascending inside each group — the multi-edge
        # bundles E(u, v) seen from u.  The star kernel anchors its
        # whole enumeration on same-group pairs, and answers Algorithm
        # 1's min/mout hash-map lookups as rank differences in this
        # ordering (grp_inv maps a position to its slot; grp_rank_key
        # locates an arbitrary position bound inside a group with one
        # searchsorted probe; grp_cum_in splits slot ranges by
        # direction).  Groups get *dense* ids so the composite rank key
        # stays far below int64 range even at n ~ 10^7 nodes (a raw
        # center*n+nbr key squared against 2m would overflow).
        total = 2 * m
        gkey = center * np.int64(max(n, 1)) + self.inc_nbr
        self.grp_order = np.argsort(gkey, kind="stable")
        self.grp_inv = np.empty(total, dtype=np.int64)
        self.grp_inv[self.grp_order] = np.arange(total, dtype=np.int64)
        sorted_gkey = gkey[self.grp_order]
        if total:
            new_group = np.concatenate(
                ([True], sorted_gkey[1:] != sorted_gkey[:-1])
            )
            dense_sorted = np.cumsum(new_group, dtype=np.int64) - 1
        else:
            dense_sorted = np.zeros(0, dtype=np.int64)
        self.grp_id = np.empty(total, dtype=np.int64)
        self.grp_id[self.grp_order] = dense_sorted
        self.grp_rank_key = dense_sorted * np.int64(total + 1) + self.grp_order
        self.grp_cum_in = np.concatenate(
            ([0], np.cumsum(self.inc_dir[self.grp_order], dtype=np.int64))
        )
        #: δ-keyed memo for kernel precomputations (window bounds, star
        #: prefix arrays); single-entry per kind, warmed before forking
        #: parallel workers so children share it copy-on-write.
        self.delta_cache: dict = {}

        # -- pair CSR -----------------------------------------------------
        lo_end = np.minimum(src, dst)
        hi_end = np.maximum(src, dst)
        key = lo_end * np.int64(max(n, 1)) + hi_end
        porder = np.argsort(key, kind="stable")  # stable keeps canonical order
        key_sorted = key[porder]
        self.pair_eid = eids[porder]
        self.pair_time = t[self.pair_eid]
        # Direction relative to the smaller internal id: OUT iff the
        # edge goes min -> max, matching TemporalGraph.pair_timeline.
        self.pair_dir = np.where(src < dst, 0, 1).astype(np.int64)[porder]
        if m:
            boundaries = np.flatnonzero(
                np.concatenate(([True], key_sorted[1:] != key_sorted[:-1]))
            )
            self.pair_keys = key_sorted[boundaries]
            self.pair_indptr = np.concatenate(
                (boundaries, [m])
            ).astype(np.int64)
        else:
            self.pair_keys = np.zeros(0, dtype=np.int64)
            self.pair_indptr = np.zeros(1, dtype=np.int64)
        self.pair_cum_in = np.concatenate(
            ([0], np.cumsum(self.pair_dir, dtype=np.int64))
        )
        # Composite rank key for the triangle kernel: pair-slot identity
        # scaled past the eid range plus the entry's canonical edge id.
        # Within a slot entries are eid-ascending, so this is globally
        # sorted by construction — no extra sort needed.
        slot_of_entry = (
            np.repeat(
                np.arange(len(self.pair_keys), dtype=np.int64),
                np.diff(self.pair_indptr),
            )
            if m
            else np.zeros(0, dtype=np.int64)
        )
        self.pair_rank_key = slot_of_entry * np.int64(m + 1) + self.pair_eid
        # Bloom prefilter for "does pair {a, b} exist at all?": one
        # gather instead of a binary search rejects the (typically vast)
        # majority of open wedges in the triangle kernel; false
        # positives fall through to the exact pair_keys search.  Sized
        # to ~8 slots per existing pair (load factor ~0.12) so the
        # false-positive rate stays low at any graph scale without
        # burning megabytes on tiny graphs.
        self.pair_bloom_bits = int(
            np.clip(np.ceil(np.log2(max(len(self.pair_keys), 1) * 8)), 10, 27)
        )
        self.pair_bloom = np.zeros(1 << self.pair_bloom_bits, dtype=bool)
        self.pair_bloom[self.bloom_hash(self.pair_keys)] = True

        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, np.ndarray):
                value.flags.writeable = False

    @classmethod
    def _attach(
        cls,
        arrays: "Mapping[str, np.ndarray]",
        scalars: "Mapping[str, object]",
    ) -> "ColumnarGraph":
        """Reassemble a store from pre-built arrays, without recomputing.

        The constructor behind :func:`repro.graph.shared.attach_graph`:
        ``arrays`` holds every ndarray slot (typically zero-copy views
        into a shared-memory segment) and ``scalars`` the remaining
        plain-value slots, exactly as another process's
        ``ColumnarGraph`` produced them.  ``delta_cache`` always starts
        empty — per-δ kernel tables are installed separately (see
        :func:`repro.core.columnar_kernels.install_delta_cache`) or
        rebuilt locally on first use.
        """
        col = object.__new__(cls)
        for name in cls.__slots__:
            if name == "delta_cache":
                col.delta_cache = {}
            elif name in arrays:
                setattr(col, name, arrays[name])
            else:
                setattr(col, name, scalars[name])
        return col

    # ------------------------------------------------------------------
    # window slicing and partition views
    # ------------------------------------------------------------------
    def window(self, t_lo: float, t_hi: float) -> Tuple[int, int]:
        """Edge-id bounds ``[lo, hi)`` of the window ``t_lo <= t <= t_hi``.

        O(log m) via :func:`np.searchsorted` over the timestamp-sorted
        edge columns — the δ-window primitive of §IV-A.  The half-open
        id range doubles as a partition boundary: canonical ids are
        time-ranked, so every δ-window is contiguous.
        """
        lo = int(np.searchsorted(self.t, t_lo, side="left"))
        hi = int(np.searchsorted(self.t, t_hi, side="right"))
        return lo, hi

    def edge_slice(
        self, lo: int, hi: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(src, dst, t)`` views of edge ids ``[lo, hi)``.

        Combined with :meth:`window` this gives partitions (time slabs,
        shards) a contiguous, copy-free view of their edges — the
        substrate any future multi-process or streaming decomposition
        slices on.
        """
        return self.src[lo:hi], self.dst[lo:hi], self.t[lo:hi]

    def node_slice(
        self, node: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(times, nbrs, dirs, eids)`` views of ``S_u``.

        The columnar equivalent of :meth:`TemporalGraph.node_sequence`;
        the four arrays are parallel and in canonical order.
        """
        lo, hi = self.inc_indptr[node], self.inc_indptr[node + 1]
        return (
            self.inc_time[lo:hi],
            self.inc_nbr[lo:hi],
            self.inc_dir[lo:hi],
            self.inc_eid[lo:hi],
        )

    def degrees(self) -> np.ndarray:
        """Temporal degrees as ``np.diff`` over the CSR offsets."""
        return np.diff(self.inc_indptr)

    def bloom_hash(self, keys: np.ndarray) -> np.ndarray:
        """Bloom slots of pair keys (Fibonacci hashing, top bits)."""
        return (keys.astype(np.uint64) * self._BLOOM_MULT) >> np.uint64(
            64 - self.pair_bloom_bits
        )

    def pair_slot(self, a: int, b: int) -> int:
        """Index of pair ``{a, b}`` into the pair CSR, or -1 if absent."""
        if a > b:
            a, b = b, a
        key = a * max(self.num_nodes, 1) + b
        slot = int(np.searchsorted(self.pair_keys, key))
        if slot < len(self.pair_keys) and self.pair_keys[slot] == key:
            return slot
        return -1

    def pair_slice(
        self, a: int, b: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(times, dirs, eids)`` views of ``E(a, b)``.

        The columnar equivalent of :meth:`TemporalGraph.pair_timeline`
        (same direction normalisation); empty views for missing pairs.
        """
        slot = self.pair_slot(a, b)
        if slot < 0:
            lo = hi = 0
        else:
            lo, hi = self.pair_indptr[slot], self.pair_indptr[slot + 1]
        return self.pair_time[lo:hi], self.pair_dir[lo:hi], self.pair_eid[lo:hi]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"pairs={len(self.pair_keys)})"
        )
