"""Shared-memory publication of graphs for persistent worker pools.

The HARE framework of §IV-C assumes OpenMP threads reading one shared
graph.  The fork-based executor approximates that with copy-on-write
pages, but copy-on-write is fork-only: spawn-created workers (the only
option on Windows and macOS defaults, and the safer option under
threads) would have to re-pickle and rebuild the whole graph per
request.  This module is the platform-neutral replacement: the owner
*publishes* a graph's columnar arrays into one
:mod:`multiprocessing.shared_memory` segment, and any process
*attaches* zero-copy NumPy views over the same physical pages.

Three layers, lowest first:

:func:`publish_arrays` / :func:`attach_arrays`
    Generic bundle of named arrays in one segment, described by a
    picklable :class:`ArrayBundleManifest` (name → dtype/shape/offset).

:func:`publish_graph` / :func:`attach_graph`
    A whole :class:`~repro.graph.temporal_graph.TemporalGraph`: the
    canonical edge columns plus (optionally) every array of its
    :class:`~repro.graph.columnar.ColumnarGraph`, reassembled on attach
    without any re-sorting or CSR rebuilding.

Lifecycle (see ``docs/architecture.md``)
    The **owner** calls :func:`publish_graph` (create + copy), ships
    the manifest to workers (it is tiny and picklable), and eventually
    calls :meth:`SharedGraph.unlink` — typically via
    :meth:`SharedGraph.close`, which both unmaps and unlinks.  Each
    **worker** calls :func:`attach_graph` (map, no copy) and
    :meth:`AttachedGraph.close` when evicting.  On POSIX the physical
    segment lives until the last mapping closes, so the owner may
    unlink while workers still compute on it.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graph.columnar import ColumnarGraph
from repro.graph.temporal_graph import TemporalGraph

#: Byte alignment of each array inside a segment (cache-line friendly).
_ALIGN = 64


class _QuietSharedMemory(shared_memory.SharedMemory):
    """A ``SharedMemory`` whose destructor tolerates live array views.

    NumPy views over ``shm.buf`` may legally outlive the handle object
    (the attachment holder is garbage-collected while a result array
    is still referenced); the stdlib destructor then raises
    ``BufferError`` from ``mmap.close`` into the "exception ignored"
    stderr stream.  Unmapping simply waits until the views die — not an
    error worth a traceback.
    """

    def __del__(self) -> None:
        try:
            super().__del__()
        except BufferError:
            pass


def _untracked_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker adoption.

    Python 3.13+ has ``track=False`` for attachments whose lifetime an
    owner manages explicitly, which is exactly our protocol (the
    publisher unlinks).  Earlier versions register attachments
    unconditionally (bpo-38119) — harmless here, because pool workers
    are children of the owner and therefore share its resource-tracker
    process: the duplicate registration collapses into the owner's
    entry and is cleared by the owner's ``unlink``.  (Attaching from a
    process tree that does not share the owner's tracker is outside
    this module's protocol on < 3.13.)
    """
    try:
        return _QuietSharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13 path, version-dependent
        return _QuietSharedMemory(name=name)


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArrayBundleManifest:
    """Picklable description of one published array bundle.

    ``segment`` names the shared-memory block; ``arrays`` locate each
    named array inside it; ``meta`` carries small picklable extras
    (graph sizes, δ values, ...).  A manifest is all a worker needs to
    attach — ship it over any IPC channel.
    """

    segment: str
    arrays: Tuple[ArraySpec, ...]
    meta: Tuple[Tuple[str, object], ...] = ()

    def metadata(self) -> Dict[str, object]:
        return dict(self.meta)


#: Every owner handle whose segment is still linked, weakly held.
#: Pure accounting — lifecycle stays with the handles/finalizers.  The
#: serving catalog (and its tests) audit this to prove that graph
#: reloads reap the previous generation's segments instead of leaking
#: ``/dev/shm`` until process exit.
_LIVE_SEGMENTS: "weakref.WeakSet" = weakref.WeakSet()


def live_segments() -> Tuple[str, ...]:
    """Names of the shm segments this process currently owns (sorted).

    A snapshot for leak audits: a segment leaves the moment its owner
    handle is closed or collected.  Only *owned* (published) segments
    count — read-only attachments are the attaching process's concern.
    """
    return tuple(sorted(
        handle.name for handle in list(_LIVE_SEGMENTS) if not handle.closed
    ))


class SharedArrays:
    """Owner handle of one published bundle: the segment plus manifest.

    ``close()`` unmaps *and* unlinks — the owner-side end-of-life call.
    A finalizer does the same at garbage collection / interpreter exit,
    so abandoned handles never leak ``/dev/shm`` segments.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: ArrayBundleManifest) -> None:
        self._shm = shm
        self.manifest = manifest
        self.nbytes = shm.size
        self._finalizer = weakref.finalize(self, _destroy_segment, shm)
        _LIVE_SEGMENTS.add(self)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        self._finalizer()
        _LIVE_SEGMENTS.discard(self)

    @property
    def closed(self) -> bool:
        """Whether the owner already unlinked this segment."""
        return not self._finalizer.alive

    @property
    def name(self) -> str:
        return self.manifest.segment

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArrays(segment={self.name!r}, nbytes={self.nbytes})"


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - live exports keep the mapping
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _publish_into_segment(
    arrays: Mapping[str, np.ndarray], meta: Optional[Mapping[str, object]]
) -> Tuple[shared_memory.SharedMemory, ArrayBundleManifest]:
    specs = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append(ArraySpec(name, arr.dtype.str, arr.shape, offset))
        offset += arr.nbytes
    shm = _QuietSharedMemory(create=True, size=max(offset, 1))
    try:
        for spec, arr in zip(specs, arrays.values()):
            arr = np.ascontiguousarray(arr)
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(spec.dtype), count=arr.size, offset=spec.offset
            )
            view[:] = arr.reshape(-1)
    except BaseException:
        _destroy_segment(shm)
        raise
    manifest = ArrayBundleManifest(
        segment=shm.name,
        arrays=tuple(specs),
        meta=tuple(sorted((meta or {}).items())),
    )
    return shm, manifest


def publish_arrays(
    arrays: Mapping[str, np.ndarray], meta: Optional[Mapping[str, object]] = None
) -> SharedArrays:
    """Copy named arrays into one new shared segment; return the handle.

    The single copy here is the *only* copy in the pool architecture:
    every worker attaches views over the same pages afterwards.
    """
    return SharedArrays(*_publish_into_segment(arrays, meta))


class AttachedArrays:
    """Worker-side view of a published bundle: zero-copy, read-only.

    Keep the instance alive as long as any of its ``arrays`` views is
    in use; ``close()`` unmaps (never unlinks — that is the owner's
    job) and is forgiving about views that still exist.
    """

    def __init__(self, manifest: ArrayBundleManifest) -> None:
        self.manifest = manifest
        self._shm = _untracked_attach(manifest.segment)
        self.arrays: Dict[str, np.ndarray] = {}
        for spec in manifest.arrays:
            count = int(np.prod(spec.shape)) if spec.shape else 1
            view = np.frombuffer(
                self._shm.buf, dtype=np.dtype(spec.dtype), count=count, offset=spec.offset
            ).reshape(spec.shape)
            view.flags.writeable = False
            self.arrays[spec.name] = view

    def close(self) -> None:
        """Unmap the segment (safe to call with views still alive)."""
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - caller still holds a view
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttachedArrays(segment={self.manifest.segment!r}, n={len(self.arrays)})"


# ----------------------------------------------------------------------
# whole-graph publication
# ----------------------------------------------------------------------

_EDGE_PREFIX = "edge."
_COL_PREFIX = "col."


class SharedGraph(SharedArrays):
    """Owner handle of one published graph (see :func:`publish_graph`)."""

    def __init__(
        self, shm: shared_memory.SharedMemory, manifest: ArrayBundleManifest
    ) -> None:
        super().__init__(shm, manifest)
        meta = manifest.metadata()
        self.num_nodes = meta["num_nodes"]
        self.num_edges = meta["num_edges"]
        self.has_columnar = meta["columnar_scalars"] is not None


def publish_graph(graph: TemporalGraph, *, include_columnar: bool = True) -> SharedGraph:
    """Publish a graph's arrays into shared memory; return the handle.

    Copies the canonical edge columns and, with ``include_columnar``
    (the default), every array of ``graph.columnar()`` — forcing the
    columnar build first if needed, so the O(m log m) construction
    happens exactly once, in the owner.  The handle's ``manifest`` is
    what workers feed to :func:`attach_graph`.
    """
    arrays: Dict[str, np.ndarray] = {
        _EDGE_PREFIX + "src": graph.sources,
        _EDGE_PREFIX + "dst": graph.destinations,
        _EDGE_PREFIX + "t": graph.timestamps,
    }
    columnar_scalars: Optional[Tuple[Tuple[str, object], ...]] = None
    if include_columnar:
        col = graph.columnar()
        scalars = []
        for name in ColumnarGraph.__slots__:
            if name == "delta_cache":
                continue
            value = getattr(col, name)
            if isinstance(value, np.ndarray):
                arrays[_COL_PREFIX + name] = value
            else:
                scalars.append((name, value))
        columnar_scalars = tuple(scalars)
    shm, manifest = _publish_into_segment(
        arrays,
        meta={
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "version": graph.version,
            "columnar_scalars": columnar_scalars,
        },
    )
    return SharedGraph(shm, manifest)


class AttachedGraph:
    """Worker-side reassembled graph over a shared segment.

    ``graph`` is a real :class:`TemporalGraph` whose edge columns (and
    cached ``ColumnarGraph``, when published) are zero-copy views into
    the shared pages; python-loop views (node sequences, pair index)
    are built lazily per process on first use.  ``close()`` drops the
    graph and unmaps.
    """

    def __init__(self, manifest: ArrayBundleManifest) -> None:
        self._attached = AttachedArrays(manifest)
        meta = manifest.metadata()
        arrays = self._attached.arrays
        self.graph = TemporalGraph.from_canonical_arrays(
            arrays[_EDGE_PREFIX + "src"],
            arrays[_EDGE_PREFIX + "dst"],
            arrays[_EDGE_PREFIX + "t"],
            num_nodes=int(meta["num_nodes"]),
        )
        scalars = meta["columnar_scalars"]
        if scalars is not None:
            col_arrays = {
                name[len(_COL_PREFIX):]: arr
                for name, arr in arrays.items()
                if name.startswith(_COL_PREFIX)
            }
            self.graph._columnar = ColumnarGraph._attach(col_arrays, dict(scalars))
            self.graph._columnar_version = self.graph.version

    def close(self) -> None:
        """Release the local mapping (the owner's segment is untouched)."""
        self.graph = None  # type: ignore[assignment]
        self._attached.close()


def attach_graph(manifest: ArrayBundleManifest) -> AttachedGraph:
    """Attach to a published graph; see :class:`AttachedGraph`.

    Raises :class:`~repro.errors.ValidationError` when the manifest
    does not describe a graph bundle (use :func:`attach_arrays` for raw
    bundles).
    """
    if _EDGE_PREFIX + "src" not in {spec.name for spec in manifest.arrays}:
        raise ValidationError(
            f"manifest for segment {manifest.segment!r} is not a graph bundle"
        )
    return AttachedGraph(manifest)


def attach_arrays(manifest: ArrayBundleManifest) -> AttachedArrays:
    """Attach to any published bundle; see :class:`AttachedArrays`."""
    return AttachedArrays(manifest)
