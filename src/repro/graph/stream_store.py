"""Appendable, evictable columnar edge store for streaming workloads.

The batch stack assumes a fully-materialised, pre-sorted graph:
:class:`~repro.graph.temporal_graph.TemporalGraph` is immutable and
:meth:`~repro.graph.temporal_graph.TemporalGraph.columnar` caches a
static structure-of-arrays view.  A stream of timestamped edges breaks
both assumptions — edges keep arriving (possibly slightly out of
order) and a sliding window keeps expiring them.  This module is the
mutable half of the layer split: :class:`StreamingEdgeStore` owns
*ingest* (append, evict, slice), while the counting kernels stay pure
functions over immutable slice graphs.

Layout
------
Live edges are held as **sorted runs** — LSM-style ring-buffer
segments.  Appends go to an unsorted tail buffer; flushing sorts the
tail by ``(t, arrival seq)`` into a new run, and when the run count
exceeds ``max_runs`` all runs are merged into one (lazy merging: the
cost is amortised, and slicing only ever binary-searches a handful of
runs).  Eviction advances a per-run head pointer — a ring-buffer
consume, with the storage compacted once more than half a run is dead
— so a sliding window is O(log r) bookkeeping per run, not an O(m)
rebuild.

Canonical order
---------------
Every edge gets a global **arrival sequence number**.  Slices are
materialised in arrival order, so a
:class:`~repro.graph.temporal_graph.TemporalGraph` built from a slice
sorts them by ``(t, arrival)`` — exactly the canonical ``(t, input
position)`` tie-break a batch build over the same edges would use.
That is what makes streaming counts *bit-identical* to batch recounts
(property-tested in ``tests/core/test_streaming.py``).

Node labels are interned to dense internal ids exactly like
``TemporalGraph`` does; slice graphs are built over internal ids and
:meth:`StreamingEdgeStore.live_edges` converts back to labels at the
API boundary.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

_SELF_LOOP_POLICIES = ("drop", "error")

#: Compact a run's storage once its dead prefix passes this fraction.
_COMPACT_FRACTION = 0.5


class _Run:
    """One immutable sorted segment: parallel arrays ordered by (t, seq).

    ``head`` is the index of the first *live* entry — eviction advances
    it instead of copying, and :meth:`compact` reclaims storage once
    the dead prefix dominates.
    """

    __slots__ = ("src", "dst", "t", "seq", "head")

    def __init__(self, src: np.ndarray, dst: np.ndarray, t: np.ndarray, seq: np.ndarray) -> None:
        self.src = src
        self.dst = dst
        self.t = t
        self.seq = seq
        self.head = 0

    def __len__(self) -> int:
        return len(self.t) - self.head

    def evict_before(self, cutoff: float) -> int:
        """Advance ``head`` past entries with ``t < cutoff``; return count."""
        new_head = int(np.searchsorted(self.t, cutoff, side="left"))
        evicted = max(new_head - self.head, 0)
        self.head = max(self.head, new_head)
        return evicted

    def compact(self) -> None:
        if self.head and self.head >= _COMPACT_FRACTION * len(self.t):
            self.src = self.src[self.head:].copy()
            self.dst = self.dst[self.head:].copy()
            self.t = self.t[self.head:].copy()
            self.seq = self.seq[self.head:].copy()
            self.head = 0

    def slice_bounds(self, t_lo: Optional[float], t_hi: Optional[float]) -> Tuple[int, int]:
        """Index range of live entries with ``t_lo <= t < t_hi``."""
        lo = self.head
        if t_lo is not None:
            lo = max(lo, int(np.searchsorted(self.t, t_lo, side="left")))
        hi = len(self.t)
        if t_hi is not None:
            hi = min(hi, int(np.searchsorted(self.t, t_hi, side="left")))
        return lo, max(hi, lo)


class StreamingEdgeStore:
    """Mutable columnar multiset of live temporal edges.

    Parameters
    ----------
    max_runs:
        Sorted-run count that triggers a full merge on the next flush
        (the lazy-merge knob; higher defers sort work, lower keeps
        slicing cheaper).
    on_self_loop:
        ``"drop"`` (default) or ``"error"`` — same policy and default
        as :class:`~repro.graph.temporal_graph.TemporalGraph`, so a
        batch rebuild of the live set sees the same edge multiset.

    Invariants
    ----------
    * ``watermark`` only advances; an arriving edge with
      ``t < watermark`` is *late* — outside the window by definition —
      and is dropped (counted in :attr:`num_dropped_late`).
    * ``num_seen == num_live + num_evicted`` at all times.
    * :attr:`version` bumps on every append/evict, so derived caches
      can detect staleness (the streaming analogue of
      :meth:`TemporalGraph.invalidate_caches
      <repro.graph.temporal_graph.TemporalGraph.invalidate_caches>`).
    """

    def __init__(self, *, max_runs: int = 8, on_self_loop: str = "drop") -> None:
        if max_runs < 1:
            raise ValidationError(f"max_runs must be >= 1, got {max_runs}")
        if on_self_loop not in _SELF_LOOP_POLICIES:
            raise ValidationError(
                f"on_self_loop must be one of {_SELF_LOOP_POLICIES}, got {on_self_loop!r}"
            )
        self._max_runs = max_runs
        self._on_self_loop = on_self_loop
        self._labels: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self._runs: List[_Run] = []
        self._tail_src: List[int] = []
        self._tail_dst: List[int] = []
        self._tail_t: List[float] = []
        self._tail_seq: List[int] = []
        self._next_seq = 0
        self._watermark: Optional[float] = None
        self._t_latest: Optional[float] = None
        self._num_evicted = 0
        self._num_dropped_late = 0
        self._num_self_loops_dropped = 0
        self._version = 0

    # ------------------------------------------------------------------
    # bookkeeping properties
    # ------------------------------------------------------------------
    @property
    def num_live(self) -> int:
        """Edges currently in the store (appended, not yet evicted)."""
        return sum(len(run) for run in self._runs) + len(self._tail_t)

    @property
    def num_seen(self) -> int:
        """Edges ever accepted (live + evicted; excludes drops)."""
        return self.num_live + self._num_evicted

    @property
    def num_evicted(self) -> int:
        """Edges removed by :meth:`evict_before`."""
        return self._num_evicted

    @property
    def num_dropped_late(self) -> int:
        """Arrivals rejected because ``t`` was below the watermark."""
        return self._num_dropped_late

    @property
    def num_self_loops_dropped(self) -> int:
        return self._num_self_loops_dropped

    @property
    def watermark(self) -> Optional[float]:
        """Low time bound of the live window (``None`` before any evict)."""
        return self._watermark

    @property
    def t_latest(self) -> Optional[float]:
        """Largest timestamp ever accepted (``None`` while empty)."""
        return self._t_latest

    @property
    def t_earliest(self) -> Optional[float]:
        """Smallest live timestamp (``None`` when no edges are live).

        O(runs + tail): run heads are sorted, the tail is scanned.
        Lets the engine skip expiry recounts when the window cutoff
        has not yet reached any live edge.
        """
        candidates = [float(run.t[run.head]) for run in self._runs if len(run)]
        if self._tail_t:
            candidates.append(float(min(self._tail_t)))
        return min(candidates) if candidates else None

    @property
    def num_nodes(self) -> int:
        """Distinct node labels ever interned (never shrinks)."""
        return len(self._labels)

    @property
    def version(self) -> int:
        """Monotone edit stamp; bumps on every append or eviction."""
        return self._version

    def __len__(self) -> int:
        return self.num_live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingEdgeStore(live={self.num_live}, runs={len(self._runs)}, "
            f"tail={len(self._tail_t)}, watermark={self._watermark})"
        )

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _intern(self, label: Hashable) -> int:
        idx = self._index.get(label)
        if idx is None:
            idx = len(self._labels)
            self._index[label] = idx
            self._labels.append(label)
        return idx

    def append(self, u: Hashable, v: Hashable, t: float) -> bool:
        """Ingest one edge; return whether it was accepted.

        Rejections: self-loops (per policy) and *late* edges whose
        timestamp is below the watermark — those are outside the live
        window by definition and accepting them would make the window
        semantics (and the incremental count diffs) unsound.
        """
        if not isinstance(t, (int, float, np.integer, np.floating)):
            raise ValidationError(f"timestamp must be numeric, got {t!r}")
        if isinstance(t, (float, np.floating)) and not math.isfinite(t):
            # NaN compares false against the watermark and infinities
            # break window arithmetic; neither can be a live edge.
            raise ValidationError(f"timestamp must be finite, got {t!r}")
        if u == v:
            if self._on_self_loop == "error":
                raise ValidationError(f"self-loop edge ({u!r}, {v!r}, {t!r})")
            self._num_self_loops_dropped += 1
            return False
        if self._watermark is not None and t < self._watermark:
            self._num_dropped_late += 1
            return False
        self._tail_src.append(self._intern(u))
        self._tail_dst.append(self._intern(v))
        self._tail_t.append(t)
        self._tail_seq.append(self._next_seq)
        self._next_seq += 1
        if self._t_latest is None or t > self._t_latest:
            self._t_latest = t
        self._version += 1
        return True

    def extend(self, edges: Iterable[Tuple[Hashable, Hashable, float]]) -> int:
        """Ingest a batch of ``(u, v, t)`` edges; return accepted count."""
        accepted = 0
        for record in edges:
            try:
                u, v, t = record
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    f"edge records must be (u, v, t) triples, got {record!r}"
                ) from exc
            if self.append(u, v, t):
                accepted += 1
        return accepted

    def _flush(self) -> None:
        """Sort the tail into a run; merge all runs past ``max_runs``."""
        if self._tail_t:
            seq = np.array(self._tail_seq, dtype=np.int64)
            t = np.array(self._tail_t)
            if not np.issubdtype(t.dtype, np.floating):
                t = t.astype(np.int64)
            order = np.lexsort((seq, t))
            self._runs.append(
                _Run(
                    np.array(self._tail_src, dtype=np.int64)[order],
                    np.array(self._tail_dst, dtype=np.int64)[order],
                    t[order],
                    seq[order],
                )
            )
            self._tail_src = []
            self._tail_dst = []
            self._tail_t = []
            self._tail_seq = []
        if len(self._runs) > self._max_runs:
            self._merge_runs()

    def _merge_runs(self) -> None:
        live = [run for run in self._runs if len(run)]
        if not live:
            self._runs = []
            return
        src = np.concatenate([run.src[run.head:] for run in live])
        dst = np.concatenate([run.dst[run.head:] for run in live])
        t = np.concatenate([run.t[run.head:] for run in live])
        seq = np.concatenate([run.seq[run.head:] for run in live])
        order = np.lexsort((seq, t))
        self._runs = [_Run(src[order], dst[order], t[order], seq[order])]

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict_before(self, cutoff: float) -> int:
        """Remove every live edge with ``t < cutoff``; return count.

        Advances the watermark to ``cutoff`` (watermarks never
        regress; an already-passed cutoff is a no-op) and compacts
        runs whose dead prefix grew past half their storage.
        """
        if self._watermark is not None and cutoff <= self._watermark:
            return 0
        self._flush()
        evicted = 0
        kept: List[_Run] = []
        for run in self._runs:
            evicted += run.evict_before(cutoff)
            if len(run):
                run.compact()
                kept.append(run)
        self._runs = kept
        self._watermark = cutoff
        if evicted:
            self._num_evicted += evicted
            self._version += 1
        return evicted

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-ready store bookkeeping for a streaming checkpoint.

        The live edges themselves travel separately (a packed canonical
        snapshot via :meth:`slice_arrays`); this is everything else a
        :meth:`restore` needs — the label table and the window/drop
        counters.  Arrival sequence numbers are deliberately absent:
        the canonical snapshot preserves equal-timestamp arrival order,
        so a restore may renumber from zero (seq is only ever a
        tie-break within one timestamp).
        """
        return {
            "labels": list(self._labels),
            "watermark": self._watermark,
            "t_latest": self._t_latest,
            "num_evicted": self._num_evicted,
            "num_dropped_late": self._num_dropped_late,
            "num_self_loops_dropped": self._num_self_loops_dropped,
            "version": self._version,
        }

    @classmethod
    def restore(
        cls,
        *,
        labels,
        src: np.ndarray,
        dst: np.ndarray,
        t: np.ndarray,
        watermark: Optional[float],
        t_latest: Optional[float],
        num_evicted: int = 0,
        num_dropped_late: int = 0,
        num_self_loops_dropped: int = 0,
        version: int = 0,
        max_runs: int = 8,
        on_self_loop: str = "drop",
    ) -> "StreamingEdgeStore":
        """Rebuild a store from a canonical snapshot + bookkeeping.

        ``src``/``dst``/``t`` are internal-id edge columns in canonical
        ``(t, arrival)`` order (what a checkpoint snapshot holds).  The
        restored store renumbers arrival sequences ``0..m-1`` in that
        order — equal-timestamp ties keep their relative arrival order,
        so every future slice, canonicalization, and count over the
        restored store is bit-identical to one over the original.
        Validation failures raise :class:`ValidationError`; the caller
        (the checkpoint layer) maps them to its typed corruption error.
        """
        store = cls(max_runs=max_runs, on_self_loop=on_self_loop)
        store._labels = list(labels)
        store._index = {label: i for i, label in enumerate(store._labels)}
        if len(store._index) != len(store._labels):
            raise ValidationError("restore: duplicate node labels in snapshot")
        src = np.ascontiguousarray(np.asarray(src, dtype=np.int64))
        dst = np.ascontiguousarray(np.asarray(dst, dtype=np.int64))
        t = np.ascontiguousarray(np.asarray(t))
        if not (len(src) == len(dst) == len(t)):
            raise ValidationError("restore: edge column lengths disagree")
        m = len(t)
        if m:
            if np.any(t[1:] < t[:-1]):
                raise ValidationError("restore: snapshot timestamps are not sorted")
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= len(store._labels):
                raise ValidationError(
                    f"restore: node ids outside the {len(store._labels)}-label table"
                )
            if watermark is not None and float(t[0]) < watermark:
                raise ValidationError(
                    "restore: live edge below the recorded watermark"
                )
            if t_latest is None or float(t[-1]) > t_latest:
                raise ValidationError(
                    "restore: live edge newer than the recorded t_latest"
                )
            store._runs = [_Run(src, dst, t, np.arange(m, dtype=np.int64))]
        store._next_seq = m
        # Keep the journal's numeric types: coercing an int watermark
        # to float would change resumed JSON output (120 vs 120.0) and
        # break bit-identical checkpoint comparisons.
        store._watermark = watermark
        store._t_latest = t_latest
        store._num_evicted = int(num_evicted)
        store._num_dropped_late = int(num_dropped_late)
        store._num_self_loops_dropped = int(num_self_loops_dropped)
        store._version = int(version)
        return store

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def slice_arrays(
        self, t_lo: Optional[float] = None, t_hi: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live edges with ``t_lo <= t < t_hi``, in arrival order.

        Returns parallel ``(src, dst, t)`` arrays of *internal* node
        ids.  ``None`` bounds are unbounded.  Arrival order means a
        ``TemporalGraph`` built from these arrays breaks timestamp
        ties exactly like a batch build over the same arrivals.
        """
        self._flush()
        pieces: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for run in self._runs:
            lo, hi = run.slice_bounds(t_lo, t_hi)
            if hi > lo:
                pieces.append((run.src[lo:hi], run.dst[lo:hi], run.t[lo:hi], run.seq[lo:hi]))
        if not pieces:
            empty_t = np.zeros(0, dtype=np.int64)
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), empty_t
        src = np.concatenate([p[0] for p in pieces])
        dst = np.concatenate([p[1] for p in pieces])
        t = np.concatenate([p[2] for p in pieces])
        seq = np.concatenate([p[3] for p in pieces])
        order = np.argsort(seq, kind="stable")
        return src[order], dst[order], t[order]

    def slice_graph(
        self, t_lo: Optional[float] = None, t_hi: Optional[float] = None
    ) -> TemporalGraph:
        """An immutable :class:`TemporalGraph` of one time slice.

        The graph's node labels are the store's internal ids (ints) —
        counting kernels are label-agnostic, so slices skip the
        re-interning cost.  Self-loops were already dropped at ingest.
        """
        src, dst, t = self.slice_arrays(t_lo, t_hi)
        return TemporalGraph.from_arrays(src.tolist(), dst.tolist(), t.tolist())

    def live_graph(self) -> TemporalGraph:
        """A :class:`TemporalGraph` of every live edge (arrival order)."""
        return self.slice_graph(None, None)

    def live_edges(self) -> List[Tuple[Hashable, Hashable, float]]:
        """Live ``(u, v, t)`` triples with original labels, arrival order.

        This is the batch-recount oracle: feeding the returned list to
        ``TemporalGraph`` reproduces the exact canonical order the
        streaming counts are defined over.
        """
        src, dst, t = self.slice_arrays(None, None)
        labels = self._labels
        return [
            (labels[s], labels[d], ts)
            for s, d, ts in zip(src.tolist(), dst.tolist(), t.tolist())
        ]
