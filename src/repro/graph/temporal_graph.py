"""The temporal graph data structure.

A temporal graph ``G = {V, E, T}`` (Definition 1 of the paper) is a
multiset of directed, timestamped edges ``(u, v, t)``.  This module
provides :class:`TemporalGraph`, an immutable, validated container that
precomputes exactly the two views the counting algorithms consume:

``S_u`` — the edge sequence of a center node ``u``
    Every edge incident to ``u``, each expressed as ``(t, v, dir)``
    where ``v`` is the node on the other side and ``dir`` says whether
    the edge points outward from or inward to ``u`` (Table I of the
    paper).  Sequences are sorted by the canonical total order described
    below.

``E(v, w)`` — the pair timeline
    Every edge between ``v`` and ``w`` regardless of direction, sorted
    by the same order, with the direction expressed relative to the pair.

Canonical edge order
--------------------
The paper assumes edges arrive in chronological order and treats
``t1 <= t2 <= ... <= tl``.  Equal timestamps make "chronological order"
ambiguous, so this implementation fixes a *total* order: edges are
sorted by ``(timestamp, input position)`` and then numbered ``0..m-1``.
Every algorithm in the repository — FAST, EX, BT, 2SCENT, the samplers
and the brute-force reference — breaks timestamp ties by this edge id,
which makes exact cross-algorithm comparisons well-defined even on
graphs with simultaneous edges.
"""

from __future__ import annotations

import math
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.columnar import ColumnarGraph

#: Direction flag: the edge points outward from the center node (u -> v).
OUT = 0
#: Direction flag: the edge points inward to the center node (v -> u).
IN = 1

_SELF_LOOP_POLICIES = ("drop", "error")


class TemporalEdge(NamedTuple):
    """A single directed timestamped edge ``(u, v, t)``.

    ``u`` and ``v`` are node labels (any hashable), ``t`` is the
    timestamp (int or float).
    """

    u: Hashable
    v: Hashable
    t: float


class NodeSequence:
    """The time-ordered edge sequence ``S_u`` of one center node.

    The three parallel lists hold, for each incident edge in canonical
    order: its timestamp, the internal id of the node on the other
    side, and its direction (:data:`OUT` or :data:`IN`) with respect to
    the center.  ``eids`` holds the canonical edge ids, which the
    samplers and the brute-force reference use for exact tie-breaking.
    """

    __slots__ = ("node", "times", "nbrs", "dirs", "eids")

    def __init__(self, node: int) -> None:
        self.node = node
        self.times: List[float] = []
        self.nbrs: List[int] = []
        self.dirs: List[int] = []
        self.eids: List[int] = []

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeSequence(node={self.node}, length={len(self)})"


class _IdentityIndex:
    """Label→id mapping for graphs whose labels *are* the internal ids.

    The canonical-array constructor adopts another graph's dense id
    columns, so its label mapping is the identity on ``0..n-1``.
    Materializing that as a real dict costs O(n) memory per process —
    exactly what zero-copy shared-memory workers must not pay — while
    this view answers the same lookups in O(1) and no space.
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def __getitem__(self, label: int) -> int:
        if isinstance(label, (int, np.integer)) and 0 <= label < self.n:
            return int(label)
        raise KeyError(label)

    def get(self, label, default=None):
        if isinstance(label, (int, np.integer)) and 0 <= label < self.n:
            return int(label)
        return default

    def __contains__(self, label) -> bool:
        return isinstance(label, (int, np.integer)) and 0 <= label < self.n

    def __len__(self) -> int:
        return self.n


class TemporalGraph:
    """An immutable directed temporal graph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v, t)`` triples.  ``u`` and ``v`` may be any
        hashable labels (ints, strings, ...); timestamps may be ints or
        floats.  Duplicate edges (same endpoints and timestamp) are
        legal and kept — they are distinct temporal edges.
    on_self_loop:
        ``"drop"`` (default) silently discards self-loops, matching the
        paper's datasets which contain none; ``"error"`` raises
        :class:`~repro.errors.ValidationError`.

    Notes
    -----
    Node labels are mapped to dense internal ids ``0..n-1`` in order of
    first appearance.  All algorithm-facing accessors speak internal
    ids; :meth:`label` and :meth:`index` convert at the API boundary.
    """

    def __init__(
        self,
        edges: Iterable[Tuple[Hashable, Hashable, float]],
        *,
        on_self_loop: str = "drop",
    ) -> None:
        if on_self_loop not in _SELF_LOOP_POLICIES:
            raise ValidationError(
                f"on_self_loop must be one of {_SELF_LOOP_POLICIES}, got {on_self_loop!r}"
            )
        self._labels: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        self.num_self_loops_dropped = 0

        srcs: List[int] = []
        dsts: List[int] = []
        times: List[float] = []
        for record in edges:
            try:
                u, v, t = record
            except (TypeError, ValueError) as exc:
                raise ValidationError(
                    f"edge records must be (u, v, t) triples, got {record!r}"
                ) from exc
            if not isinstance(t, (int, float, np.integer, np.floating)):
                raise ValidationError(f"timestamp must be numeric, got {t!r}")
            if isinstance(t, (float, np.floating)) and not math.isfinite(t):
                # NaN/inf poison the canonical sort and every δ-window
                # comparison; reject at construction like the parsers do.
                raise ValidationError(f"timestamp must be finite, got {t!r}")
            if u == v:
                if on_self_loop == "error":
                    raise ValidationError(f"self-loop edge ({u!r}, {v!r}, {t!r})")
                self.num_self_loops_dropped += 1
                continue
            srcs.append(self._intern(u))
            dsts.append(self._intern(v))
            times.append(t)

        order = sorted(range(len(times)), key=lambda i: (times[i], i))
        self._src = np.array([srcs[i] for i in order], dtype=np.int64)
        self._dst = np.array([dsts[i] for i in order], dtype=np.int64)
        ts = [times[i] for i in order]
        if all(isinstance(t, (int, np.integer)) for t in ts):
            self._t = np.array(ts, dtype=np.int64)
        else:
            self._t = np.array(ts, dtype=np.float64)

        self._version = 0
        self._sequences: Optional[List[NodeSequence]] = None
        self._pair_index: Optional[Dict[Tuple[int, int], Tuple[List[float], List[int], List[int]]]] = None
        self._edge_lists: Optional[Tuple[List[int], List[int], List[float]]] = None
        self._columnar: Optional["ColumnarGraph"] = None
        self._columnar_version = -1

    def _ensure_sequences(self) -> List[NodeSequence]:
        """Build the per-node ``S_u`` views lazily, on first access.

        Laziness matters for two reasons: columnar-only consumers (the
        vectorized kernels, shared-memory pool workers) never pay the
        O(m) Python loop, and the HARE fork path forces the build in
        the *parent* (see :func:`repro.parallel.executor.run_batches`)
        so children inherit it copy-on-write.
        """
        if self._sequences is None:
            self._rebuild_sequences()
        assert self._sequences is not None
        return self._sequences

    def _rebuild_sequences(self) -> None:
        self._sequences = [NodeSequence(u) for u in range(len(self._labels))]
        src_list = self._src.tolist()
        dst_list = self._dst.tolist()
        t_list = self._t.tolist()
        for eid in range(len(t_list)):
            s, d, t = src_list[eid], dst_list[eid], t_list[eid]
            seq = self._sequences[s]
            seq.times.append(t)
            seq.nbrs.append(d)
            seq.dirs.append(OUT)
            seq.eids.append(eid)
            seq = self._sequences[d]
            seq.times.append(t)
            seq.nbrs.append(s)
            seq.dirs.append(IN)
            seq.eids.append(eid)

    @property
    def version(self) -> int:
        """Monotone edit stamp of the edge columns.

        Starts at 0 and increases on every :meth:`invalidate_caches`
        call.  Derived views (the pair index, the plain-list edge view,
        the cached :class:`~repro.graph.columnar.ColumnarGraph`) record
        the version they were built at, so holding a stale reference
        across a mutation is detectable.
        """
        return self._version

    def invalidate_caches(self) -> None:
        """Drop every derived view after an in-place edge mutation.

        ``TemporalGraph`` is immutable through its public API, but code
        that owns the private edge columns (tests, subclasses, tooling
        that patches timestamps in place) historically could mutate them
        and keep receiving the *stale* cached ``ColumnarGraph`` — counts
        silently computed against the old edges.  This method is the
        sanctioned mutation protocol: after changing ``_src``/``_dst``/
        ``_t``, call it to drop every derived view (node sequences,
        the lazy pair index / edge lists / columnar store) and bump
        :attr:`version` so any cached-view holder can detect staleness.
        Mutations that never call it are still caught by the version
        stamp check inside :meth:`columnar`.
        """
        self._version += 1
        self._sequences = None
        self._pair_index = None
        self._edge_lists = None
        self._columnar = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _intern(self, label: Hashable) -> int:
        idx = self._index.get(label)
        if idx is None:
            idx = len(self._labels)
            self._index[label] = idx
            self._labels.append(label)
        return idx

    @classmethod
    def from_arrays(
        cls,
        src: Sequence[int],
        dst: Sequence[int],
        t: Sequence[float],
        **kwargs,
    ) -> "TemporalGraph":
        """Build a graph from three parallel arrays of equal length."""
        if not (len(src) == len(dst) == len(t)):
            raise ValidationError(
                f"parallel arrays must have equal lengths, got {len(src)}, {len(dst)}, {len(t)}"
            )
        return cls(zip(src, dst, t), **kwargs)

    @classmethod
    def from_canonical_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        t: np.ndarray,
        *,
        num_nodes: Optional[int] = None,
    ) -> "TemporalGraph":
        """Wrap already-canonical edge columns without copying or sorting.

        The zero-copy constructor behind the shared-memory attach path
        (:func:`repro.graph.shared.attach_graph`): ``src``/``dst`` must
        hold dense internal ids, ``t`` must already be sorted by the
        canonical ``(t, input position)`` order, and self-loops must
        already be gone — exactly the state of another graph's edge
        columns.  The arrays are adopted as-is (int64/time dtype views;
        no re-interning), so a graph built here over shared-memory
        views stays zero-copy.  Node labels are the internal ids
        themselves, served by O(1) identity views (``range`` /
        :class:`_IdentityIndex`) rather than materialized per process.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        t = np.asarray(t)
        if not (len(src) == len(dst) == len(t)):
            raise ValidationError(
                f"parallel arrays must have equal lengths, got {len(src)}, {len(dst)}, {len(t)}"
            )
        if np.issubdtype(t.dtype, np.floating) and not np.isfinite(t).all():
            # Same boundary rule as every other construction path: NaN
            # also defeats the sortedness check below (all comparisons
            # false), so it must be rejected first.
            raise ValidationError("timestamps must be finite")
        if len(t) and np.any(t[1:] < t[:-1]):
            raise ValidationError("timestamps are not in canonical (sorted) order")
        if len(src) and bool(np.any(src == dst)):
            raise ValidationError("canonical edge columns must not contain self-loops")
        n = int(num_nodes) if num_nodes is not None else (
            int(max(src.max(), dst.max())) + 1 if len(src) else 0
        )
        graph = cls.__new__(cls)
        graph._labels = range(n)  # identity labels, O(1) memory
        graph._index = _IdentityIndex(n)
        graph.num_self_loops_dropped = 0
        graph._src = src
        graph._dst = dst
        graph._t = t if np.issubdtype(t.dtype, np.floating) else t.astype(np.int64, copy=False)
        graph._version = 0
        graph._sequences = None
        graph._pair_index = None
        graph._edge_lists = None
        graph._columnar = None
        graph._columnar_version = -1
        return graph

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes that appear on at least one edge."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of temporal edges (a multiset count)."""
        return int(self._t.shape[0])

    @property
    def timestamps(self) -> np.ndarray:
        """All timestamps in canonical order (read-only view)."""
        view = self._t.view()
        view.flags.writeable = False
        return view

    @property
    def sources(self) -> np.ndarray:
        """Internal source ids in canonical order (read-only view)."""
        view = self._src.view()
        view.flags.writeable = False
        return view

    @property
    def destinations(self) -> np.ndarray:
        """Internal destination ids in canonical order (read-only view)."""
        view = self._dst.view()
        view.flags.writeable = False
        return view

    @property
    def time_span(self) -> float:
        """``max(t) - min(t)``, or 0 for graphs with fewer than two edges."""
        if self.num_edges < 2:
            return 0
        return self._t[-1] - self._t[0]

    def label(self, node: int) -> Hashable:
        """Return the original label of internal node id ``node``."""
        return self._labels[node]

    def index(self, label: Hashable) -> int:
        """Return the internal id of node ``label`` (KeyError if absent)."""
        return self._index[label]

    def degree(self, node: int) -> int:
        """Total number of temporal edges incident to ``node``.

        This is the temporal degree ``d_u = |S_u|`` of §IV-A (each
        multi-edge counts separately), the quantity HARE's scheduler
        balances on.
        """
        return len(self._ensure_sequences()[node])

    def degrees(self) -> np.ndarray:
        """Array of temporal degrees ``d_u`` indexed by internal node id.

        Computed vectorized (one :func:`np.bincount` over the edge
        columns) so schedulers and statistics never loop over nodes in
        Python.
        """
        if self.num_edges == 0:
            return np.zeros(self.num_nodes, dtype=np.int64)
        return (
            np.bincount(self._src, minlength=self.num_nodes)
            + np.bincount(self._dst, minlength=self.num_nodes)
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # algorithm-facing views
    # ------------------------------------------------------------------
    def node_sequence(self, node: int) -> NodeSequence:
        """Return ``S_u`` for internal node id ``node``.

        The returned object is shared, not copied; callers must not
        mutate it.
        """
        return self._ensure_sequences()[node]

    def sequences(self) -> List[NodeSequence]:
        """All node sequences, indexed by internal node id."""
        return self._ensure_sequences()

    def pair_timeline(self, a: int, b: int) -> Tuple[List[float], List[int], List[int]]:
        """Return ``E(a, b)``: all edges between ``a`` and ``b``.

        Returns three parallel lists ``(times, dirs, eids)`` in canonical
        order, where ``dirs[k]`` is :data:`OUT` if the edge goes from
        ``min(a, b)`` to ``max(a, b)`` — i.e. directions are normalised
        to the smaller internal id.  Callers needing the direction
        relative to a specific endpoint flip when that endpoint is the
        larger id.  Missing pairs return three empty lists.
        """
        if self._pair_index is None:
            self._build_pair_index()
        assert self._pair_index is not None
        key = (a, b) if a < b else (b, a)
        entry = self._pair_index.get(key)
        if entry is None:
            return ([], [], [])
        return entry

    def _build_pair_index(self) -> None:
        index: Dict[Tuple[int, int], Tuple[List[float], List[int], List[int]]] = {}
        src_list = self._src.tolist()
        dst_list = self._dst.tolist()
        t_list = self._t.tolist()
        for eid in range(len(t_list)):
            s, d = src_list[eid], dst_list[eid]
            if s < d:
                key, direction = (s, d), OUT
            else:
                key, direction = (d, s), IN
            entry = index.get(key)
            if entry is None:
                entry = ([], [], [])
                index[key] = entry
            entry[0].append(t_list[eid])
            entry[1].append(direction)
            entry[2].append(eid)
        self._pair_index = index

    def edge_lists(self) -> Tuple[List[int], List[int], List[float]]:
        """Plain-list views ``(src, dst, t)`` in canonical order, cached.

        Python-loop algorithms (BT, 2SCENT, brute force) index edges
        heavily; plain lists are several times faster than numpy
        scalar indexing, and callers repeat per block/pattern, so the
        conversion is done once.  Callers must not mutate the lists.
        """
        if self._edge_lists is None:
            self._edge_lists = (
                self._src.tolist(),
                self._dst.tolist(),
                self._t.tolist(),
            )
        return self._edge_lists

    def ensure_pair_index(self) -> None:
        """Force the lazy pair index to be built now.

        HARE calls this before forking workers so every process shares
        the parent's index instead of rebuilding its own copy.
        """
        if self._pair_index is None:
            self._build_pair_index()

    def columnar(self) -> "ColumnarGraph":
        """The cached columnar (structure-of-arrays) view of this graph.

        Built lazily on first access; see
        :class:`repro.graph.columnar.ColumnarGraph` for the array
        layout (timestamp-sorted edge columns, incidence CSR, pair
        CSR).  The vectorized counting kernels selected with
        ``backend="columnar"`` consume this view; like the pair index
        it should be forced before forking parallel workers so the
        arrays are shared copy-on-write.

        The cache is stamped with :attr:`version` when built and
        rebuilt automatically if the graph was mutated in place (see
        :meth:`invalidate_caches`), so callers can never observe a
        columnar view of edges that no longer exist.
        """
        if self._columnar is None or self._columnar_version != self._version:
            from repro.graph.columnar import ColumnarGraph

            self._columnar = ColumnarGraph(self)
            self._columnar_version = self._version
        return self._columnar

    def static_pairs(self) -> List[Tuple[int, int]]:
        """All unordered node pairs ``(a, b)``, ``a < b``, with edges."""
        self.ensure_pair_index()
        assert self._pair_index is not None
        return list(self._pair_index.keys())

    def static_neighbors(self, node: int) -> List[int]:
        """Distinct neighbours of ``node`` in the induced static graph."""
        return sorted(set(self._ensure_sequences()[node].nbrs))

    # ------------------------------------------------------------------
    # iteration / conversion
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[TemporalEdge]:
        """Iterate edges in canonical order, with original labels."""
        for s, d, t in zip(self._src.tolist(), self._dst.tolist(), self._t.tolist()):
            yield TemporalEdge(self._labels[s], self._labels[d], t)

    def internal_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, t)`` with internal ids, canonical order."""
        yield from zip(self._src.tolist(), self._dst.tolist(), self._t.tolist())

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"span={self.time_span})"
        )

    def __eq__(self, other: object) -> bool:
        """Label-level equality: same edges, same canonical order.

        Internal interning order is an implementation detail — two
        graphs are equal iff their labelled edge sequences match, so a
        save/load round-trip compares equal even though node ids were
        re-interned in file order.
        """
        if not isinstance(other, TemporalGraph):
            return NotImplemented
        if self.num_edges != other.num_edges:
            return False
        return all(a == b for a, b in zip(self.edges(), other.edges()))

    def __hash__(self) -> int:  # pragma: no cover - graphs are dict keys nowhere
        return id(self)
