"""Registry of the sixteen evaluation datasets (scaled synthetic twins).

The paper's Table II lists sixteen real-world temporal networks from
SNAP and NetworkRepository, spanning 20K to 613M temporal edges.  This
offline, pure-Python reproduction cannot ship or process the originals,
so each registry entry pairs the *paper's* statistics with a synthetic
configuration that reproduces the dataset's shape at a tractable scale
(see DESIGN.md §1 for the substitution argument).  The four smallest
datasets are generated at full edge count; larger ones are scaled down,
with the scale factor recorded on the spec.

Every spec is deterministic: ``load_dataset(name)`` always returns the
same graph for the same ``scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DatasetError
from repro.graph import generators
from repro.graph.temporal_graph import TemporalGraph

SECONDS_PER_DAY = 86_400


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: paper statistics + generator recipe."""

    name: str
    paper_name: str
    paper_nodes: int
    paper_edges: int
    paper_days: float
    #: nodes/edges actually generated at ``scale=1.0``
    gen_nodes: int
    gen_edges: int
    skew: float
    reciprocity: float
    repeat: float
    triadic: float
    burstiness: float
    bipartite: bool
    seed: int
    #: one line on what the original network is
    description: str = ""

    @property
    def edge_scale(self) -> float:
        """Generated-to-paper edge ratio (1.0 = full size)."""
        return self.gen_edges / self.paper_edges

    def build(self, scale: float = 1.0) -> TemporalGraph:
        """Instantiate the synthetic twin at ``scale`` of its default size."""
        nodes = max(2, int(self.gen_nodes * scale))
        edges = max(1, int(self.gen_edges * scale))
        return generators.powerlaw_temporal_graph(
            nodes,
            edges,
            span=self.paper_days * SECONDS_PER_DAY,
            skew=self.skew,
            reciprocity=self.reciprocity,
            repeat=self.repeat,
            triadic=self.triadic,
            burstiness=self.burstiness,
            bipartite_fraction=1.0 if self.bipartite else 0.0,
            seed=self.seed,
        )


def _spec(**kwargs) -> DatasetSpec:
    return DatasetSpec(**kwargs)


#: Registry in the paper's Table II order.
REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            name="email_eu", paper_name="Email-Eu",
            paper_nodes=986, paper_edges=332_334, paper_days=803,
            gen_nodes=986, gen_edges=40_000,
            skew=0.8, reciprocity=0.25, repeat=0.15, triadic=0.10,
            burstiness=0.6, bipartite=False, seed=101,
            description="internal email records of a European research institution",
        ),
        _spec(
            name="collegemsg", paper_name="CollegeMsg",
            paper_nodes=1_899, paper_edges=20_296, paper_days=193,
            gen_nodes=1_899, gen_edges=20_296,
            skew=0.8, reciprocity=0.30, repeat=0.15, triadic=0.05,
            burstiness=0.6, bipartite=False, seed=102,
            description="private messages on a UC Irvine social network",
        ),
        _spec(
            name="bitcoinotc", paper_name="Bitcoinotc",
            paper_nodes=5_881, paper_edges=35_592, paper_days=1_903,
            gen_nodes=5_881, gen_edges=35_592,
            skew=0.9, reciprocity=0.15, repeat=0.05, triadic=0.08,
            burstiness=0.4, bipartite=False, seed=103,
            description="Bitcoin OTC web-of-trust ratings",
        ),
        _spec(
            name="bitcoinalpha", paper_name="Bitcoinalpha",
            paper_nodes=3_783, paper_edges=24_186, paper_days=1_901,
            gen_nodes=3_783, gen_edges=24_186,
            skew=0.9, reciprocity=0.15, repeat=0.05, triadic=0.08,
            burstiness=0.4, bipartite=False, seed=104,
            description="Bitcoin Alpha web-of-trust ratings",
        ),
        _spec(
            name="act_mooc", paper_name="Act-mooc",
            paper_nodes=7_143, paper_edges=411_749, paper_days=29,
            gen_nodes=7_143, gen_edges=60_000,
            skew=0.7, reciprocity=0.0, repeat=0.25, triadic=0.0,
            burstiness=0.7, bipartite=True, seed=105,
            description="student actions on a MOOC platform (bipartite)",
        ),
        _spec(
            name="sms_a", paper_name="SMS-A",
            paper_nodes=44_090, paper_edges=544_817, paper_days=338,
            gen_nodes=9_000, gen_edges=70_000,
            skew=0.8, reciprocity=0.35, repeat=0.20, triadic=0.02,
            burstiness=0.7, bipartite=False, seed=106,
            description="mobile SMS messages; heavy pair bursts",
        ),
        _spec(
            name="fb_wall", paper_name="FBWALL",
            paper_nodes=45_813, paper_edges=855_542, paper_days=1_591,
            gen_nodes=10_000, gen_edges=80_000,
            skew=0.8, reciprocity=0.25, repeat=0.10, triadic=0.10,
            burstiness=0.5, bipartite=False, seed=107,
            description="Facebook New Orleans wall posts",
        ),
        _spec(
            name="mathoverflow", paper_name="MathOverflow",
            paper_nodes=24_818, paper_edges=506_550, paper_days=2_350,
            gen_nodes=6_000, gen_edges=60_000,
            skew=1.0, reciprocity=0.20, repeat=0.10, triadic=0.10,
            burstiness=0.5, bipartite=False, seed=108,
            description="Stack Exchange Q&A interactions (math)",
        ),
        _spec(
            name="askubuntu", paper_name="AskUbuntu",
            paper_nodes=159_316, paper_edges=964_437, paper_days=2_613,
            gen_nodes=16_000, gen_edges=90_000,
            skew=1.0, reciprocity=0.15, repeat=0.08, triadic=0.08,
            burstiness=0.5, bipartite=False, seed=109,
            description="Stack Exchange Q&A interactions (Ubuntu)",
        ),
        _spec(
            name="superuser", paper_name="SuperUser",
            paper_nodes=194_085, paper_edges=1_443_339, paper_days=2_773,
            gen_nodes=20_000, gen_edges=110_000,
            skew=1.0, reciprocity=0.15, repeat=0.08, triadic=0.08,
            burstiness=0.5, bipartite=False, seed=110,
            description="Stack Exchange Q&A interactions (SuperUser)",
        ),
        _spec(
            name="rec_movielens", paper_name="Rec-MovieLens",
            paper_nodes=283_228, paper_edges=27_753_444, paper_days=1_128,
            gen_nodes=15_000, gen_edges=140_000,
            skew=0.8, reciprocity=0.0, repeat=0.05, triadic=0.0,
            burstiness=0.6, bipartite=True, seed=111,
            description="MovieLens user→movie ratings (bipartite)",
        ),
        _spec(
            name="wikitalk", paper_name="WikiTalk",
            paper_nodes=1_140_149, paper_edges=7_833_140, paper_days=2_320,
            gen_nodes=24_000, gen_edges=130_000,
            skew=1.25, reciprocity=0.15, repeat=0.08, triadic=0.05,
            burstiness=0.5, bipartite=False, seed=112,
            description="Wikipedia talk-page edits; extreme degree skew",
        ),
        _spec(
            name="stackoverflow", paper_name="StackOverflow",
            paper_nodes=2_601_977, paper_edges=63_497_050, paper_days=2_774,
            gen_nodes=36_000, gen_edges=180_000,
            skew=1.0, reciprocity=0.15, repeat=0.08, triadic=0.08,
            burstiness=0.5, bipartite=False, seed=113,
            description="Stack Overflow Q&A interactions",
        ),
        _spec(
            name="ia_online_ads", paper_name="IA-online-ads",
            paper_nodes=15_336_555, paper_edges=15_995_634, paper_days=2_461,
            gen_nodes=60_000, gen_edges=90_000,
            skew=0.6, reciprocity=0.0, repeat=0.05, triadic=0.0,
            burstiness=0.4, bipartite=True, seed=114,
            description="user→advertisement clicks (bipartite, near 1:1 node:edge)",
        ),
        _spec(
            name="soc_bitcoin", paper_name="Soc-bitcoin",
            paper_nodes=24_575_382, paper_edges=122_948_162, paper_days=2_584,
            gen_nodes=48_000, gen_edges=220_000,
            skew=1.1, reciprocity=0.10, repeat=0.10, triadic=0.05,
            burstiness=0.6, bipartite=False, seed=115,
            description="large Bitcoin transaction network",
        ),
        _spec(
            name="redditcomments", paper_name="RedditComments",
            paper_nodes=8_036_164, paper_edges=613_289_746, paper_days=3_686,
            gen_nodes=40_000, gen_edges=260_000,
            skew=1.1, reciprocity=0.25, repeat=0.10, triadic=0.08,
            burstiness=0.5, bipartite=False, seed=116,
            description="Reddit user-to-user comment replies",
        ),
    )
}


def dataset_names() -> Tuple[str, ...]:
    """All registry dataset names, in the paper's Table II order."""
    return tuple(REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(REGISTRY)}"
        ) from None


_CACHE: Dict[Tuple[str, float], TemporalGraph] = {}


def load_dataset(name: str, scale: float = 1.0, cache: bool = True) -> TemporalGraph:
    """Build (or fetch from the in-process cache) a dataset's graph.

    ``scale`` multiplies the default generated size — the benchmark
    harness uses ``scale < 1`` for quick runs.  Graphs are cached per
    ``(name, scale)`` because benchmark sweeps reuse them heavily.
    """
    spec = get_spec(name)
    key = (name, scale)
    if cache and key in _CACHE:
        return _CACHE[key]
    graph = spec.build(scale)
    if cache:
        _CACHE[key] = graph
    return graph
