"""Reading and writing SNAP-style temporal edge lists.

The sixteen datasets in the paper are distributed as whitespace-
separated text files with one ``u v t`` record per line (the SNAP
temporal format).  This module parses that format, tolerating comment
lines (``#`` or ``%`` prefixes), blank lines, and gzip compression, and
can write a graph back out losslessly.
"""

from __future__ import annotations

import gzip
import io
import math
import os
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.temporal_graph import TemporalGraph

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("#", "%")


def _open_text(path: PathLike) -> io.TextIOBase:
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt")  # type: ignore[return-value]
    return open(path, "r")


def parse_edge_line(
    line: str, lineno: int = 0, origin: str = "<stream>"
) -> Optional[Tuple[int, int, float]]:
    """Parse one SNAP-format line into ``(u, v, t)``, or ``None``.

    ``None`` is returned for blank and comment lines.  Node ids are
    parsed as ints; timestamps as ints when possible, falling back to
    floats.  Raises :class:`~repro.errors.GraphFormatError` (tagged
    with ``origin:lineno``) on malformed input.  This is the shared
    parser behind both file loading and the ``repro stream`` stdin
    replay.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith(_COMMENT_PREFIXES):
        return None
    parts = stripped.split()
    if len(parts) < 3:
        raise GraphFormatError(f"{origin}:{lineno}: expected 'u v t', got {stripped!r}")
    try:
        u = int(parts[0])
        v = int(parts[1])
    except ValueError as exc:
        raise GraphFormatError(
            f"{origin}:{lineno}: node ids must be integers, got {stripped!r}"
        ) from exc
    raw_t = parts[2]
    try:
        t: float = int(raw_t)
    except ValueError:
        try:
            t = float(raw_t)
        except ValueError as exc:
            raise GraphFormatError(
                f"{origin}:{lineno}: timestamp must be numeric, got {raw_t!r}"
            ) from exc
        # float("nan")/float("inf") parse fine but poison every
        # comparison downstream (canonical sort, δ-windows, sliding
        # window watermarks) — reject them at the boundary.
        if not math.isfinite(t):
            raise GraphFormatError(
                f"{origin}:{lineno}: timestamp must be finite, got {raw_t!r}"
            )
    return (u, v, t)


def iter_edge_lines(
    lines: Iterable[str], origin: str = "<stream>"
) -> Iterator[Tuple[int, int, float]]:
    """Yield ``(u, v, t)`` records from an iterable of text lines.

    The incremental flavour of :func:`iter_edge_records`: accepts any
    line iterable (an open file, ``sys.stdin``, a socket reader) so
    the streaming engine can consume edges as they arrive.
    """
    for lineno, line in enumerate(lines, start=1):
        record = parse_edge_line(line, lineno, origin)
        if record is not None:
            yield record


def iter_edge_records(path: PathLike) -> Iterator[Tuple[int, int, float]]:
    """Yield ``(u, v, t)`` records from a SNAP-format edge list file.

    Node ids are parsed as ints; timestamps as ints when possible,
    falling back to floats.  Raises
    :class:`~repro.errors.GraphFormatError` with the offending line
    number on malformed input.
    """
    with _open_text(path) as handle:
        yield from iter_edge_lines(handle, origin=str(path))


def load_edgelist(path: PathLike, **graph_kwargs) -> TemporalGraph:
    """Load a temporal graph from a SNAP-format edge list.

    Extra keyword arguments are forwarded to
    :class:`~repro.graph.temporal_graph.TemporalGraph` (for example
    ``on_self_loop``).
    """
    return TemporalGraph(iter_edge_records(path), **graph_kwargs)


def save_edgelist(graph: TemporalGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in SNAP format (canonical edge order).

    Labels are written with ``str``; round-tripping through
    :func:`load_edgelist` therefore requires integer labels, which is
    what every generator and dataset in this repository produces.
    """
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "wt") as handle:  # type: ignore[operator]
        for u, v, t in graph.edges():
            handle.write(f"{u} {v} {t}\n")
