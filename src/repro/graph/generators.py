"""Synthetic temporal graph generators.

The paper evaluates on sixteen real-world temporal networks.  Those
datasets are not redistributable inside this offline reproduction, so
:mod:`repro.graph.datasets` instantiates each of them from the
generators in this module, matched on the *drivers* of algorithm cost.

The main generator models a temporal network as a stream of
**sessions** — short conversations in which a weight-sampled initiator
exchanges several edges with a small set of peers.  This is what real
communication/interaction data looks like from a motif counter's
perspective: motifs are triples of edges that are close in time *and*
on at most three nodes, and sessions are precisely the mechanism that
co-locates edges in both dimensions.  The knobs:

* ``skew`` — exponent of the power-law node-weight distribution;
  controls degree imbalance (the Fig. 9 long tail that motivates
  HARE's intra-node parallelism);
* ``reciprocity`` — probability that a session edge reverses an
  earlier session edge (drives 2-node pair motifs M65/M66);
* ``repeat`` — probability that a session edge repeats an earlier one
  (drives M55/M56 and star multi-edges);
* ``triadic`` — probability that a session edge closes a wedge between
  session participants (drives triangle motifs, 2SCENT's workload);
* ``burstiness`` — compresses session duration, controlling how many
  edges share a δ window (the ``d^δ`` of the complexity analysis);
* ``session_length`` / ``session_duration`` — mean edges per session
  and the session time scale in timestamp units;
* ``bipartite_fraction`` — user→item datasets (MovieLens ratings, ad
  clicks): initiators are sources, peers are items, reverse/wedge
  moves are disabled, so triangles are structurally impossible.

All generators take an integer ``seed`` and are fully deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


def _validate_counts(num_nodes: int, num_edges: int) -> None:
    if num_nodes < 2:
        raise ValidationError(f"need at least 2 nodes, got {num_nodes}")
    if num_edges < 0:
        raise ValidationError(f"num_edges must be non-negative, got {num_edges}")


def _node_weights(num_nodes: int, skew: float) -> np.ndarray:
    """Zipf-like sampling weights ``(rank + 1) ** -skew``, normalised."""
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class _WeightedPool:
    """Cheap stream of weighted node samples (bulk-drawn, refilled)."""

    def __init__(self, rng: np.random.Generator, population: int, weights: np.ndarray,
                 offset: int = 0, block: int = 8192) -> None:
        self._rng = rng
        self._population = population
        self._weights = weights
        self._offset = offset
        self._block = block
        self._buffer: List[int] = []

    def draw(self) -> int:
        if not self._buffer:
            self._buffer = list(
                self._rng.choice(self._population, size=self._block, p=self._weights)
                + self._offset
            )
        return self._buffer.pop()


def powerlaw_temporal_graph(
    num_nodes: int,
    num_edges: int,
    *,
    span: float = 86_400.0 * 365,
    skew: float = 1.0,
    reciprocity: float = 0.15,
    repeat: float = 0.1,
    triadic: float = 0.1,
    burstiness: float = 0.5,
    bipartite_fraction: float = 0.0,
    session_length: float = 6.0,
    session_duration: float = 400.0,
    seed: int = 0,
) -> TemporalGraph:
    """Generate a session-structured, skewed temporal graph.

    Edges arrive in sessions.  Each session draws an initiator and a
    couple of peers from the power-law weight distribution, a start
    time uniform over ``[0, span]``, a duration exponential around
    ``session_duration`` (shrunk by ``burstiness``), and a geometric
    number of edges with mean ``session_length``.  Each edge either
    repeats an earlier session edge, reverses one, closes a wedge
    between session participants, or connects the initiator to a peer
    — with probabilities ``repeat``, ``reciprocity``, ``triadic`` and
    the remainder.
    """
    _validate_counts(num_nodes, num_edges)
    for name, prob in (("reciprocity", reciprocity), ("repeat", repeat), ("triadic", triadic)):
        if not 0.0 <= prob <= 1.0:
            raise ValidationError(f"{name} must be in [0, 1], got {prob}")
    if repeat + reciprocity + triadic > 1.0:
        raise ValidationError("repeat + reciprocity + triadic must be <= 1")
    if session_length < 1:
        raise ValidationError(f"session_length must be >= 1, got {session_length}")
    if session_duration <= 0:
        raise ValidationError(f"session_duration must be positive, got {session_duration}")

    rng = np.random.default_rng(seed)
    bipartite = bipartite_fraction >= 1.0
    if bipartite:
        num_sources = max(1, int(num_nodes * 0.3))
        initiators = _WeightedPool(rng, num_sources, _node_weights(num_sources, skew))
        peer_count = max(1, num_nodes - num_sources)
        peers = _WeightedPool(
            rng, peer_count, _node_weights(peer_count, skew), offset=num_sources
        )
    else:
        weights = _node_weights(num_nodes, skew)
        initiators = _WeightedPool(rng, num_nodes, weights)
        peers = _WeightedPool(rng, num_nodes, weights)

    duration_scale = session_duration * (1.5 - burstiness)
    p_repeat = repeat
    p_recip = repeat + (0.0 if bipartite else reciprocity)
    p_triad = p_recip + (0.0 if bipartite else triadic)

    edges: List[Tuple[int, int, int]] = []
    while len(edges) < num_edges:
        remaining = num_edges - len(edges)
        size = min(remaining, 1 + rng.geometric(1.0 / session_length))
        duration = rng.exponential(duration_scale) + 1.0
        start = rng.uniform(0.0, max(1.0, span - duration))
        offsets = np.sort(rng.uniform(0.0, duration, size=size))

        initiator = initiators.draw()
        session_peers = [peers.draw() for _ in range(min(3, 1 + int(rng.integers(0, 3))))]
        session_edges: List[Tuple[int, int]] = []
        for k in range(size):
            move = rng.random()
            u = v = -1
            if session_edges and move < p_repeat:
                u, v = session_edges[int(rng.integers(0, len(session_edges)))]
            elif session_edges and move < p_recip:
                v, u = session_edges[int(rng.integers(0, len(session_edges)))]
            elif len(session_edges) >= 2 and move < p_triad:
                a1, b1 = session_edges[int(rng.integers(0, len(session_edges)))]
                a2, b2 = session_edges[int(rng.integers(0, len(session_edges)))]
                # Close a wedge between two session edges sharing a node.
                if b1 == a2 and a1 != b2:
                    u, v = b2, a1
                elif a1 == a2 and b1 != b2:
                    u, v = b1, b2
                elif b1 == b2 and a1 != a2:
                    u, v = a2, a1
            if u < 0 or u == v:
                peer = session_peers[int(rng.integers(0, len(session_peers)))]
                if peer == initiator:
                    peer = peers.draw()
                    if peer == initiator:
                        peer = (peer + 1) % num_nodes
                if bipartite or rng.random() < 0.7:
                    u, v = initiator, peer
                else:
                    u, v = peer, initiator
            if u == v:
                continue
            edges.append((u, v, int(start + offsets[k])))
            session_edges.append((u, v))

    edges = edges[:num_edges]
    return TemporalGraph(edges)


def uniform_temporal_graph(
    num_nodes: int,
    num_edges: int,
    *,
    span: float = 1000.0,
    seed: int = 0,
) -> TemporalGraph:
    """Erdős–Rényi-style temporal graph: uniform endpoints and times."""
    _validate_counts(num_nodes, num_edges)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    collide = src == dst
    dst[collide] = (dst[collide] + 1) % num_nodes
    t = np.sort(rng.integers(0, int(span) + 1, size=num_edges))
    return TemporalGraph.from_arrays(src.tolist(), dst.tolist(), t.tolist())


def star_burst_graph(
    num_leaves: int,
    edges_per_leaf: int,
    *,
    gap: int = 10,
    seed: int = 0,
) -> TemporalGraph:
    """A single hub exchanging bursts with many leaves.

    Maximises star-motif density and degree skew: the hub's temporal
    degree is ``num_leaves * edges_per_leaf`` while every leaf has
    degree ``edges_per_leaf``.  This is the microbenchmark used to
    exercise HARE's intra-node parallel mode.
    """
    if num_leaves < 2 or edges_per_leaf < 1:
        raise ValidationError("need >= 2 leaves and >= 1 edge per leaf")
    rng = np.random.default_rng(seed)
    hub = 0
    edges = []
    t = 0
    for _ in range(edges_per_leaf):
        for leaf in range(1, num_leaves + 1):
            if rng.random() < 0.5:
                edges.append((hub, leaf, t))
            else:
                edges.append((leaf, hub, t))
            t += int(rng.integers(1, gap + 1))
    return TemporalGraph(edges)


def pair_burst_graph(
    num_pairs: int,
    edges_per_pair: int,
    *,
    gap: int = 5,
    seed: int = 0,
) -> TemporalGraph:
    """Disjoint node pairs exchanging rapid back-and-forth messages.

    Maximises 2-node (pair) motif density — the BT / BTS-Pair workload.
    """
    if num_pairs < 1 or edges_per_pair < 1:
        raise ValidationError("need >= 1 pair and >= 1 edge per pair")
    rng = np.random.default_rng(seed)
    edges = []
    t = 0
    for p in range(num_pairs):
        a, b = 2 * p, 2 * p + 1
        for _ in range(edges_per_pair):
            if rng.random() < 0.5:
                edges.append((a, b, t))
            else:
                edges.append((b, a, t))
            t += int(rng.integers(1, gap + 1))
    return TemporalGraph(edges)


def triangle_rich_graph(
    num_triangles: int,
    *,
    gap: int = 5,
    cyclic_fraction: float = 0.5,
    shared_nodes: Optional[int] = None,
    seed: int = 0,
) -> TemporalGraph:
    """Many temporal triangles, a tunable share of them cyclic (M26).

    ``cyclic_fraction`` controls how many triangles are oriented as
    temporal cycles — the only motif 2SCENT counts.  ``shared_nodes``
    draws triangle corners from a small shared pool (default: disjoint
    corners per triangle) to create overlapping triangles.
    """
    if num_triangles < 1:
        raise ValidationError("need >= 1 triangle")
    if not 0.0 <= cyclic_fraction <= 1.0:
        raise ValidationError(f"cyclic_fraction must be in [0, 1], got {cyclic_fraction}")
    rng = np.random.default_rng(seed)
    edges = []
    t = 0
    for k in range(num_triangles):
        if shared_nodes:
            a, b, c = rng.choice(shared_nodes, size=3, replace=False).tolist()
        else:
            a, b, c = 3 * k, 3 * k + 1, 3 * k + 2
        t += int(rng.integers(1, gap + 1))
        if rng.random() < cyclic_fraction:
            # Temporal cycle a->b->c->a (motif M26).
            triple = [(a, b, t), (b, c, t + 1), (c, a, t + 2)]
        else:
            # Acyclic "flow" orientation a->b, a->c, b->c (motif M15).
            triple = [(a, b, t), (a, c, t + 1), (b, c, t + 2)]
        edges.extend(triple)
        t += 3
    return TemporalGraph(edges)
