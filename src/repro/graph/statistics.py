"""Descriptive statistics for temporal graphs (Table II, Fig. 9).

:func:`compute_statistics` produces the row shape of the paper's
Table II (nodes, temporal edges, time span in days) plus the skew
diagnostics the HARE scheduler cares about: the degree distribution and
the share of total temporal degree held by the top-k nodes, which is
what makes inter-node-only parallelism unbalanced (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.temporal_graph import TemporalGraph

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of one temporal graph."""

    num_nodes: int
    num_edges: int
    time_span: float
    time_span_days: float
    max_degree: int
    mean_degree: float
    median_degree: float
    top10_degree_share: float
    num_static_pairs: int
    reciprocity: float
    degree_histogram: Dict[int, int] = field(repr=False)

    def as_table_row(self, name: str) -> Tuple[str, int, int, float]:
        """One row of the paper's Table II: name, #nodes, #edges, days."""
        return (name, self.num_nodes, self.num_edges, round(self.time_span_days, 1))


def degree_distribution(graph: TemporalGraph) -> Dict[int, int]:
    """Histogram mapping temporal degree -> number of nodes (Fig. 9a)."""
    histogram: Dict[int, int] = {}
    for d in graph.degrees().tolist():
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def top_k_degrees(graph: TemporalGraph, k: int) -> List[int]:
    """The ``k`` largest temporal degrees, descending.

    The paper sets the HARE threshold ``thrd`` to "the minimum value of
    degrees of the top 20 nodes"; this helper feeds that rule.
    """
    if k <= 0:
        return []
    degrees = graph.degrees()
    if degrees.size == 0:
        return []
    k = min(k, degrees.size)
    top = np.partition(degrees, degrees.size - k)[degrees.size - k:]
    return sorted(top.tolist(), reverse=True)


def default_degree_threshold(graph: TemporalGraph, top_k: int = 20) -> int:
    """The paper's default ``thrd``: min degree among the top-k nodes."""
    top = top_k_degrees(graph, top_k)
    if not top:
        return 0
    return top[-1]


def reciprocity(graph: TemporalGraph) -> float:
    """Fraction of static directed pairs (u, v) whose reverse also occurs.

    A proxy for pair-motif density: high reciprocity produces many
    2-node (pair) motif instances, which is the regime where 2SCENT and
    BT slow down most visibly.
    """
    directed = set()
    for s, d, _ in graph.internal_edges():
        directed.add((s, d))
    if not directed:
        return 0.0
    reciprocated = sum(1 for (s, d) in directed if (d, s) in directed)
    return reciprocated / len(directed)


def count_static_pairs(graph: TemporalGraph) -> int:
    """Number of unordered node pairs with at least one edge."""
    pairs = set()
    for s, d, _ in graph.internal_edges():
        pairs.add((s, d) if s < d else (d, s))
    return len(pairs)


def compute_statistics(graph: TemporalGraph) -> GraphStatistics:
    """Compute the full :class:`GraphStatistics` summary for ``graph``."""
    degrees = graph.degrees()
    if degrees.size:
        max_degree = int(degrees.max())
        mean_degree = float(degrees.mean())
        median_degree = float(np.median(degrees))
        total = float(degrees.sum())
        top10 = top_k_degrees(graph, 10)
        top10_share = (sum(top10) / total) if total else 0.0
    else:
        max_degree = 0
        mean_degree = 0.0
        median_degree = 0.0
        top10_share = 0.0
    span = graph.time_span
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        time_span=span,
        time_span_days=span / SECONDS_PER_DAY,
        max_degree=max_degree,
        mean_degree=mean_degree,
        median_degree=median_degree,
        top10_degree_share=top10_share,
        num_static_pairs=count_static_pairs(graph),
        reciprocity=reciprocity(graph),
        degree_histogram=degree_distribution(graph),
    )
