"""Deterministic fault-injection helpers for the chaos test suites.

Not imported by any runtime module — this package exists so the tests
under ``tests/distributed`` and ``tests/storage`` can inject network
and file-level faults reproducibly.  See :mod:`repro.testing.faults`.
"""
