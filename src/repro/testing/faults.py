"""Deterministic fault injection: a seeded TCP chaos proxy + file corruptors.

The chaos suites need *reproducible* failures — a worker whose
connection resets at a known byte offset, a journal torn at a chosen
point — so every primitive here is parameterized, never sampled from
ambient randomness.  The only pseudo-randomness is the proxy's
``seed``, which deterministically picks a byte offset for faults that
leave ``after_bytes=None``, via the same crc32 scheme as
:meth:`repro.distributed.health.RetryPolicy.delay`.

Network faults
--------------
:class:`ChaosProxy` sits between a client and a real server::

    with ChaosProxy("127.0.0.1:9001", faults={0: Fault("reset")}) as proxy:
        link = WorkerLink(proxy.address)   # connection 0 -> reset
        link = WorkerLink(proxy.address)   # connection 1 -> clean

Connections are numbered in accept order; ``faults`` maps that index
to a :class:`Fault` (or is a callable ``index -> Fault``).  Faults act
on the **server -> client** direction — the client observes a broken
response — while client -> server traffic always flows, so the server
sees a well-formed request before the failure:

``pass``
    Forward transparently (the default for unmapped connections).
``delay``
    Forward, but sleep ``seconds`` before relaying each chunk past
    ``after_bytes`` — a slow worker that still answers correctly.
``reset``
    Forward ``after_bytes``, then hard-close with ``SO_LINGER(0)``
    so the client sees ``ECONNRESET`` mid-response.
``truncate``
    Forward ``after_bytes``, then close cleanly — EOF mid-message.
``drop``
    Forward ``after_bytes``, then blackhole: the connection stays
    open but silent, exercising client timeouts.

File faults
-----------
:func:`torn_write`, :func:`truncate_file` and :func:`bitflip_file`
simulate a crash mid-write and on-disk corruption for the checkpoint
suites.  They operate on paths the test owns; nothing here is used by
runtime code.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

FAULT_KINDS = ("pass", "delay", "reset", "truncate", "drop")

#: Range for seed-derived byte offsets when ``after_bytes`` is None.
_AUTO_OFFSET_RANGE = 4096

_CHUNK = 65536


@dataclass(frozen=True)
class Fault:
    """One injected failure on a proxied connection.

    ``after_bytes`` counts server->client payload bytes forwarded
    before the fault engages; ``None`` means "let the proxy's seed
    pick an offset" (deterministic per connection index).
    ``seconds`` is only meaningful for ``delay``.
    """

    kind: str = "pass"
    after_bytes: Optional[int] = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.after_bytes is not None and self.after_bytes < 0:
            raise ValueError(f"after_bytes must be >= 0, got {self.after_bytes}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


FaultMap = Union[Dict[int, Fault], Callable[[int], Optional[Fault]]]

_PASS = Fault("pass")


class ChaosProxy:
    """A TCP proxy that injects :class:`Fault`\\ s deterministically.

    Start it (or use it as a context manager), point the client at
    :attr:`address` instead of the real server, and each accepted
    connection is relayed through a pair of pump threads with the
    mapped fault applied to the server->client stream.
    """

    def __init__(
        self,
        target_address: str,
        *,
        faults: Optional[FaultMap] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        target_host, _, target_port = target_address.rpartition(":")
        if not target_host or not target_port.isdigit():
            raise ValueError(f"target address must be 'host:port', got {target_address!r}")
        self.target = (target_host, int(target_port))
        self.faults = faults
        self.seed = seed
        self.host = host
        self.connections = 0
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._sockets: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = False
        self.address: Optional[str] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        # Poll rather than block forever: a close() from stop() cannot
        # interrupt an accept() already in the syscall.
        listener.settimeout(0.2)
        self._listener = listener
        self.address = f"{self.host}:{listener.getsockname()[1]}"
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    def stop(self) -> None:
        with self._lock:
            self._stopping = True
            sockets = list(self._sockets)
            self._sockets.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for sock in sockets:
            _release(sock)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault resolution -----------------------------------------------
    def fault_for(self, index: int) -> Fault:
        """The fault applied to connection ``index`` (accept order)."""
        fault: Optional[Fault]
        if self.faults is None:
            fault = None
        elif callable(self.faults):
            fault = self.faults(index)
        else:
            fault = self.faults.get(index)
        if fault is None:
            return _PASS
        if fault.after_bytes is None:
            offset = zlib.crc32(f"{self.seed}:{index}".encode()) % _AUTO_OFFSET_RANGE
            fault = Fault(fault.kind, after_bytes=offset, seconds=fault.seconds)
        return fault

    # -- plumbing -------------------------------------------------------
    def _track(self, sock: socket.socket) -> bool:
        with self._lock:
            if self._stopping:
                return False
            self._sockets.append(sock)
            return True

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                if self._stopping:
                    return
                continue
            except OSError:
                return  # listener closed by stop()
            index = self.connections
            self.connections += 1
            fault = self.fault_for(index)
            try:
                upstream = socket.create_connection(self.target, timeout=10.0)
            except OSError:
                client.close()
                continue
            if not (self._track(client) and self._track(upstream)):
                client.close()
                upstream.close()
                return
            pumps = [
                threading.Thread(
                    target=self._pump, args=(client, upstream, _PASS), daemon=True
                ),
                threading.Thread(
                    target=self._pump, args=(upstream, client, fault), daemon=True
                ),
            ]
            for pump in pumps:
                pump.start()
            with self._lock:
                self._threads.extend(pumps)

    def _pump(self, src: socket.socket, dst: socket.socket, fault: Fault) -> None:
        forwarded = 0
        budget = fault.after_bytes if fault.kind != "pass" else None
        try:
            while True:
                try:
                    chunk = src.recv(_CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                if budget is not None and forwarded + len(chunk) >= budget:
                    head = chunk[: max(0, budget - forwarded)]
                    if fault.kind == "delay":
                        if head:
                            dst.sendall(head)
                        time.sleep(fault.seconds)
                        dst.sendall(chunk[len(head):])
                        forwarded += len(chunk)
                        continue
                    if head:
                        dst.sendall(head)
                    forwarded += len(head)
                    if fault.kind == "reset":
                        _abort(dst)
                        break
                    if fault.kind == "truncate":
                        break
                    if fault.kind == "drop":
                        self._blackhole(src)
                        break
                else:
                    dst.sendall(chunk)
                    forwarded += len(chunk)
        except OSError:
            pass
        finally:
            # Releasing (not just closing) matters: the sibling pump is
            # blocked in recv() on one of these sockets, and a bare
            # close() is deferred by its in-syscall file reference — no
            # FIN would reach the peer until that thread woke on its own.
            _release(src)
            _release(dst)

    @staticmethod
    def _blackhole(src: socket.socket) -> None:
        """Keep reading (so the server is not blocked) but forward nothing."""
        try:
            while src.recv(_CHUNK):
                pass
        except OSError:
            pass


def _release(sock: socket.socket) -> None:
    """Shut down then close: wakes any thread blocked in recv() on
    ``sock`` and puts the FIN on the wire immediately, where a bare
    ``close()`` from a sibling thread would be deferred."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _abort(sock: socket.socket) -> None:
    """Abort a connection so the peer sees ECONNRESET.

    ``SHUT_RD`` wakes the sibling pump without emitting anything on the
    wire (a full shutdown would send a FIN first, turning the reset
    into a clean EOF); ``SO_LINGER(0)`` then makes the close an RST.
    """
    try:
        sock.shutdown(socket.SHUT_RD)
    except OSError:
        pass
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# file corruption
# ----------------------------------------------------------------------

def torn_write(path: str, data: bytes, keep_bytes: int) -> None:
    """Write only the first ``keep_bytes`` of ``data`` — a crash mid-write."""
    if not 0 <= keep_bytes <= len(data):
        raise ValueError(f"keep_bytes must be in [0, {len(data)}], got {keep_bytes}")
    with open(path, "wb") as handle:
        handle.write(data[:keep_bytes])


def truncate_file(path: str, keep_bytes: int) -> int:
    """Truncate ``path`` to ``keep_bytes``; returns the original size."""
    with open(path, "rb+") as handle:
        handle.seek(0, 2)
        size = handle.tell()
        if keep_bytes > size:
            raise ValueError(f"keep_bytes {keep_bytes} exceeds file size {size}")
        handle.truncate(keep_bytes)
    return size


def bitflip_file(path: str, offset: int, mask: int = 0x01) -> None:
    """XOR the byte at ``offset`` with ``mask`` (must actually change it)."""
    if not 0 < mask < 256:
        raise ValueError(f"mask must be in [1, 255], got {mask}")
    with open(path, "rb+") as handle:
        handle.seek(0, 2)
        size = handle.tell()
        if not 0 <= offset < size:
            raise ValueError(f"offset {offset} out of range for {size}-byte file")
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ mask]))


__all__ = [
    "FAULT_KINDS",
    "Fault",
    "ChaosProxy",
    "torn_write",
    "truncate_file",
    "bitflip_file",
]
