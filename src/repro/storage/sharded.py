"""Time-sharded counting with δ-overlap halos (out-of-core execution).

The decomposition behind ROADMAP item 2: split the canonical edge
sequence at cut points ``0 = c_0 < c_1 < ... < c_k = m``, give shard
``i`` the *slice* ``S_i = [c_i, E_i)`` where::

    E_i = searchsorted(t, t[c_{i+1} - 1] + delta, side="right")

(``E_{k-1} = m`` for the last shard) — its own edges plus the δ-overlap
**halo** ``H_i = [c_{i+1}, E_i)`` — count every slice independently
with any exact registered algorithm, and union by subtracting the halo
double counts::

    total = sum_i count(S_i) - sum_i count(H_i)

Why this is exact, for *any* cut points: classify each δ-motif
instance (canonical edge triple ``e1 < e2 < e3``) by its earliest edge.
The owner shard ``j`` (``c_j <= e1 < c_{j+1}``) always counts it —
``t[e3] <= t[e1] + delta <= t[c_{j+1}-1] + delta``, so ``e3 < E_j`` and
the whole triple lies in ``S_j``.  A non-owner slice ``i < j`` counts
it iff ``e3 < E_i``; but then the triple also lies entirely inside the
halo ``H_i`` (``e1 >= c_j >= c_{i+1}``), so the subtraction cancels it
— and shards after the owner never see ``e1`` at all.  Net count: one.
The identity holds cell-by-cell on the deduplicated 6×6 grid because
the grid is linear in the triple multiset, and each slice is a
complete pass over a contiguous canonical range (slicing preserves
relative canonical order and tie-breaking, so every exact backend —
fast/HARE, ex, bruteforce, bt, twoscent, python or columnar — produces
its whole-graph answer restricted to the slice).

Sampling estimators (``bts``/``ews``) do not decompose: they draw one
global RNG stream anchored at ``times[0]`` over the whole block range,
so per-shard runs cannot reproduce a fixed-seed whole-graph estimate.
:meth:`ShardedGraph.count` therefore routes them through the
whole-graph view unchanged (trivially bit-identical — the mmap-backed
arrays equal the in-memory ones) and records the passthrough in
``meta["sharding"]``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

#: Default shard budget (own edges per shard) when none is specified.
DEFAULT_SHARD_EDGES = 1 << 20


def slice_canonical(graph: TemporalGraph, lo: int, hi: int) -> TemporalGraph:
    """Zero-copy graph over canonical edge ids ``[lo, hi)``.

    Slicing contiguous canonical ranges preserves sortedness and
    tie-breaking, so the result is itself canonical; node ids keep the
    parent's space (``num_nodes`` unchanged) so no relabeling is needed
    anywhere.  Shared by :class:`ShardedGraph` and the distributed
    worker daemon (which slices its own ``.rgz`` mmap by the
    coordinator's ``[lo, hi)`` ranges).
    """
    if not (0 <= lo <= hi <= graph.num_edges):
        raise ValidationError(
            f"slice [{lo}, {hi}) out of range for {graph.num_edges} edges"
        )
    return TemporalGraph.from_canonical_arrays(
        graph.sources[lo:hi],
        graph.destinations[lo:hi],
        graph.timestamps[lo:hi],
        num_nodes=graph.num_nodes,
    )


@dataclass(frozen=True)
class Shard:
    """One planned slice: own range ``[own_lo, own_hi)`` plus halo."""

    index: int
    own_lo: int
    own_hi: int
    halo_hi: int

    @property
    def own_edges(self) -> int:
        return self.own_hi - self.own_lo

    @property
    def halo_edges(self) -> int:
        return self.halo_hi - self.own_hi

    @property
    def slice_edges(self) -> int:
        return self.halo_hi - self.own_lo


class ShardedGraph:
    """Shard-halo counting facade over one graph (see module docstring).

    ``source`` is a :class:`TemporalGraph` or an open
    :class:`~repro.storage.format.PackedGraph` (the out-of-core case:
    slices then view disjoint ranges of the mmap, so peak RSS tracks
    the shard budget, not the file size).  Exactly one sharding spec
    may be given:

    ``max_shard_edges``
        Budget of *own* edges per shard (default
        :data:`DEFAULT_SHARD_EDGES`); cut points every that many edges.
    ``num_shards``
        Split the edge sequence into that many near-equal shards.
    ``boundaries``
        Explicit interior canonical-edge-id cut points, strictly
        increasing inside ``(0, num_edges)`` — what the equivalence
        property tests randomize over.
    """

    def __init__(
        self,
        source,
        *,
        max_shard_edges: Optional[int] = None,
        num_shards: Optional[int] = None,
        boundaries: Optional[Sequence[int]] = None,
    ) -> None:
        graph = getattr(source, "graph", source)
        if not isinstance(graph, TemporalGraph):
            raise ValidationError(
                f"ShardedGraph needs a TemporalGraph or PackedGraph, "
                f"got {type(source).__name__}"
            )
        given = sum(x is not None for x in (max_shard_edges, num_shards, boundaries))
        if given > 1:
            raise ValidationError(
                "give at most one of max_shard_edges / num_shards / boundaries"
            )
        self.graph = graph
        m = graph.num_edges
        if boundaries is not None:
            cuts = [int(b) for b in boundaries]
            if any(b <= 0 or b >= m for b in cuts) or any(
                b2 <= b1 for b1, b2 in zip(cuts, cuts[1:])
            ):
                raise ValidationError(
                    f"boundaries must be strictly increasing interior edge ids "
                    f"in (0, {m}), got {boundaries!r}"
                )
            self._cuts = [0] + cuts + [m]
        elif num_shards is not None:
            if num_shards < 1:
                raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
            k = min(int(num_shards), max(m, 1))
            edges = np.linspace(0, m, k + 1).astype(np.int64)
            self._cuts = sorted(set(int(c) for c in edges)) if m else [0, 0]
        else:
            budget = DEFAULT_SHARD_EDGES if max_shard_edges is None else int(max_shard_edges)
            if budget < 1:
                raise ValidationError(f"max_shard_edges must be >= 1, got {budget}")
            self.max_shard_edges = budget
            self._cuts = list(range(0, m, budget)) + [m] if m else [0, 0]
            return
        self.max_shard_edges = max(
            b2 - b1 for b1, b2 in zip(self._cuts, self._cuts[1:])
        ) if m else 0

    @property
    def num_shards(self) -> int:
        return len(self._cuts) - 1

    def plan(self, delta: float) -> List[Shard]:
        """The shard slices for one δ: own ranges plus halo extents."""
        if delta is None or delta < 0:
            raise ValidationError(f"delta must be non-negative, got {delta}")
        t = self.graph.timestamps
        m = self.graph.num_edges
        shards: List[Shard] = []
        for i, (lo, hi) in enumerate(zip(self._cuts, self._cuts[1:])):
            if hi >= m:
                halo_hi = m
            else:
                halo_hi = int(np.searchsorted(t, t[hi - 1] + delta, side="right"))
            shards.append(Shard(index=i, own_lo=lo, own_hi=hi, halo_hi=halo_hi))
        return shards

    def _slice_graph(self, lo: int, hi: int) -> TemporalGraph:
        """Zero-copy slice view (see :func:`slice_canonical`)."""
        return slice_canonical(self.graph, lo, hi)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count(
        self,
        delta: float,
        *,
        algorithm: str = "fast",
        categories: str = "all",
        workers: int = 1,
        thrd: Optional[float] = None,
        schedule: str = "dynamic",
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        backend: str = "auto",
        start_method: Optional[str] = None,
        deadline: Optional[float] = None,
        **params: object,
    ):
        """Count motifs via the shard-halo union (exact algorithms).

        Sampling algorithms run on the whole-graph view instead (see
        the module docstring) so fixed-seed estimates stay bit-identical
        to the in-memory path.
        """
        from repro.core.registry import CountRequest, execute, get_algorithm

        spec = get_algorithm(algorithm)
        base = CountRequest(
            graph=self.graph,
            delta=delta,
            algorithm=algorithm,
            categories=categories,
            workers=workers,
            thrd=thrd,
            schedule=schedule,
            seed=seed,
            n_samples=n_samples,
            backend=backend,
            start_method=start_method,
            deadline=deadline,
            params=dict(params),
        )
        if not spec.is_exact:
            result = execute(base)
            result.meta["sharding"] = (
                "whole-graph (sampling estimators draw one global RNG stream)"
            )
            return result
        return sharded_count(base.resolve(spec), spec, sharded=self)


def sharded_count(request, spec, *, sharded: Optional[ShardedGraph] = None):
    """Run a *resolved* exact :class:`CountRequest` via the halo union.

    The registry's sharding routing target: builds (or reuses) the
    :class:`ShardedGraph` from whichever cut mode the request carries
    (``shard_budget`` / ``num_shards`` / ``shard_boundaries``),
    dispatches one registry execution per slice and per non-empty halo,
    and accumulates ``ΣS − ΣH`` into one grid.  Slice requests inherit
    every execution knob except ``pool`` (a persistent pool would
    accumulate one shared-memory publication per transient slice) and
    the sampling fields (meaningless for exact algorithms once
    resolved).
    """
    from repro.core.counters import MotifCounts
    from repro.core.registry import execute

    if sharded is None:
        sharded = ShardedGraph(request.graph, **request.shard_spec)
    start = time.perf_counter()
    plan = sharded.plan(request.delta)
    total = np.zeros((6, 6), dtype=np.int64)
    phases = {"pack_slices": 0.0}
    halo_edges = 0
    slice_runs = 0

    def _run(lo: int, hi: int) -> Optional[np.ndarray]:
        nonlocal slice_runs
        if hi - lo < 3:
            return None
        tick = time.perf_counter()
        piece = sharded._slice_graph(lo, hi)
        phases["pack_slices"] += time.perf_counter() - tick
        sub = execute(
            dataclasses.replace(
                request,
                graph=piece,
                source=None,
                shard_budget=None,
                num_shards=None,
                shard_boundaries=None,
                cluster=None,
                seed=None,
                n_samples=None,
                pool=None,
                request_id=None,
            )
        )
        slice_runs += 1
        for phase, seconds in sub.phase_seconds.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        return np.rint(np.asarray(sub.grid)).astype(np.int64)

    for shard in plan:
        request.check_deadline()
        halo_edges += shard.halo_edges
        own = _run(shard.own_lo, shard.halo_hi)
        if own is not None:
            total += own
        halo = _run(shard.own_hi, shard.halo_hi)
        if halo is not None:
            total -= halo

    assert not np.any(total < 0), "halo union produced a negative cell (bug)"
    result = MotifCounts(
        total,
        algorithm=request.algorithm,
        is_exact=True,
        phase_seconds=phases,
        meta={
            "sharding": "halo-union",
            "shards": sharded.num_shards,
            "slice_runs": slice_runs,
            "halo_edges": halo_edges,
            "max_slice_edges": max((s.slice_edges for s in plan), default=0),
            "shard_budget": sharded.max_shard_edges,
        },
    )
    result.delta = request.delta
    result.elapsed_seconds = time.perf_counter() - start
    return result
