"""Versioned binary columnar edge-store format (``repro pack`` / ``.rgz``).

The out-of-core substrate of ROADMAP item 2: a temporal graph is
*packed* once into a single file of timestamp-sorted edge columns plus
(optionally) every derived :class:`~repro.graph.columnar.ColumnarGraph`
array — the incidence CSR, the pair CSR, the composite rank keys and
the bloom prefilter — and reopened in O(validation) through one
``mmap``.  Parse cost and columnar-build cost are paid at pack time,
not per run; at open time every array is a zero-copy view into the
mapping, so the kernel pages columns in on demand and a counting run
whose shard budget is far below the file size never needs the whole
graph resident.

File layout (all integers little-endian)::

    offset 0   preamble, 24 bytes:  struct '<8sHHII4x'
               magic     8s   b"\\x89RGZ\\r\\n\\x1a\\n"  (PNG-style: binary
                               sniff byte + CRLF/LF mangling detectors)
               endian    u16  0x1234 sentinel (this format is LE-only)
               version   u16  FORMAT_VERSION
               hlen      u32  header JSON length in bytes
               hcrc      u32  zlib.crc32 of the header JSON bytes
    offset 24  header: UTF-8 JSON -- num_nodes, num_edges, layout
               ("edges" | "full"), scalars, and a section table of
               {name, dtype, shape, offset, nbytes} entries
    data       sections, each 64-byte aligned; section offsets are
               relative to ``data_start = align64(24 + hlen)`` so the
               header never has to know its own length

Every open validates before any counting can happen: magic, endian
sentinel, version, header CRC, section bounds against the real file
size, timestamp finiteness/sortedness, node-id ranges, and (for the
``full`` layout) the structural invariants of the derived arrays.
Corruption therefore surfaces as a typed
:class:`~repro.errors.StorageFormatError` /
:class:`~repro.errors.StorageVersionError` — never as garbage counts.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StorageFormatError, StorageVersionError, ValidationError
from repro.graph.columnar import ColumnarGraph
from repro.graph.temporal_graph import TemporalGraph

#: First bytes of every packed file.  Modeled on the PNG signature: a
#: non-ASCII sniff byte, the format name, then CRLF and LF so text-mode
#: transfer corruption is caught by the magic check itself.
MAGIC = b"\x89RGZ\r\n\x1a\n"

#: On-disk format version this build reads and writes.
FORMAT_VERSION = 1

#: Endianness sentinel stored as a little-endian u16; any other value
#: means the preamble was produced (or mangled) byte-swapped.
ENDIAN_SENTINEL = 0x1234

#: Section alignment: cache-line / SIMD friendly, and enough for any
#: dtype numpy will ever map over the sections.
ALIGNMENT = 64

#: Preamble layout (24 bytes): magic, endian sentinel, version, header
#: length, header CRC32, 4 pad bytes.
_PREAMBLE = struct.Struct("<8sHHII4x")

#: dtypes a section may declare (everything the columnar store uses).
_SECTION_DTYPES = ("<i8", "<f8", "|b1")

#: Derived ColumnarGraph array slots persisted by ``layout="full"``, in
#: file order.  Together with the edge columns and the scalars below
#: they are exactly the inputs of :meth:`ColumnarGraph._attach`.
DERIVED_SECTIONS: Tuple[str, ...] = (
    "inc_indptr",
    "inc_time",
    "inc_nbr",
    "inc_dir",
    "inc_eid",
    "inc_cum_in",
    "inc_row",
    "inc_row_key",
    "grp_id",
    "grp_order",
    "grp_inv",
    "grp_rank_key",
    "grp_cum_in",
    "pair_keys",
    "pair_indptr",
    "pair_time",
    "pair_dir",
    "pair_eid",
    "pair_cum_in",
    "pair_rank_key",
    "pair_bloom",
)

#: Edge-column sections present in every layout.
EDGE_SECTIONS: Tuple[str, ...] = ("src", "dst", "t")

LAYOUTS = ("full", "edges")


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _little_endian(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous little-endian view/copy of ``arr`` for writing."""
    if arr.dtype == np.bool_:
        return np.ascontiguousarray(arr)
    return np.ascontiguousarray(arr.astype(arr.dtype.newbyteorder("<"), copy=False))


def _dtype_tag(arr: np.ndarray) -> str:
    tag = _little_endian(arr).dtype.str
    if tag not in _SECTION_DTYPES:
        raise ValidationError(
            f"cannot pack array of dtype {arr.dtype}; packable: {_SECTION_DTYPES}"
        )
    return tag


# ----------------------------------------------------------------------
# pack
# ----------------------------------------------------------------------
def pack_graph(graph: TemporalGraph, path, *, layout: str = "full") -> Dict[str, object]:
    """Write ``graph`` to ``path`` in the packed binary format.

    ``layout="full"`` (default) also persists every derived
    :class:`ColumnarGraph` array so an open needs no columnar rebuild;
    ``layout="edges"`` stores only the three edge columns (smallest
    file, columnar arrays rebuilt lazily on first kernel use).  The
    write is atomic: bytes go to a same-directory temp file that is
    ``os.replace``-d over ``path`` only after a successful flush, so a
    crashed pack never leaves a half-written file under the real name.

    Returns the header dict actually written (section table included).
    """
    if not isinstance(graph, TemporalGraph):
        raise ValidationError(
            f"pack_graph needs a TemporalGraph, got {type(graph).__name__}"
        )
    if layout not in LAYOUTS:
        raise ValidationError(f"unknown layout {layout!r}; choose from {LAYOUTS}")
    path = os.fspath(path)

    arrays: List[Tuple[str, np.ndarray]] = [
        ("src", graph.sources),
        ("dst", graph.destinations),
        ("t", graph.timestamps),
    ]
    scalars: Dict[str, object] = {}
    if layout == "full":
        col = graph.columnar()
        arrays += [(name, getattr(col, name)) for name in DERIVED_SECTIONS]
        scalars["pair_bloom_bits"] = int(col.pair_bloom_bits)

    sections = []
    offset = 0
    payload: List[np.ndarray] = []
    for name, arr in arrays:
        arr = _little_endian(arr)
        offset = _align(offset)
        sections.append(
            {
                "name": name,
                "dtype": _dtype_tag(arr),
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        payload.append(arr)
        offset += arr.nbytes

    header = {
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "layout": layout,
        "scalars": scalars,
        "sections": sections,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    preamble = _PREAMBLE.pack(
        MAGIC,
        ENDIAN_SENTINEL,
        FORMAT_VERSION,
        len(header_bytes),
        zlib.crc32(header_bytes),
    )
    data_start = _align(_PREAMBLE.size + len(header_bytes))

    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(preamble)
            fh.write(header_bytes)
            pos = _PREAMBLE.size + len(header_bytes)
            for section, arr in zip(sections, payload):
                target = data_start + int(section["offset"])
                fh.write(b"\x00" * (target - pos))
                arr.tofile(fh)
                pos = target + arr.nbytes
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path hygiene
            os.unlink(tmp)
    return header


# ----------------------------------------------------------------------
# open
# ----------------------------------------------------------------------
def is_packed_file(path) -> bool:
    """Whether ``path`` exists and starts with the packed-graph magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_header(path) -> Dict[str, object]:
    """Validate the preamble + header of ``path`` and return the header.

    The cheap half of :func:`open_packed` (no section mapping, no
    column validation) — what the CLI uses to describe a packed file.
    Raises :class:`StorageFormatError` / :class:`StorageVersionError`
    exactly like a full open would.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        blob = fh.read(_PREAMBLE.size)
        if len(blob) < _PREAMBLE.size:
            raise StorageFormatError(
                f"{path}: truncated preamble ({len(blob)} of {_PREAMBLE.size} bytes)"
            )
        magic, endian, version, hlen, hcrc = _PREAMBLE.unpack(blob)
        if magic != MAGIC:
            raise StorageFormatError(
                f"{path}: not a packed graph (bad magic {magic!r})"
            )
        if endian != ENDIAN_SENTINEL:
            raise StorageFormatError(
                f"{path}: endianness sentinel mismatch "
                f"(0x{endian:04x} != 0x{ENDIAN_SENTINEL:04x}); file was written "
                f"byte-swapped or corrupted"
            )
        if version != FORMAT_VERSION:
            raise StorageVersionError(
                f"{path}: format version {version} is not readable by this build "
                f"(expects {FORMAT_VERSION}); re-pack with `repro pack`"
            )
        if _PREAMBLE.size + hlen > size:
            raise StorageFormatError(
                f"{path}: truncated header (declares {hlen} bytes, file has "
                f"{size - _PREAMBLE.size} past the preamble)"
            )
        header_bytes = fh.read(hlen)
    if len(header_bytes) != hlen or zlib.crc32(header_bytes) != hcrc:
        raise StorageFormatError(f"{path}: header CRC mismatch (corrupted header)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageFormatError(f"{path}: header is not valid JSON: {exc}") from exc
    _check_header(path, header, size, hlen)
    return header


def _check_header(path: str, header, size: int, hlen: int) -> None:
    if not isinstance(header, dict):
        raise StorageFormatError(f"{path}: header must be a JSON object")
    for key, kind in (("num_nodes", int), ("num_edges", int), ("layout", str),
                      ("scalars", dict), ("sections", list)):
        if not isinstance(header.get(key), kind):
            raise StorageFormatError(f"{path}: header field {key!r} missing or mistyped")
    if header["layout"] not in LAYOUTS:
        raise StorageFormatError(f"{path}: unknown layout {header['layout']!r}")
    if header["num_nodes"] < 0 or header["num_edges"] < 0:
        raise StorageFormatError(f"{path}: negative graph dimensions in header")
    data_start = _align(_PREAMBLE.size + hlen)
    names = set()
    for section in header["sections"]:
        if not isinstance(section, dict):
            raise StorageFormatError(f"{path}: malformed section table entry")
        name = section.get("name")
        dtype = section.get("dtype")
        shape = section.get("shape")
        offset = section.get("offset")
        nbytes = section.get("nbytes")
        if (
            not isinstance(name, str)
            or dtype not in _SECTION_DTYPES
            or not isinstance(shape, list)
            or not all(isinstance(dim, int) and dim >= 0 for dim in shape)
            or not isinstance(offset, int)
            or not isinstance(nbytes, int)
            or offset < 0
            or nbytes < 0
        ):
            raise StorageFormatError(f"{path}: malformed section {name!r}")
        if name in names:
            raise StorageFormatError(f"{path}: duplicate section {name!r}")
        names.add(name)
        expect = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if expect != nbytes:
            raise StorageFormatError(
                f"{path}: section {name!r} declares {nbytes} bytes for shape "
                f"{shape} dtype {dtype} (expected {expect})"
            )
        if data_start + offset + nbytes > size:
            raise StorageFormatError(
                f"{path}: section {name!r} extends past end of file "
                f"(truncated: needs {data_start + offset + nbytes} bytes, "
                f"file has {size})"
            )
    missing = set(EDGE_SECTIONS) - names
    if missing:
        raise StorageFormatError(f"{path}: missing edge sections {sorted(missing)}")
    if header["layout"] == "full":
        lost = set(DERIVED_SECTIONS) - names
        if lost:
            raise StorageFormatError(
                f"{path}: layout 'full' is missing derived sections {sorted(lost)}"
            )
        if not isinstance(header["scalars"].get("pair_bloom_bits"), int):
            raise StorageFormatError(
                f"{path}: layout 'full' requires scalar 'pair_bloom_bits'"
            )


def section_span(path, name: str) -> Tuple[int, int]:
    """Absolute ``(offset, nbytes)`` of one section inside ``path``.

    Debugging/testing helper: where a named section's bytes live in
    the file (corruption tests poke exactly these ranges).
    """
    path = os.fspath(path)
    header = read_header(path)
    with open(path, "rb") as fh:
        _, _, _, hlen, _ = _PREAMBLE.unpack(fh.read(_PREAMBLE.size))
    data_start = _align(_PREAMBLE.size + hlen)
    for section in header["sections"]:  # type: ignore[index]
        if section["name"] == name:
            return data_start + int(section["offset"]), int(section["nbytes"])
    raise StorageFormatError(f"{path}: no section named {name!r}")


class PackedGraph:
    """An open packed-graph file: zero-copy views plus the graph object.

    ``graph`` is a :class:`TemporalGraph` whose edge columns are views
    straight into the mapping (with the columnar store pre-attached for
    the ``full`` layout), so it drops into every existing counting
    path unchanged.  The mapping stays alive as long as any array view
    references it — numpy's buffer chain pins the ``mmap`` object — so
    letting a :class:`PackedGraph` go out of scope mid-count is safe.
    """

    def __init__(self, path: str, header: Dict[str, object],
                 sections: Dict[str, np.ndarray], graph: TemporalGraph,
                 mapping: mmap.mmap, file_bytes: int) -> None:
        self.path = path
        self.header = header
        self.sections = sections
        self.graph = graph
        self.file_bytes = file_bytes
        self._mapping: Optional[mmap.mmap] = mapping

    @property
    def num_nodes(self) -> int:
        return int(self.header["num_nodes"])  # type: ignore[arg-type]

    @property
    def num_edges(self) -> int:
        return int(self.header["num_edges"])  # type: ignore[arg-type]

    @property
    def layout(self) -> str:
        return str(self.header["layout"])

    def close(self) -> None:
        """Release this handle's references (best effort).

        The underlying mapping can only really close once every numpy
        view over it is gone; until then ``mmap`` refuses (exported
        buffers) and we leave the OS to reclaim it with the last view.
        """
        self.sections = {}
        self.graph = None  # type: ignore[assignment]
        if self._mapping is not None:
            try:
                self._mapping.close()
            except BufferError:
                pass
            self._mapping = None

    def __enter__(self) -> "PackedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedGraph({self.path!r}, layout={self.layout!r}, "
            f"nodes={self.num_nodes}, edges={self.num_edges}, "
            f"bytes={self.file_bytes})"
        )


def open_packed(path) -> PackedGraph:
    """Open a packed graph file as zero-copy mmap-backed arrays.

    Validates everything the format promises (see the module
    docstring) and returns a :class:`PackedGraph` whose ``graph``
    behaves exactly like the in-memory original: counts over it are
    byte-identical on every algorithm.
    """
    path = os.fspath(path)
    header = read_header(path)
    size = os.path.getsize(path)
    with open(path, "rb") as fh:
        mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        buf = memoryview(mapping)
        # The true header length comes from the preamble, not from a
        # json round trip (re-serialization is not byte-stable).
        _, _, _, hlen, _ = _PREAMBLE.unpack(buf[: _PREAMBLE.size])
        data_start = _align(_PREAMBLE.size + hlen)
        sections: Dict[str, np.ndarray] = {}
        spans: Dict[str, Tuple[int, int]] = {}
        for section in header["sections"]:  # type: ignore[index]
            off = data_start + int(section["offset"])
            nbytes = int(section["nbytes"])
            arr = np.frombuffer(
                buf[off:off + nbytes], dtype=np.dtype(str(section["dtype"]))
            ).reshape([int(dim) for dim in section["shape"]])
            sections[str(section["name"])] = arr
            spans[str(section["name"])] = (off, nbytes)

        def release(name: str) -> None:
            # Validation paged this section in; hand the (clean,
            # read-only) pages back so peak RSS tracks the counting
            # working set, not the whole file.  They re-fault from the
            # page cache on demand if a kernel touches them later.
            if not hasattr(mmap, "MADV_DONTNEED"):  # pragma: no cover
                return
            off, nbytes = spans[name]
            page = mmap.PAGESIZE
            start = (off + page - 1) // page * page
            end = (off + nbytes) // page * page
            if end > start:
                mapping.madvise(mmap.MADV_DONTNEED, start, end - start)

        graph = _assemble(path, header, sections, release)
    except BaseException:
        try:
            mapping.close()
        except BufferError:  # pragma: no cover - views escaped mid-failure
            pass
        raise
    return PackedGraph(path, header, sections, graph, mapping, size)


def _assemble(path: str, header, sections: Dict[str, np.ndarray],
              release=None) -> TemporalGraph:
    """Validate column contents and build the zero-copy graph object."""
    n = int(header["num_nodes"])
    m = int(header["num_edges"])
    src, dst, t = sections["src"], sections["dst"], sections["t"]
    for name in EDGE_SECTIONS:
        if sections[name].shape != (m,):
            raise StorageFormatError(
                f"{path}: edge section {name!r} has shape "
                f"{sections[name].shape}, expected ({m},)"
            )
    if src.dtype != np.int64 or dst.dtype != np.int64:
        raise StorageFormatError(f"{path}: src/dst sections must be int64")
    if np.issubdtype(t.dtype, np.floating) and not np.isfinite(t).all():
        raise StorageFormatError(
            f"{path}: non-finite timestamps in binary edge columns"
        )
    if m and np.any(t[1:] < t[:-1]):
        raise StorageFormatError(f"{path}: timestamps are not sorted")
    if m:
        if int(src.min()) < 0 or int(dst.min()) < 0 or \
                int(src.max()) >= n or int(dst.max()) >= n:
            raise StorageFormatError(
                f"{path}: node ids out of range for num_nodes={n}"
            )
        if bool(np.any(src == dst)):
            raise StorageFormatError(f"{path}: self-loop in packed edge columns")
    try:
        graph = TemporalGraph.from_canonical_arrays(src, dst, t, num_nodes=n)
    except ValidationError as exc:  # pragma: no cover - pre-checked above
        raise StorageFormatError(f"{path}: {exc}") from exc
    if header["layout"] == "full":
        _check_derived(path, sections, n, m, release)
        scalars = {
            "num_nodes": n,
            "num_edges": m,
            "pair_bloom_bits": int(header["scalars"]["pair_bloom_bits"]),
        }
        arrays = {name: sections[name] for name in EDGE_SECTIONS + DERIVED_SECTIONS}
        col = ColumnarGraph._attach(arrays, scalars)
        graph._columnar = col
        graph._columnar_version = graph._version
    return graph


def _check_derived(path: str, sections: Dict[str, np.ndarray],
                   n: int, m: int, release=None) -> None:
    """Structural invariants of the persisted columnar arrays.

    Cheap O(m) checks that catch tampering/corruption the kernels
    would otherwise turn into IndexErrors deep inside a count: CSR
    offsets monotone with the right endpoints, index arrays inside
    their ranges, parallel arrays the right length.  ``release`` (when
    given) is called with each section name whose *contents* were read,
    so a memory-mapped open can return the validated pages to the OS.
    """
    total = 2 * m

    def _shape(name: str, length: int) -> np.ndarray:
        arr = sections[name]
        if arr.shape != (length,):
            raise StorageFormatError(
                f"{path}: section {name!r} has shape {arr.shape}, "
                f"expected ({length},)"
            )
        return arr

    def _indptr(name: str, rows: int, entries: int) -> None:
        arr = _shape(name, rows)
        if len(arr) and (int(arr[0]) != 0 or int(arr[-1]) != entries
                         or np.any(np.diff(arr) < 0)):
            raise StorageFormatError(
                f"{path}: section {name!r} is not a valid CSR offset array"
            )
        if release is not None:
            release(name)

    def _bounded(name: str, length: int, hi: int) -> None:
        arr = _shape(name, length)
        if len(arr) and (int(arr.min()) < 0 or int(arr.max()) >= hi):
            raise StorageFormatError(
                f"{path}: section {name!r} holds indices outside [0, {hi})"
            )
        if release is not None:
            release(name)

    _indptr("inc_indptr", n + 1, total)
    _shape("inc_time", total)
    _bounded("inc_nbr", total, max(n, 1))
    _shape("inc_dir", total)
    _bounded("inc_eid", total, max(m, 1))
    _shape("inc_cum_in", total + 1)
    _bounded("inc_row", total, max(n, 1))
    _shape("inc_row_key", total)
    _shape("grp_id", total)
    _bounded("grp_order", total, max(total, 1))
    _bounded("grp_inv", total, max(total, 1))
    _shape("grp_rank_key", total)
    _shape("grp_cum_in", total + 1)
    pair_keys = sections["pair_keys"]
    _indptr("pair_indptr", len(pair_keys) + 1, m)
    _shape("pair_time", m)
    _shape("pair_dir", m)
    _bounded("pair_eid", m, max(m, 1))
    _shape("pair_cum_in", m + 1)
    _shape("pair_rank_key", m)
    bloom = sections["pair_bloom"]
    if bloom.dtype != np.bool_ or len(bloom) == 0 or (len(bloom) & (len(bloom) - 1)):
        raise StorageFormatError(
            f"{path}: section 'pair_bloom' must be a power-of-two bool array"
        )
