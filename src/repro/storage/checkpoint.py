"""Crash-safe streaming checkpoints: the ``.rgz`` snapshot + journal pair.

A streaming checkpoint directory holds exactly two artefacts:

``window-<seq>.rgz``
    The live window, packed in **canonical order** with the ordinary
    :func:`~repro.storage.format.pack_graph` (``layout="edges"``) —
    same magic, same CRC'd header, same atomic temp + ``os.replace``
    write discipline as every other packed graph.  Node ids are the
    store's internal ids; the label table travels in the journal.

``journal.json``
    Two lines.  Line 1 is a tiny head object ``{"format":
    "repro.checkpoint/1", "length": L, "crc": C}``; line 2 is exactly
    ``L`` bytes of canonical JSON (the *body*) whose CRC32 must equal
    ``C``.  The body carries the engine state a resume needs: the
    stream config (δ, window, algorithm, categories, backend), the
    store's label table and counters (watermark, eviction/lateness
    tallies, version), the engine's three raw counter arrays, and the
    snapshot's filename + whole-file CRC32 — which binds the journal
    to one specific snapshot and catches bit flips in regions (padding,
    dead preamble bytes) that :func:`~repro.storage.format.open_packed`
    does not itself checksum.

**Commit protocol.**  :func:`write_checkpoint` writes the snapshot
first, replaces the journal second (the commit point), and prunes
older snapshots last.  A crash at any instant therefore leaves either
the previous complete checkpoint or the new one — never a mixture: an
orphaned new snapshot without its journal is invisible garbage, and
the journal only ever names a snapshot that was durably in place when
the journal committed.

**Resume validation.**  :func:`read_checkpoint` re-validates every
promise above — head shape, body length and CRC, payload schema,
snapshot presence, whole-file CRC, then a full
:func:`~repro.storage.format.open_packed` — and wraps every failure in
a typed :class:`~repro.errors.CheckpointCorruptError` *before* any
engine state is built, so a torn or tampered checkpoint can never
produce a silent partial resume (property-tested by truncation and
bit-flip suites in ``tests/storage/test_checkpoint.py``).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Tuple

import numpy as np

from repro.errors import CheckpointCorruptError, StorageFormatError, ValidationError
from repro.graph.temporal_graph import TemporalGraph
from repro.storage.format import open_packed, pack_graph

#: Journal format tag (bump on incompatible layout changes).
CHECKPOINT_FORMAT = "repro.checkpoint/1"

#: Journal filename inside a checkpoint directory.
JOURNAL_NAME = "journal.json"

#: Snapshot filename prefix/suffix (``window-<seq>.rgz``).
SNAPSHOT_PREFIX = "window-"
SNAPSHOT_SUFFIX = ".rgz"

#: Labels the journal may carry: the JSON-primitive hashables that
#: round-trip ``json.dumps``/``loads`` unchanged.
_LABEL_TYPES = (str, int, float, bool)

#: Required raw-counter array lengths (star, star-pair, triangle).
_TOTALS_SHAPE = (24, 8, 24)


def journal_path(directory) -> str:
    """The journal's path inside ``directory``."""
    return os.path.join(os.fspath(directory), JOURNAL_NAME)


def snapshot_name(seq: int) -> str:
    """Snapshot filename for checkpoint number ``seq``."""
    return f"{SNAPSHOT_PREFIX}{int(seq):08d}{SNAPSHOT_SUFFIX}"


def has_checkpoint(directory) -> bool:
    """Whether ``directory`` holds a committed checkpoint journal."""
    return os.path.isfile(journal_path(directory))


def file_crc(path) -> int:
    """Streaming CRC32 of a whole file's bytes."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


# ----------------------------------------------------------------------
# write
# ----------------------------------------------------------------------
def _check_labels(labels) -> None:
    for label in labels:
        if not isinstance(label, _LABEL_TYPES):
            raise ValidationError(
                f"cannot checkpoint node label {label!r} of type "
                f"{type(label).__name__}: only JSON-primitive labels "
                f"(str/int/float/bool) survive a journal round trip"
            )


def write_checkpoint(directory, *, seq: int, graph: TemporalGraph, state: Dict) -> str:
    """Commit one checkpoint into ``directory``; returns the journal path.

    ``graph`` is the live window in canonical order (internal node
    ids); ``state`` carries the ``config`` / ``store`` / ``engine`` /
    ``progress`` sections (the writer owns their meaning — this layer
    only adds the ``snapshot`` section and the commit protocol).
    """
    directory = os.fspath(directory)
    _check_labels(state.get("store", {}).get("labels", ()))
    os.makedirs(directory, exist_ok=True)

    name = snapshot_name(seq)
    snap_path = os.path.join(directory, name)
    pack_graph(graph, snap_path, layout="edges")  # atomic in its own right

    payload = dict(state)
    payload["snapshot"] = {
        "file": name,
        "crc": file_crc(snap_path),
        "num_edges": int(graph.num_edges),
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    head = json.dumps(
        {"format": CHECKPOINT_FORMAT, "length": len(body), "crc": zlib.crc32(body)},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")

    journal = journal_path(directory)
    tmp = f"{journal}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(head + b"\n" + body + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, journal)  # the commit point
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path hygiene
            os.unlink(tmp)

    # Only after the journal commit is the previous snapshot garbage.
    for entry in os.listdir(directory):
        if (
            entry.startswith(SNAPSHOT_PREFIX)
            and entry.endswith(SNAPSHOT_SUFFIX)
            and entry != name
        ):
            os.unlink(os.path.join(directory, entry))
    return journal


# ----------------------------------------------------------------------
# read
# ----------------------------------------------------------------------
def _require(cond: bool, journal: str, message: str) -> None:
    if not cond:
        raise CheckpointCorruptError(f"{journal}: {message}")


def _number_or_none(value) -> bool:
    return value is None or isinstance(value, (int, float))


def _nonneg_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _read_journal(journal: str) -> Dict:
    try:
        with open(journal, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointCorruptError(
            f"{journal}: cannot read checkpoint journal: {exc}"
        ) from exc
    head_bytes, sep, rest = blob.partition(b"\n")
    _require(bool(sep), journal, "truncated journal (no head/body separator)")
    try:
        head = json.loads(head_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"{journal}: journal head is not valid JSON: {exc}"
        ) from exc
    _require(isinstance(head, dict), journal, "journal head must be a JSON object")
    _require(
        head.get("format") == CHECKPOINT_FORMAT,
        journal,
        f"unknown checkpoint format {head.get('format')!r} "
        f"(this build reads {CHECKPOINT_FORMAT!r})",
    )
    length, crc = head.get("length"), head.get("crc")
    _require(
        _nonneg_int(length) and _nonneg_int(crc),
        journal, "journal head declares no body length/CRC",
    )
    body = rest[:length]
    _require(
        len(body) == length,
        journal,
        f"truncated journal body ({len(body)} of {length} bytes)",
    )
    _require(
        rest[length:] in (b"", b"\n"),
        journal, "trailing bytes after the journal body",
    )
    _require(zlib.crc32(body) == crc, journal, "journal body CRC mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"{journal}: journal body is not valid JSON: {exc}"
        ) from exc
    _require(isinstance(payload, dict), journal, "journal body must be a JSON object")
    return payload


def _check_payload(journal: str, payload: Dict) -> None:
    for key in ("config", "snapshot", "store", "engine", "progress"):
        _require(
            isinstance(payload.get(key), dict),
            journal, f"journal section {key!r} missing or mistyped",
        )
    config = payload["config"]
    _require(
        isinstance(config.get("delta"), (int, float))
        and not isinstance(config.get("delta"), bool),
        journal, "config.delta missing or non-numeric",
    )
    _require(_number_or_none(config.get("window")), journal, "config.window mistyped")
    for key in ("algorithm", "categories", "backend"):
        _require(isinstance(config.get(key), str), journal, f"config.{key} mistyped")

    store = payload["store"]
    labels = store.get("labels")
    _require(isinstance(labels, list), journal, "store.labels missing or mistyped")
    for label in labels:
        _require(
            isinstance(label, _LABEL_TYPES),
            journal, f"store.labels holds non-primitive entry {label!r}",
        )
    _require(_number_or_none(store.get("watermark")), journal, "store.watermark mistyped")
    _require(_number_or_none(store.get("t_latest")), journal, "store.t_latest mistyped")
    for key in ("num_evicted", "num_dropped_late", "num_self_loops_dropped", "version"):
        _require(_nonneg_int(store.get(key)), journal, f"store.{key} missing or mistyped")

    engine = payload["engine"]
    totals = engine.get("totals")
    _require(
        isinstance(totals, list) and len(totals) == len(_TOTALS_SHAPE),
        journal, "engine.totals must hold the three raw counter arrays",
    )
    for arr, expect in zip(totals, _TOTALS_SHAPE):
        _require(
            isinstance(arr, list) and len(arr) == expect
            and all(isinstance(v, int) and not isinstance(v, bool) for v in arr),
            journal, f"engine.totals array is not {expect} integers",
        )
    _require(_nonneg_int(engine.get("checkpoints")), journal, "engine.checkpoints mistyped")
    _require(
        _nonneg_int(payload["progress"].get("records_consumed")),
        journal, "progress.records_consumed mistyped",
    )

    snapshot = payload["snapshot"]
    name = snapshot.get("file")
    _require(
        isinstance(name, str) and name and os.path.basename(name) == name,
        journal, f"snapshot.file {name!r} is not a plain filename",
    )
    _require(_nonneg_int(snapshot.get("crc")), journal, "snapshot.crc mistyped")
    _require(_nonneg_int(snapshot.get("num_edges")), journal, "snapshot.num_edges mistyped")


def _load_snapshot(
    journal: str, directory: str, payload: Dict
) -> Tuple[str, np.ndarray, np.ndarray, np.ndarray]:
    snapshot = payload["snapshot"]
    snap_path = os.path.join(directory, snapshot["file"])
    _require(
        os.path.isfile(snap_path),
        journal, f"snapshot {snapshot['file']!r} is missing from the directory",
    )
    _require(
        file_crc(snap_path) == snapshot["crc"],
        journal, f"snapshot {snapshot['file']!r} CRC mismatch (corrupted snapshot)",
    )
    try:
        packed = open_packed(snap_path)
    except StorageFormatError as exc:
        raise CheckpointCorruptError(
            f"{journal}: snapshot {snapshot['file']!r} failed validation: {exc}"
        ) from exc
    try:
        graph = packed.graph
        _require(
            graph.num_edges == snapshot["num_edges"],
            journal,
            f"snapshot holds {graph.num_edges} edges, journal recorded "
            f"{snapshot['num_edges']}",
        )
        _require(
            packed.num_nodes == len(payload["store"]["labels"]),
            journal,
            f"snapshot node space ({packed.num_nodes}) disagrees with the "
            f"journal's label table ({len(payload['store']['labels'])})",
        )
        # Copy out of the mapping: the resumed store owns its arrays.
        src = np.array(graph.sources, dtype=np.int64, copy=True)
        dst = np.array(graph.destinations, dtype=np.int64, copy=True)
        t = np.array(graph.timestamps, copy=True)
    finally:
        packed.close()
    return snap_path, src, dst, t


def read_checkpoint(directory) -> Dict:
    """Validate and load the checkpoint committed in ``directory``.

    Returns a dict with the journal's ``config`` / ``store`` /
    ``engine`` / ``progress`` sections plus ``snapshot_path`` and
    ``snapshot_arrays`` (copied ``(src, dst, t)`` canonical columns).
    Every validation failure — from a missing journal to a single
    flipped bit in either file — raises
    :class:`~repro.errors.CheckpointCorruptError`.
    """
    directory = os.fspath(directory)
    journal = journal_path(directory)
    _require(
        os.path.isfile(journal),
        journal, "no checkpoint journal in this directory",
    )
    payload = _read_journal(journal)
    _check_payload(journal, payload)
    snap_path, src, dst, t = _load_snapshot(journal, directory, payload)
    return {
        "config": payload["config"],
        "store": payload["store"],
        "engine": payload["engine"],
        "progress": payload["progress"],
        "snapshot_path": snap_path,
        "snapshot_arrays": (src, dst, t),
    }


def resume_skip_count(data: Dict) -> int:
    """How many input records a resumed replay should skip.

    The journal's ``records_consumed`` counts every record the killed
    run *routed through the store* — accepted, late-dropped, or
    self-loop-dropped — which is exactly the prefix of the input an
    identical replay must not re-feed.
    """
    return int(data["progress"]["records_consumed"])


__all__ = [
    "CHECKPOINT_FORMAT",
    "JOURNAL_NAME",
    "file_crc",
    "has_checkpoint",
    "journal_path",
    "read_checkpoint",
    "resume_skip_count",
    "snapshot_name",
    "write_checkpoint",
]
