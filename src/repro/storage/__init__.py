"""Out-of-core storage: packed binary columnar files + shard-halo counting.

``format`` packs a temporal graph into a versioned, mmap-reopenable
binary columnar file (``repro pack`` → ``graph.rgz``); ``sharded``
counts such a graph in time shards with δ-overlap halos so peak memory
tracks the shard budget rather than the file size.
"""

from repro.storage.format import (
    FORMAT_VERSION,
    MAGIC,
    PackedGraph,
    is_packed_file,
    open_packed,
    pack_graph,
    read_header,
)
from repro.storage.sharded import DEFAULT_SHARD_EDGES, Shard, ShardedGraph

__all__ = [
    "DEFAULT_SHARD_EDGES",
    "FORMAT_VERSION",
    "MAGIC",
    "PackedGraph",
    "Shard",
    "ShardedGraph",
    "is_packed_file",
    "open_packed",
    "pack_graph",
    "read_header",
]
