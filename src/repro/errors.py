"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch a single base class at API boundaries while still
distinguishing failure modes where it matters.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument or input value failed validation.

    Also derives from :class:`ValueError` so that generic callers using
    ``except ValueError`` keep working.
    """


class GraphFormatError(ReproError, ValueError):
    """An edge-list file or edge record could not be parsed."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel worker failed while counting motifs."""
