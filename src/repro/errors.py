"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch a single base class at API boundaries while still
distinguishing failure modes where it matters.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument or input value failed validation.

    Also derives from :class:`ValueError` so that generic callers using
    ``except ValueError`` keep working.
    """


class GraphFormatError(ReproError, ValueError):
    """An edge-list file or edge record could not be parsed."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel worker failed while counting motifs."""


class WorkerUnavailableError(ParallelExecutionError):
    """A remote cluster worker could not be reached or died mid-job.

    The *retryable* failure class of :mod:`repro.distributed`: raised
    by the coordinator's worker links on connection failures, timeouts,
    and mid-request disconnects.  The coordinator answers it by
    re-dispatching the shard elsewhere; it only escapes to callers when
    every worker in the cluster is gone.  Deterministic server-side
    errors (a :class:`ValidationError` from a bad request, say) re-raise
    as their own classes and are never retried.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline passed before its result was produced.

    Raised by :func:`repro.core.registry.execute` and the worker-pool
    runtimes when a :class:`~repro.core.registry.CountRequest` carries
    a ``deadline`` (a :func:`time.monotonic` instant) that expires
    before — or while — the work runs.  The serving layer maps it to a
    typed ``deadline_exceeded`` protocol error.
    """


class QuotaExceededError(ReproError, RuntimeError):
    """A tenant exceeded its admission quota on the serving layer."""


class BackpressureError(ReproError, RuntimeError):
    """The serving layer's bounded queue is full (try again later).

    The 429-style overload rejection: distinct from
    :class:`QuotaExceededError` because it signals *global* saturation
    rather than one tenant's misuse.
    """


class StorageFormatError(ReproError, ValueError):
    """A packed graph file is corrupt, truncated, or not a packed graph.

    Raised by :func:`repro.storage.format.open_packed` whenever the
    on-disk bytes fail validation — bad magic, mangled header, section
    bounds past EOF, non-finite or unsorted timestamps, out-of-range
    node ids.  The open path validates before any counting can start,
    so corruption surfaces as this typed error, never as garbage
    counts.
    """


class StorageVersionError(StorageFormatError):
    """A packed graph file declares a format version this build cannot read.

    Distinct from generic corruption so callers can suggest re-packing
    (``repro pack``) instead of treating the file as damaged.
    """


class CheckpointCorruptError(ReproError, ValueError):
    """A streaming checkpoint directory failed validation at resume time.

    Raised by :func:`repro.storage.checkpoint.read_checkpoint` (and
    therefore ``StreamingMotifEngine.resume_from``) whenever the
    journal or the window snapshot is torn, truncated, bit-flipped, or
    inconsistent — journal CRC mismatch, snapshot CRC mismatch against
    the journal's recorded digest, missing files, malformed payloads.
    Validation happens *before* any engine state is built, so a corrupt
    checkpoint can never produce a silently partial resume.
    """


class ClusterDegradedError(ReproError, RuntimeError):
    """A cluster-bound graph's circuit breaker is open and no local
    fallback exists.

    Raised by the serving layer when consecutive
    :class:`WorkerUnavailableError` failures opened the breaker on a
    cluster-bound catalog graph and the request cannot be answered
    locally (no packed ``.rgz`` held on this machine, or local
    fallback disabled).  ``retry_after`` hints how many seconds until
    the breaker half-opens and cluster attempts resume.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class UnknownGraphError(ReproError, KeyError):
    """A request named a graph the serving catalog does not hold."""

    def __str__(self) -> str:
        # KeyError.__str__ reprs its argument; keep the plain message.
        return str(self.args[0]) if self.args else ""
