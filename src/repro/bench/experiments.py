"""Drivers that regenerate every table and figure of the paper.

Each ``run_*`` function executes one experiment end to end — loads the
dataset twins, times the algorithms, and returns an
:class:`ExperimentResult` whose ``render()`` emits the same rows or
series the paper reports.  DESIGN.md §4 maps experiment ids to paper
artifacts; EXPERIMENTS.md records paper-vs-measured values.

All drivers accept ``scale`` (default 1.0 = the registry's reduced
default sizes) so quick runs and CI can shrink the workload uniformly.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import BenchTimer, format_table, time_call
from repro.core.api import count_motifs, count_motifs_sweep
from repro.core.fast_star import count_star_pair, scan_center as star_scan
from repro.core.fast_tri import count_triangle, scan_center as tri_scan
from repro.baselines.exact_ex import ex_count
from repro.baselines.backtracking import bt_count_pairs
from repro.baselines.sampling_bts import bts_count_pairs
from repro.baselines.sampling_ews import ews_count
from repro.baselines.twoscent import twoscent_count_cycles
from repro.graph.datasets import REGISTRY, load_dataset
from repro.graph.statistics import compute_statistics, default_degree_threshold, top_k_degrees
from repro.parallel.hare import hare_count, hare_star_pair

DELTA_DEFAULT = 600

#: The twelve datasets of Fig. 11, in the paper's panel order.
FIG11_DATASETS = (
    "stackoverflow", "wikitalk", "mathoverflow", "superuser",
    "fb_wall", "askubuntu", "sms_a", "act_mooc",
    "ia_online_ads", "rec_movielens", "soc_bitcoin", "redditcomments",
)

#: The four datasets whose count matrices Fig. 10 displays.
FIG10_DATASETS = ("collegemsg", "superuser", "wikitalk", "stackoverflow")

#: The three datasets of the δ-sensitivity study, Fig. 12(a).
FIG12A_DATASETS = ("superuser", "askubuntu", "mathoverflow")

#: The paper's δ sweep in Fig. 12(a) (seconds).
FIG12A_DELTAS = (7200, 14400, 21600, 28800)


@dataclass
class ExperimentResult:
    """Uniform result holder: a titled table plus free-form notes."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    blocks: List[str] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=self.title)]
        parts.extend(self.blocks)
        if self.notes:
            parts.append("\n".join(f"note: {n}" for n in self.notes))
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Table II — dataset statistics
# ---------------------------------------------------------------------------

def run_table2(scale: float = 1.0, datasets: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Regenerate Table II: per-dataset statistics, paper vs generated."""
    names = list(datasets or REGISTRY)
    result = ExperimentResult(
        experiment="table2",
        title="Table II: dataset statistics (paper original vs scaled synthetic twin)",
        headers=[
            "dataset", "paper #nodes", "paper #edges", "paper days",
            "gen #nodes", "gen #edges", "gen days", "edge scale",
        ],
    )
    for name in names:
        spec = REGISTRY[name]
        graph = load_dataset(name, scale)
        stats = compute_statistics(graph)
        result.rows.append([
            spec.paper_name,
            f"{spec.paper_nodes:,}",
            f"{spec.paper_edges:,}",
            f"{spec.paper_days:,}",
            f"{stats.num_nodes:,}",
            f"{stats.num_edges:,}",
            f"{stats.time_span_days:.0f}",
            f"1/{spec.paper_edges // max(1, stats.num_edges):,}" if stats.num_edges < spec.paper_edges else "1",
        ])
    result.notes.append(
        "synthetic twins match node/edge/time-span shape at reduced scale; "
        "see DESIGN.md §1 for the substitution argument"
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — degree skew and per-node counting time
# ---------------------------------------------------------------------------

def run_fig9(
    dataset: str = "wikitalk",
    delta: float = DELTA_DEFAULT,
    scale: float = 1.0,
    sample_per_bucket: int = 50,
) -> ExperimentResult:
    """Regenerate Fig. 9: degree distribution and per-node scan time.

    Nodes are bucketed by degree decade; each bucket reports its node
    count (Fig. 9a) and the mean FAST scan time over a sample of its
    nodes (Fig. 9b) — demonstrating that the few highest-degree nodes
    dominate total counting time, the imbalance HARE's intra-node mode
    exists to fix.
    """
    graph = load_dataset(dataset, scale)
    graph.ensure_pair_index()
    buckets: Dict[int, List[int]] = {}
    for node in range(graph.num_nodes):
        degree = graph.degree(node)
        if degree == 0:
            continue
        decade = int(math.log10(degree)) if degree >= 1 else 0
        buckets.setdefault(decade, []).append(node)

    result = ExperimentResult(
        experiment="fig9",
        title=f"Fig. 9: degree skew on {dataset} (δ={delta})",
        headers=["degree bucket", "#nodes", "mean scan time (ms)", "est. bucket total (s)"],
    )
    bucket_totals = []
    for decade in sorted(buckets):
        nodes = buckets[decade]
        sample = nodes[:: max(1, len(nodes) // sample_per_bucket)][:sample_per_bucket]
        star_data = [0] * 24
        pair_data = [0] * 8
        tri_data = [0] * 24
        start = time.perf_counter()
        for node in sample:
            star_scan(graph.node_sequence(node), delta, star_data, pair_data)
            tri_scan(graph, node, delta, tri_data)
        elapsed = time.perf_counter() - start
        mean_ms = 1000 * elapsed / len(sample)
        bucket_total = mean_ms / 1000 * len(nodes)
        bucket_totals.append(bucket_total)
        label = f"10^{decade}..10^{decade + 1}"
        result.rows.append([label, len(nodes), round(mean_ms, 4), round(bucket_total, 3)])
    if bucket_totals:
        top_share = bucket_totals[-1] / max(sum(bucket_totals), 1e-12)
        result.notes.append(
            f"highest-degree bucket holds {100 * top_share:.0f}% of estimated scan time "
            "(the paper's observation that top-degree nodes dominate)"
        )
    result.data["bucket_totals"] = bucket_totals
    return result


# ---------------------------------------------------------------------------
# Fig. 10 — accuracy: FAST vs EX count matrices
# ---------------------------------------------------------------------------

def run_fig10(
    datasets: Sequence[str] = FIG10_DATASETS,
    delta: float = DELTA_DEFAULT,
    scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate Fig. 10: the 6×6 count matrices of FAST and EX.

    The paper's claim is exactness — identical matrices from both
    algorithms on every dataset; the driver verifies equality and
    renders both grids.
    """
    result = ExperimentResult(
        experiment="fig10",
        title=f"Fig. 10: motif count matrices, FAST vs EX (δ={delta})",
        headers=["dataset", "total instances", "FAST == EX"],
    )
    all_equal = True
    for name in datasets:
        graph = load_dataset(name, scale)
        fast = count_motifs(graph, delta, algorithm="fast")
        ex = count_motifs(graph, delta, algorithm="ex")
        equal = fast == ex
        all_equal = all_equal and equal
        result.rows.append([name, f"{fast.total():,}", str(equal)])
        result.blocks.append(fast.to_text(f"[{name}] FAST counts"))
        result.blocks.append(ex.to_text(f"[{name}] EX counts"))
    result.data["all_equal"] = all_equal
    result.notes.append("matrices must be identical: both algorithms are exact")
    return result


# ---------------------------------------------------------------------------
# Table III — single-thread runtime of every algorithm
# ---------------------------------------------------------------------------

def run_table3(
    datasets: Optional[Sequence[str]] = None,
    delta: float = DELTA_DEFAULT,
    scale: float = 1.0,
    repeat: int = 1,
) -> ExperimentResult:
    """Regenerate Table III: single-threaded runtime, all 8 columns.

    Columns follow the paper: EX / EWS / FAST (+speedup over EX),
    BT-Pair / BTS-Pair / FAST-Pair (+speedup over BT-Pair),
    2SCENT-Tri / FAST-Tri (+speedup over 2SCENT-Tri).
    """
    names = list(datasets or REGISTRY)
    result = ExperimentResult(
        experiment="table3",
        title=f"Table III: running time in seconds (δ={delta}, 1 worker)",
        headers=[
            "dataset", "EX", "EWS", "FAST", "spd",
            "BT-Pair", "BTS-Pair", "FAST-Pair", "spd",
            "2SCENT-Tri", "FAST-Tri", "spd",
        ],
    )
    speedups = {"fast": [], "pair": [], "tri": []}
    for name in names:
        graph = load_dataset(name, scale)
        graph.ensure_pair_index()
        timer = BenchTimer(repeat=repeat)
        timer.measure("EX", lambda: ex_count(graph, delta))
        timer.measure("EWS", lambda: ews_count(graph, delta, p=0.01, q=1.0))
        timer.measure("FAST", lambda: count_motifs(graph, delta))
        timer.measure("BT-Pair", lambda: bt_count_pairs(graph, delta))
        timer.measure(
            "BTS-Pair",
            lambda: bts_count_pairs(graph, delta, q=0.3, exact_when_full=False),
        )
        timer.measure("FAST-Pair", lambda: count_star_pair(graph, delta))
        timer.measure(
            "2SCENT-Tri",
            lambda: twoscent_count_cycles(graph, delta, enumerate_all_lengths=True),
        )
        timer.measure("FAST-Tri", lambda: count_triangle(graph, delta))
        s_fast = timer.speedup("EX", "FAST")
        s_pair = timer.speedup("BT-Pair", "FAST-Pair")
        s_tri = timer.speedup("2SCENT-Tri", "FAST-Tri")
        speedups["fast"].append(s_fast)
        speedups["pair"].append(s_pair)
        speedups["tri"].append(s_tri)
        t = timer.timings
        result.rows.append([
            name,
            t["EX"], t["EWS"], t["FAST"], f"{s_fast:.1f}x",
            t["BT-Pair"], t["BTS-Pair"], t["FAST-Pair"], f"{s_pair:.1f}x",
            t["2SCENT-Tri"], t["FAST-Tri"], f"{s_tri:.1f}x",
        ])
    for key, label in (("fast", "FAST vs EX"), ("pair", "FAST-Pair vs BT-Pair"),
                       ("tri", "FAST-Tri vs 2SCENT-Tri")):
        values = speedups[key]
        if values:
            result.notes.append(
                f"{label}: mean {sum(values) / len(values):.1f}x, max {max(values):.1f}x"
            )
    result.data["speedups"] = speedups
    return result


# ---------------------------------------------------------------------------
# Fig. 11 — parallel scaling
# ---------------------------------------------------------------------------

def run_fig11(
    datasets: Sequence[str] = FIG11_DATASETS,
    delta: float = DELTA_DEFAULT,
    workers: Sequence[int] = (1, 2, 4),
    scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate Fig. 11: runtime vs worker count.

    Four series per dataset, as in the paper's panels: HARE vs
    parallel EX (left axis) and HARE-Pair vs BTS-Pair (right axis).
    The container exposes 2 physical cores, so the expected shape is:
    HARE improves to ~2 workers then flattens/degrades gently, while
    EX's slab overhead makes it degrade faster past the core count.
    """
    headers = ["dataset"]
    for w in workers:
        headers += [f"HARE({w})", f"EX({w})", f"HARE-Pair({w})", f"BTS-Pair({w})"]
    result = ExperimentResult(
        experiment="fig11",
        title=f"Fig. 11: running time (s) vs #workers (δ={delta})",
        headers=headers,
    )
    series: Dict[str, Dict[str, List[float]]] = {}
    for name in datasets:
        graph = load_dataset(name, scale)
        graph.ensure_pair_index()
        row: List[object] = [name]
        data: Dict[str, List[float]] = {"HARE": [], "EX": [], "HARE-Pair": [], "BTS-Pair": []}
        for w in workers:
            hare = time_call(lambda: hare_count(graph, delta, workers=w))
            exp = time_call(lambda: ex_count(graph, delta, workers=w))
            hare_pair = time_call(lambda: hare_star_pair(graph, delta, workers=w))
            bts = time_call(
                lambda: bts_count_pairs(
                    graph, delta, q=0.3, exact_when_full=False, workers=w
                )
            )
            row += [hare, exp, hare_pair, bts]
            data["HARE"].append(hare)
            data["EX"].append(exp)
            data["HARE-Pair"].append(hare_pair)
            data["BTS-Pair"].append(bts)
        result.rows.append(row)
        series[name] = data
    result.data["series"] = series
    result.data["workers"] = list(workers)
    result.notes.append(
        "container exposes 2 physical cores with measured ~1.4x 2-process "
        "efficiency; absolute speedups are bounded accordingly (EXPERIMENTS.md)"
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 12(a) — sensitivity to δ
# ---------------------------------------------------------------------------

def run_fig12a(
    datasets: Sequence[str] = FIG12A_DATASETS,
    deltas: Sequence[float] = FIG12A_DELTAS,
    workers: int = 2,
    scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate Fig. 12(a): runtime vs δ for HARE and EX.

    Expected shape (paper): EX is almost flat in δ (its window
    counters do O(1) work per event regardless of δ), HARE grows
    mildly (FAST's scans are linear in the δ-window size d^δ).
    """
    headers = ["algorithm/dataset"] + [f"δ={int(d)}" for d in deltas]
    result = ExperimentResult(
        experiment="fig12a",
        title=f"Fig. 12(a): running time (s) vs δ (workers={workers})",
        headers=headers,
    )
    series: Dict[str, List[float]] = {}
    for name in datasets:
        graph = load_dataset(name, scale)
        graph.ensure_pair_index()
        # One registry sweep covers the whole (algorithm × δ) panel;
        # each result carries its own elapsed_seconds.
        sweep = count_motifs_sweep(
            graph, list(deltas), algorithms=("fast", "ex"), workers=workers
        )
        hare_timings = sweep.elapsed("fast")
        ex_timings = sweep.elapsed("ex")
        result.rows.append([f"HARE-{name}"] + list(hare_timings))
        result.rows.append([f"EX-{name}"] + list(ex_timings))
        series[f"HARE-{name}"] = hare_timings
        series[f"EX-{name}"] = ex_timings
    result.data["series"] = series
    return result


# ---------------------------------------------------------------------------
# Fig. 12(b) — sensitivity to the degree threshold thrd
# ---------------------------------------------------------------------------

def run_fig12b(
    dataset: str = "wikitalk",
    delta: float = DELTA_DEFAULT,
    workers: Sequence[int] = (1, 2, 4),
    scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate Fig. 12(b): runtime vs thrd and scheduling mode.

    Configurations: the paper's default thrd (min of top-20 degrees)
    and multiples of it under dynamic scheduling, "dynamic" with no
    intra-node splitting, and "without thrd" = static schedule with no
    intra-node splitting.
    """
    graph = load_dataset(dataset, scale)
    graph.ensure_pair_index()
    base_thrd = default_degree_threshold(graph, 20)
    top = top_k_degrees(graph, 5)
    configs: List[Tuple[str, Dict[str, object]]] = [
        (f"thrd={base_thrd} (top-20 default)", {"thrd": base_thrd, "schedule": "dynamic"}),
        (f"thrd={base_thrd * 2}", {"thrd": base_thrd * 2, "schedule": "dynamic"}),
        (f"thrd={base_thrd * 4}", {"thrd": base_thrd * 4, "schedule": "dynamic"}),
        (f"thrd={max(top) + 1} (no heavy nodes)", {"thrd": max(top) + 1, "schedule": "dynamic"}),
        ("dynamic, no intra-node", {"thrd": float("inf"), "schedule": "dynamic"}),
        ("without thrd (static)", {"thrd": float("inf"), "schedule": "static"}),
    ]
    headers = ["configuration"] + [f"workers={w}" for w in workers]
    result = ExperimentResult(
        experiment="fig12b",
        title=f"Fig. 12(b): running time (s) vs thrd on {dataset} (δ={delta})",
        headers=headers,
    )
    series: Dict[str, List[float]] = {}
    for label, kwargs in configs:
        row: List[object] = [label]
        timings = []
        for w in workers:
            elapsed = time_call(lambda: hare_count(graph, delta, workers=w, **kwargs))
            row.append(elapsed)
            timings.append(elapsed)
        result.rows.append(row)
        series[label] = timings
    result.data["series"] = series
    result.data["base_thrd"] = base_thrd
    result.notes.append(
        "hierarchical (thrd) + dynamic should beat 'without thrd' static on "
        "this skew-heavy graph at multi-worker settings"
    )
    return result


#: Registry used by the CLI: experiment name -> driver.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
}
