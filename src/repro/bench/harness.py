"""Timing and table-formatting utilities for the benchmark drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ValidationError


def time_call(fn: Callable[[], object], repeat: int = 1) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    if repeat < 1:
        raise ValidationError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class BenchTimer:
    """Collects named timings for one experiment run."""

    repeat: int = 1
    timings: Dict[str, float] = field(default_factory=dict)

    def measure(self, name: str, fn: Callable[[], object]) -> float:
        elapsed = time_call(fn, self.repeat)
        self.timings[name] = elapsed
        return elapsed

    def speedup(self, baseline: str, contender: str) -> float:
        """``baseline time / contender time`` (paper convention)."""
        denominator = self.timings[contender]
        if denominator == 0:
            return float("inf")
        return self.timings[baseline] / denominator


def format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (the harness's uniform output)."""
    text_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        text_rows.append(
            [format_seconds(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [max(len(r[i]) for r in text_rows) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(text_rows[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
