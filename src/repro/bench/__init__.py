"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment has a driver in :mod:`repro.bench.experiments` that
returns a structured result with a ``render()`` text form — the same
rows/series the paper reports.  ``python -m repro bench <name>`` runs
one from the command line; the ``benchmarks/`` directory wraps them
for ``pytest-benchmark``.
"""

from repro.bench.harness import BenchTimer, format_table, time_call
from repro.bench import experiments

__all__ = ["BenchTimer", "format_table", "time_call", "experiments"]
