"""Command-line interface: ``python -m repro`` / ``repro-motifs``.

Subcommands
-----------
``count``
    Count motifs on an edge-list file or a registry dataset.
``stream``
    Replay an edge file (or stdin) through the incremental streaming
    engine, emitting one JSON line per checkpoint.
``generate``
    Materialise a registry dataset to a SNAP-format edge list.
``stats``
    Print Table-II style statistics for a graph.
``bench``
    Run one of the paper's experiments (table2/table3/fig9..fig12b).
``serve``
    Run the resident motif-counting daemon: named graphs published to
    shared memory once, compatible requests batched, typed protocol
    errors (see ``docs/serving.md``).
``worker``
    Run one node of a counting cluster: a TCP daemon that counts
    canonical edge ranges of packed graphs for a ``count --cluster``
    coordinator (see ``docs/distributed.md``).
``query``
    Query a running ``serve`` daemon over its unix socket.
``list-datasets``
    Show the sixteen registry datasets.
``list-algorithms``
    Show every registered counting algorithm and its capabilities.

Algorithm choices, sampling flags, and the help epilog all come from
the pluggable registry (:mod:`repro.core.registry`), so a newly
registered algorithm is immediately selectable here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS
from repro.core.api import CATEGORIES, count_motifs
from repro.core.registry import (
    BACKENDS,
    StreamRequest,
    algorithm_specs,
    available_algorithms,
    open_stream,
    streaming_algorithms,
)
from repro.errors import ReproError
from repro.graph.datasets import REGISTRY, load_dataset
from repro.graph.edgelist import iter_edge_lines, iter_edge_records, load_edgelist, save_edgelist
from repro.graph.statistics import compute_statistics
from repro.graph.temporal_graph import TemporalGraph


def _add_graph_source(parser: argparse.ArgumentParser, *, required: bool = True) -> None:
    group = parser.add_mutually_exclusive_group(required=required)
    group.add_argument("--input", help="SNAP-format edge list file (u v t per line)")
    group.add_argument("--dataset", choices=sorted(REGISTRY), help="registry dataset name")
    group.add_argument("--source", help="packed binary graph file (`repro pack` output), "
                                        "opened zero-copy through mmap")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (registry datasets only, default 1.0)",
    )


def _load_graph(args: argparse.Namespace) -> TemporalGraph:
    if args.input:
        return load_edgelist(args.input)
    if getattr(args, "source", None):
        from repro.storage import open_packed

        return open_packed(args.source).graph
    return load_dataset(args.dataset, args.scale)


def _parse_boundaries(text: Optional[str]) -> Optional[tuple]:
    """``"100,2000,35000"`` → interior cut-point tuple (None passthrough)."""
    if text is None:
        return None
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ReproError(
            f"--boundaries expects comma-separated edge ids, got {text!r}"
        ) from None


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.core.registry import get_algorithm

    # A packed source is threaded through the request itself (the
    # registry opens it), so provenance lands in result.meta["source"].
    graph = None if args.source else _load_graph(args)
    # An explicit pool for pool-runtime parallel counts: same results,
    # but the pool's runtime counters (jobs, batches, jobs_aborted,
    # worker_restarts) become reportable below.
    pool = None
    spec = get_algorithm(args.algorithm)
    if args.workers > 1 and spec.pool_runtime and args.cluster is None:
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(args.workers, start_method=args.start_method)
    try:
        counts = count_motifs(
            graph,
            args.delta,
            algorithm=args.algorithm,
            categories=args.categories,
            workers=args.workers,
            thrd=args.thrd,
            schedule=args.schedule,
            seed=args.seed,
            n_samples=args.n_samples,
            backend=args.backend,
            pool=pool,
            start_method=args.start_method,
            source=args.source,
            shard_budget=args.shard_budget,
            num_shards=args.num_shards,
            shard_boundaries=_parse_boundaries(args.boundaries),
            cluster=args.cluster,
        )
        runtime_stats = {} if pool is None else {"pool": dict(pool.stats)}
    finally:
        if pool is not None:
            pool.close()
    if "cluster" in counts.meta:
        runtime_stats["cluster"] = counts.meta["cluster"]
    dominant = counts.dominant_phase()
    if args.json:
        payload = {
            "algorithm": counts.algorithm,
            "delta": args.delta,
            "backend": counts.backend,
            "elapsed_seconds": counts.elapsed_seconds,
            "phase_seconds": dict(counts.phase_seconds),
            "dominant_phase": None if dominant is None else dominant[0],
            "is_exact": counts.is_exact,
            "total": counts.total(),
            "counts": counts.per_motif(),
        }
        if counts.stderr is not None:
            payload["stderr"] = {
                name: counts.stderr_of(name) for name in counts.per_motif()
            }
            payload["n_samples"] = counts.meta.get("n_samples")
            payload["total_stderr"] = counts.meta.get("total_stderr")
        if "coverage" in counts.meta:
            payload["coverage"] = counts.meta["coverage"]
        for key in ("source", "sharding", "shards", "halo_edges"):
            if key in counts.meta:
                payload[key] = counts.meta[key]
        if runtime_stats:
            payload["runtime"] = runtime_stats
        print(json.dumps(payload, indent=2))
    else:
        print(counts.to_text(
            f"{counts.algorithm} δ={args.delta} "
            f"total={counts.total():,} ({counts.elapsed_seconds:.2f}s)"
        ))
        if dominant is not None:
            phases = ", ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in sorted(counts.phase_seconds.items())
            )
            print(
                f"backend: {counts.backend}; phases: {phases} "
                f"(dominant: {dominant[0]})"
            )
        if "coverage" in counts.meta:
            print(f"coverage: {counts.meta['coverage']}")
        if counts.meta.get("sharding") == "halo-union":
            print(
                f"sharding: halo-union over {counts.meta['shards']} shard(s), "
                f"{counts.meta['halo_edges']:,} halo edges "
                f"(budget {counts.meta['shard_budget']:,})"
            )
        cluster_meta = counts.meta.get("cluster")
        if isinstance(cluster_meta, dict) and "workers" in cluster_meta:
            c = cluster_meta
            print(
                f"cluster: {len(c.get('workers', []))} worker(s), "
                f"{sum(c.get('jobs', {}).values())} job(s), "
                f"{c.get('retries', 0)} retried, "
                f"{c.get('speculative', 0)} speculative, "
                f"{c.get('workers_readmitted', 0)} readmitted, "
                f"{c.get('bytes_shipped', 0):,} bytes shipped"
            )
        if not counts.is_exact:
            # Grid cells of one replicate are correlated, so the CI on
            # the total uses the replicate-total stderr the dispatcher
            # records, not per-cell stderrs added in quadrature.  A
            # single draw has no stderr: say so instead of printing a
            # zero-width interval.
            total_stderr = counts.meta.get("total_stderr")
            line = (
                f"sampling estimate over {counts.meta.get('n_samples', 1)} "
                "replicate(s); "
            )
            if total_stderr is None:
                line += "CI unavailable (single replicate)"
            else:
                se = float(total_stderr)
                total = float(counts.total())
                line += (
                    f"95% CI on total: "
                    f"[{total - 1.96 * se:,.1f}, {total + 1.96 * se:,.1f}]"
                )
            print(line)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import itertools

    request = StreamRequest(
        delta=args.delta,
        window=args.window,
        algorithm=args.algorithm,
        categories=args.categories,
        backend=args.backend,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        start_method=args.start_method,
    )
    if args.resume and not args.checkpoint_dir:
        raise ReproError("stream --resume requires --checkpoint-dir DIR")
    engine = None
    skip = 0
    if args.resume:
        from repro.core.streaming import StreamingMotifEngine
        from repro.storage.checkpoint import has_checkpoint

        if has_checkpoint(args.checkpoint_dir):
            # Validates the journal + snapshot before any state is
            # built; corruption raises CheckpointCorruptError here.
            engine = StreamingMotifEngine.resume_from(
                args.checkpoint_dir, request=request
            )
            skip = engine.records_consumed()
        # else: nothing committed yet — a run killed before its first
        # checkpoint resumes from scratch.
    if engine is None:
        engine = open_stream(request)
    if args.input == "-":
        edges = iter_edge_lines(sys.stdin, origin="<stdin>")
    else:
        edges = iter_edge_records(args.input)
    if skip:
        edges = itertools.islice(edges, skip, None)
    checkpoint_to = getattr(engine, "checkpoint_to", None)
    try:
        for cp in engine.replay(edges, batch_edges=args.batch_edges):
            print(json.dumps(cp.as_dict(per_motif=args.per_motif)), flush=True)
            if args.checkpoint_dir and checkpoint_to is not None:
                checkpoint_to(args.checkpoint_dir)
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    import os

    from repro.storage import pack_graph

    graph = _load_graph(args)
    header = pack_graph(graph, args.out, layout=args.layout)
    size = os.path.getsize(args.out)
    print(
        f"packed {header['num_edges']:,} edges / {header['num_nodes']:,} nodes "
        f"-> {args.out} ({size:,} bytes, layout={header['layout']}, "
        f"{len(header['sections'])} sections)"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, args.scale)
    save_edgelist(graph, args.out)
    print(f"wrote {graph.num_edges} edges / {graph.num_nodes} nodes to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.runtime:
        if not args.cluster:
            raise ReproError("stats --runtime requires --cluster host:port,...")
        from repro.distributed import cluster_runtime_stats

        print(json.dumps(cluster_runtime_stats(args.cluster), indent=2, sort_keys=True))
        return 0
    if not (args.input or args.dataset or getattr(args, "source", None)):
        raise ReproError("stats requires one of --input / --dataset / --source")
    graph = _load_graph(args)
    stats = compute_statistics(graph)
    print(f"nodes:            {stats.num_nodes:,}")
    print(f"temporal edges:   {stats.num_edges:,}")
    print(f"time span:        {stats.time_span:,} ({stats.time_span_days:.1f} days)")
    print(f"max degree:       {stats.max_degree:,}")
    print(f"mean degree:      {stats.mean_degree:.2f}")
    print(f"median degree:    {stats.median_degree:.1f}")
    print(f"top-10 deg share: {stats.top10_degree_share:.1%}")
    print(f"static pairs:     {stats.num_static_pairs:,}")
    print(f"reciprocity:      {stats.reciprocity:.1%}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.experiment]
    scale = 0.25 if args.quick else args.scale
    result = driver(scale=scale)
    text = result.render()
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"\nwritten to {args.out}")
    return 0


def _parse_graph_spec(spec: str) -> tuple:
    """Split a ``name=source[@cluster]`` CLI graph spec.

    ``source`` is a path or ``dataset[:scale]``; an optional trailing
    ``@host:port,...`` binds the graph to a worker cluster (the suffix
    only counts as a cluster when it parses as one, so paths containing
    ``@`` keep working).
    """
    name, sep, source = spec.partition("=")
    if not sep or not name or not source:
        raise ReproError(
            f"--graph expects name=<edgelist path or dataset[:scale]>"
            f"[@host:port,...], got {spec!r}"
        )
    head, at, tail = source.rpartition("@")
    if at:
        from repro.distributed.protocol import parse_cluster

        try:
            parse_cluster(tail)
        except ReproError:
            pass  # not a cluster suffix; the whole string is the source
        else:
            return name, head, tail
    return name, source, None


def _load_catalog_source(source: str):
    """A ``--graph`` source: dataset name (``wiki[:scale]``), packed file, or path."""
    name, _, scale = source.partition(":")
    if name in REGISTRY:
        return load_dataset(name, float(scale) if scale else 1.0)
    from repro.storage import is_packed_file, open_packed

    if is_packed_file(source):
        return open_packed(source)
    return load_edgelist(source)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import MotifService, ServiceConfig, run_daemon

    config = ServiceConfig(
        workers=args.workers,
        start_method=args.start_method,
        batch_window=args.batch_window,
        max_pending=args.max_pending,
        tenant_quota=args.tenant_quota,
        default_timeout=args.default_timeout,
        idle_timeout=args.idle_timeout,
    )
    service = MotifService(config)
    try:
        for spec in args.graph:
            name, source, cluster = _parse_graph_spec(spec)
            graph = _load_catalog_source(source)
            service.add_graph(name, graph, cluster=cluster)
            where = f" @ cluster {cluster}" if cluster else ""
            print(
                f"catalog: {name} <- {source} "
                f"({graph.num_nodes:,} nodes, {graph.num_edges:,} edges)"
                f"{where}",
                flush=True,
            )
        where = []
        if args.socket:
            where.append(f"unix:{args.socket}")
        if args.http_port is not None:
            where.append(f"http://{args.http_host}:{args.http_port}")
        print(f"serving on {', '.join(where)} (workers={args.workers})", flush=True)
        run_daemon(
            service,
            socket_path=args.socket,
            http_host=args.http_host,
            http_port=args.http_port,
        )
    finally:
        service.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(args.socket, timeout=args.connect_timeout) as client:
        if args.op == "ping":
            print(json.dumps(client.ping()))
            return 0
        if args.op == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.op == "catalog":
            print(json.dumps(client.catalog(), indent=2))
            return 0
        if args.op == "algorithms":
            print(json.dumps(client.algorithms(), indent=2))
            return 0
        if args.graph is None or args.delta is None:
            raise ReproError("query count requires --graph and --delta")
        counts = client.count(
            args.graph,
            args.delta,
            algorithm=args.algorithm,
            categories=args.categories,
            backend=args.backend,
            seed=args.seed,
            n_samples=args.n_samples,
            params=dict(
                (key, float(value))
                for key, _, value in (p.partition("=") for p in args.param)
            ),
            tenant=args.tenant,
            timeout=args.timeout,
        )
        if args.json:
            print(json.dumps({
                "algorithm": counts.algorithm,
                "delta": counts.delta,
                "is_exact": counts.is_exact,
                "total": counts.total(),
                "elapsed_seconds": counts.elapsed_seconds,
                "counts": counts.per_motif(),
                "meta": counts.meta,
            }, indent=2))
        else:
            print(counts.to_text(
                f"{counts.algorithm} δ={counts.delta} total={counts.total():,}"
            ))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import run_worker

    return run_worker(
        args.host,
        args.port,
        workers=args.workers,
        start_method=args.start_method,
        sources=args.source or [],
        delay=args.delay,
    )


def _cmd_list_datasets(_: argparse.Namespace) -> int:
    for name, spec in REGISTRY.items():
        print(
            f"{name:16s} {spec.paper_name:16s} paper: {spec.paper_nodes:>10,} nodes "
            f"{spec.paper_edges:>12,} edges | twin: {spec.gen_nodes:>7,} nodes "
            f"{spec.gen_edges:>8,} edges | {spec.description}"
        )
    return 0


def _cmd_list_algorithms(_: argparse.Namespace) -> int:
    for spec in algorithm_specs():
        print(spec.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    algorithms = available_algorithms()
    epilog = "registered algorithms:\n" + "\n".join(
        f"  {spec.describe()}" for spec in algorithm_specs()
    )
    parser = argparse.ArgumentParser(
        prog="repro-motifs",
        description="HARE/FAST temporal motif counting (ICDE 2022 reproduction)",
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="count δ-temporal motifs")
    _add_graph_source(p_count)
    p_count.add_argument("--delta", type=float, required=True, help="time window δ")
    p_count.add_argument("--algorithm", choices=algorithms, default="fast")
    p_count.add_argument("--categories", choices=CATEGORIES, default="all")
    p_count.add_argument("--workers", type=int, default=1)
    p_count.add_argument("--thrd", type=float, default=None,
                         help="HARE degree threshold (default: paper's top-20 rule)")
    p_count.add_argument("--schedule", choices=("dynamic", "static"), default="dynamic")
    p_count.add_argument("--seed", type=int, default=None,
                         help="RNG seed for sampling algorithms (default 0)")
    p_count.add_argument("--n-samples", type=int, default=None,
                         help="sampling replicates to average (sampling "
                              "algorithms only; default 3, stderr across them)")
    p_count.add_argument("--backend", choices=BACKENDS, default="auto",
                         help="execution backend: columnar (vectorized NumPy "
                              "kernels), python (interpreted loops), or auto "
                              "(fastest the algorithm implements; identical "
                              "counts either way)")
    p_count.add_argument("--start-method", choices=("fork", "spawn"), default=None,
                         help="process start method for parallel runs "
                              "(default: REPRO_START_METHOD env var, then the "
                              "platform default; spawn routes through the "
                              "shared-memory worker pool)")
    p_count.add_argument("--shard-budget", type=int, default=None,
                         help="out-of-core mode: maximum own edges per time "
                              "shard; exact algorithms count shard-by-shard "
                              "with δ-overlap halos (identical counts, peak "
                              "memory proportional to the budget)")
    p_count.add_argument("--num-shards", type=int, default=None,
                         help="alternative cut mode: split the edge sequence "
                              "into this many near-equal shards (at most one "
                              "of --shard-budget / --num-shards / --boundaries)")
    p_count.add_argument("--boundaries", default=None, metavar="C1,C2,...",
                         help="explicit interior canonical-edge-id cut points "
                              "for the shard-halo union (strictly increasing)")
    p_count.add_argument("--cluster", default=None, metavar="HOST:PORT,...",
                         help="distribute the shard plan across these "
                              "`repro worker` daemons (exact algorithms; "
                              "counts bit-identical to the serial path)")
    p_count.add_argument("--json", action="store_true", help="emit JSON")
    p_count.set_defaults(func=_cmd_count)

    p_pack = sub.add_parser(
        "pack",
        help="pack a graph into the binary columnar format",
        description="Write a graph to the versioned binary columnar "
                    "format (see docs/storage.md): parse and "
                    "columnar-build cost are paid once, then "
                    "`count --source FILE` reopens it zero-copy "
                    "through mmap.",
    )
    _add_graph_source(p_pack)
    p_pack.add_argument("--out", required=True, help="output file (conventionally .rgz)")
    p_pack.add_argument("--layout", choices=("full", "edges"), default="full",
                        help="full (default): edge columns + every derived "
                             "columnar array; edges: smallest file, columnar "
                             "arrays rebuilt lazily on open")
    p_pack.set_defaults(func=_cmd_pack)

    p_stream = sub.add_parser(
        "stream",
        help="replay an edge stream, emitting JSON-line checkpoints",
        description="Replay a SNAP-format edge file (or stdin with "
                    "--input -) through the incremental streaming engine. "
                    "Emits one JSON line per checkpoint with running "
                    "totals, window bookkeeping and per-phase timings "
                    "(ingest/expire/count).",
    )
    p_stream.add_argument("--input", required=True,
                          help="SNAP-format edge list file, or '-' for stdin")
    p_stream.add_argument("--delta", type=float, required=True, help="time window δ")
    p_stream.add_argument("--window", type=float, default=None,
                          help="sliding-window width W: keep edges with "
                               "t >= t_latest - W (default: unbounded, no expiry)")
    p_stream.add_argument("--checkpoint-every", type=int, default=10_000,
                          help="edges between emitted checkpoints (default 10000)")
    p_stream.add_argument("--batch-edges", type=int, default=None,
                          help="ingest micro-batch size (default: one batch "
                               "per checkpoint interval)")
    p_stream.add_argument("--algorithm", choices=streaming_algorithms(), default="fast",
                          help="streaming-capable algorithm (default fast)")
    p_stream.add_argument("--categories", choices=CATEGORIES, default="all")
    p_stream.add_argument("--backend", choices=BACKENDS, default="auto",
                          help="kernel backend per dirty slice; auto picks "
                               "python for tiny slices, columnar for large ones")
    p_stream.add_argument("--workers", type=int, default=1,
                          help="HARE workers for large dirty ranges (micro-batch "
                               "parallelism, served by a resident shared-memory "
                               "worker pool)")
    p_stream.add_argument("--start-method", choices=("fork", "spawn"), default=None,
                          help="start method for the resident worker pool "
                               "(default: REPRO_START_METHOD env var, then the "
                               "platform default)")
    p_stream.add_argument("--per-motif", action="store_true",
                          help="include the full 36-motif count dict per checkpoint")
    p_stream.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="commit a crash-safe checkpoint (canonical .rgz "
                               "window snapshot + CRC'd journal) into DIR after "
                               "every emitted checkpoint")
    p_stream.add_argument("--resume", action="store_true",
                          help="resume from the checkpoint committed in "
                               "--checkpoint-dir (validated before any state is "
                               "built; corruption raises a typed error) and skip "
                               "the already-consumed input prefix; starts fresh "
                               "when DIR holds no checkpoint yet")
    p_stream.set_defaults(func=_cmd_stream)

    p_gen = sub.add_parser("generate", help="write a dataset twin to a file")
    p_gen.add_argument("--dataset", choices=sorted(REGISTRY), required=True)
    p_gen.add_argument("--scale", type=float, default=1.0)
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_stats = sub.add_parser("stats", help="print graph or cluster runtime statistics")
    _add_graph_source(p_stats, required=False)
    p_stats.add_argument("--runtime", action="store_true",
                         help="print live runtime counters instead of graph "
                              "statistics (requires --cluster)")
    p_stats.add_argument("--cluster", default=None, metavar="HOST:PORT,...",
                         help="worker daemons to poll with --runtime")
    p_stats.set_defaults(func=_cmd_stats)

    p_bench = sub.add_parser("bench", help="run a paper experiment")
    p_bench.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p_bench.add_argument("--scale", type=float, default=1.0)
    p_bench.add_argument("--quick", action="store_true", help="scale 0.25 shortcut")
    p_bench.add_argument("--out", help="also write the rendered result to a file")
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident motif-counting daemon",
        description="Serve motif counts for a catalog of named graphs: "
                    "graphs are published to shared memory once, "
                    "compatible concurrent requests are batched into "
                    "single pool runs, and repeats are answered from "
                    "the result cache.  See docs/serving.md.",
    )
    p_serve.add_argument("--graph", action="append", default=[],
                         metavar="NAME=SOURCE[@CLUSTER]",
                         help="catalog entry: NAME=<edge-list path>, "
                              "NAME=<packed file>, or NAME=<dataset[:scale]> "
                              "(repeatable); a trailing @host:port,... binds "
                              "exact counts on it to a worker cluster")
    p_serve.add_argument("--socket", default=None,
                         help="unix socket path for the JSONL transport")
    p_serve.add_argument("--http-host", default="127.0.0.1")
    p_serve.add_argument("--http-port", type=int, default=None,
                         help="TCP port for the HTTP transport (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes in the service pool (default 2)")
    p_serve.add_argument("--start-method", choices=("fork", "spawn"), default=None)
    p_serve.add_argument("--batch-window", type=float, default=0.002,
                         help="seconds to wait for coalescable requests "
                              "(default 0.002)")
    p_serve.add_argument("--max-pending", type=int, default=64,
                         help="bound on pending request groups before "
                              "429-style rejection (default 64)")
    p_serve.add_argument("--tenant-quota", type=int, default=16,
                         help="concurrent in-flight requests per tenant "
                              "(default 16)")
    p_serve.add_argument("--default-timeout", type=float, default=30.0,
                         help="deadline for requests without a timeout "
                              "(seconds, default 30)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         help="suspend idle pool workers after this many "
                              "seconds (default: keep them)")
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="run one node of a counting cluster",
        description="Serve shard-counting jobs over TCP for a "
                    "`count --cluster` coordinator: opens local packed "
                    "graphs zero-copy, counts the canonical edge ranges "
                    "it is handed (or edge slices shipped inline), and "
                    "reports runtime counters via `stats --runtime`.  "
                    "See docs/distributed.md.",
    )
    p_worker.add_argument("--host", default="127.0.0.1")
    p_worker.add_argument("--port", type=int, default=0,
                          help="TCP port (0 = ephemeral; the bound address is "
                               "printed on startup)")
    p_worker.add_argument("--workers", type=int, default=1,
                          help="resident pool size for pool-runtime algorithms "
                               "(default 1: serial in-process, no pool)")
    p_worker.add_argument("--start-method", choices=("fork", "spawn"), default=None)
    p_worker.add_argument("--source", action="append", default=[],
                          help="packed graph file to open eagerly (repeatable; "
                               "coordinators probe lazily either way)")
    p_worker.add_argument("--delay", type=float, default=0.0,
                          help=argparse.SUPPRESS)  # fault-injection testing aid
    p_worker.set_defaults(func=_cmd_worker)

    p_query = sub.add_parser(
        "query", help="query a running serve daemon over its unix socket"
    )
    p_query.add_argument("--socket", required=True, help="daemon unix socket path")
    p_query.add_argument("--op", choices=("count", "ping", "stats", "catalog", "algorithms"),
                         default="count")
    p_query.add_argument("--graph", default=None, help="catalog graph name")
    p_query.add_argument("--delta", type=float, default=None, help="time window δ")
    p_query.add_argument("--algorithm", choices=algorithms, default="fast")
    p_query.add_argument("--categories", choices=CATEGORIES, default="all")
    p_query.add_argument("--backend", choices=BACKENDS, default="auto")
    p_query.add_argument("--seed", type=int, default=None)
    p_query.add_argument("--n-samples", type=int, default=None)
    p_query.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                         help="algorithm parameter override (repeatable)")
    p_query.add_argument("--tenant", default="default", help="quota bucket")
    p_query.add_argument("--timeout", type=float, default=None,
                         help="request deadline in seconds (server default "
                              "applies when omitted)")
    p_query.add_argument("--connect-timeout", type=float, default=60.0,
                         help="socket-level timeout (default 60)")
    p_query.add_argument("--json", action="store_true", help="emit JSON")
    p_query.set_defaults(func=_cmd_query)

    p_list = sub.add_parser("list-datasets", help="show the dataset registry")
    p_list.set_defaults(func=_cmd_list_datasets)

    p_algos = sub.add_parser(
        "list-algorithms", help="show registered counting algorithms"
    )
    p_algos.set_defaults(func=_cmd_list_algorithms)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except OSError as exc:
        # Missing/unreadable input files surface as a clean CLI error,
        # not a traceback (count and stream both read user paths).
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _script_main() -> int:  # pragma: no cover - real process entry only
    """Entry for ``python -m repro`` / ``python -m repro.cli``.

    Installs the pool signal handlers so a SIGTERM mid-count cannot
    leak pool workers or ``/dev/shm`` segments (same contract as the
    serve daemon).  Only here, not in :func:`main`: callers embedding
    ``main()`` in a larger process (the test suite, notebooks) must
    not have their global signal disposition rewritten.
    """
    from repro.parallel import install_signal_handlers

    install_signal_handlers()
    return main()


if __name__ == "__main__":
    sys.exit(_script_main())
