"""``python -m repro`` entry point."""

import sys

from repro.cli import _script_main

sys.exit(_script_main())
