"""Motif significance via timestamp-shuffled null models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.api import count_motifs
from repro.core.motifs import ALL_MOTIFS
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


def time_shuffled_null(graph: TemporalGraph, seed: int = 0) -> TemporalGraph:
    """Shuffle timestamps across edges (static structure preserved).

    The classic temporal null model: the multiset of timestamps and
    the static multigraph stay identical, but which edge happens when
    is randomised — so any motif surplus over the null measures real
    temporal correlation, not just topology.
    """
    rng = np.random.default_rng(seed)
    labelled = list(graph.edges())
    times = graph.timestamps.tolist()
    perm = rng.permutation(len(times))
    return TemporalGraph(
        (edge.u, edge.v, times[int(perm[k])]) for k, edge in enumerate(labelled)
    )


@dataclass
class MotifSignificance:
    """Observed counts vs a null-model ensemble."""

    observed: Dict[str, int]
    null_mean: Dict[str, float]
    null_std: Dict[str, float]
    num_null: int

    def zscore(self, name: str) -> float:
        """Z-score of one motif; 0 when the null never varies."""
        std = self.null_std[name]
        if std == 0:
            return 0.0
        return (self.observed[name] - self.null_mean[name]) / std

    def zscores(self) -> Dict[str, float]:
        return {m.name: self.zscore(m.name) for m in ALL_MOTIFS}

    def top(self, k: int = 5) -> List[str]:
        """Motif names with the largest absolute z-scores."""
        scored = sorted(
            self.zscores().items(), key=lambda item: abs(item[1]), reverse=True
        )
        return [name for name, _ in scored[:k]]

    def significance_profile(self) -> Dict[str, float]:
        """The normalised z-vector of Milo et al. (unit L2 norm)."""
        z = self.zscores()
        norm = float(np.linalg.norm(list(z.values())))
        if norm == 0:
            return z
        return {name: value / norm for name, value in z.items()}


def motif_significance(
    graph: TemporalGraph,
    delta: float,
    num_null: int = 10,
    seed: int = 0,
    workers: int = 1,
    algorithm: str = "fast",
) -> MotifSignificance:
    """Compare observed motif counts against timestamp-shuffled nulls.

    Runs ``count_motifs`` once on the input and once per null draw.
    Cost is ``(num_null + 1)`` FAST passes, so it inherits FAST's
    linear scaling — this is exactly the use case that needs a fast
    exact counter.
    """
    if num_null < 1:
        raise ValidationError(f"num_null must be >= 1, got {num_null}")
    observed = count_motifs(graph, delta, workers=workers, algorithm=algorithm)
    null_grids = []
    for draw in range(num_null):
        null_graph = time_shuffled_null(graph, seed=seed + draw)
        null_counts = count_motifs(null_graph, delta, workers=workers, algorithm=algorithm)
        null_grids.append(null_counts.grid.astype(float))
    stacked = np.stack(null_grids)
    mean = stacked.mean(axis=0)
    std = stacked.std(axis=0)
    return MotifSignificance(
        observed=observed.per_motif(),
        null_mean={m.name: float(mean[m.row - 1, m.col - 1]) for m in ALL_MOTIFS},
        null_std={m.name: float(std[m.row - 1, m.col - 1]) for m in ALL_MOTIFS},
        num_null=num_null,
    )
