"""Analysis layer: motif significance against temporal null models.

The motif literature (Milo et al., Kovanen et al.) interprets raw
counts against a randomised *null model*; for temporal motifs the
standard null shuffles timestamps while keeping the static structure,
destroying temporal correlation but nothing else.  This subpackage
provides that null model and per-motif z-scores — the machinery behind
"communication motifs characterise networks" applications the paper's
introduction cites.
"""

from repro.analysis.significance import (
    MotifSignificance,
    motif_significance,
    time_shuffled_null,
)

__all__ = ["MotifSignificance", "motif_significance", "time_shuffled_null"]
