"""The cluster coordinator: shard-plan dispatch across worker daemons.

:class:`ClusterExecutor` takes one exact :class:`CountRequest` past a
single machine.  It computes the PR 7 shard plan
(:class:`~repro.storage.sharded.ShardedGraph`), turns it into
independent **units** — one slice job ``[own_lo, halo_hi)`` with sign
``+1`` and one halo job ``[own_hi, halo_hi)`` with sign ``−1`` per
shard — and farms the units to ``repro worker`` daemons over TCP, one
coordinator thread per worker pulling from a shared queue (dynamic
self-scheduling: slow shards never gate fast ones).

**Placement** is locality-aware: each worker is probed with the
``open`` op; workers holding the coordinator's ``.rgz`` path count by
``(source, lo, hi)`` reference, the rest receive base64 edge-column
slices inline (``count_edges``), with shipped bytes recorded in the
result's ``meta["cluster"]``.

**Fault tolerance with exactly-once accounting.**  A transport failure
(:class:`~repro.errors.WorkerUnavailableError`) marks that worker lost
and returns its in-flight unit to the queue for re-dispatch; when the
queue drains while units are still in flight, idle workers
*speculatively* duplicate the slowest in-flight unit (work-stealing
re-dispatch of the tail).  Both paths are safe because results are
keyed by unit id and the **first completion wins**: a re-run or a
duplicate *replaces nothing and adds nothing* — its grid is either the
recorded answer or it is dropped — so each unit contributes its
``ΣS − ΣH`` term exactly once, whatever the retry history.

**Reconnection.**  A lost worker is not dead forever: its dispatch
thread backs off on the run's :class:`~repro.distributed.health
.RetryPolicy` schedule, re-probes the daemon (``ping`` + ``open``),
and re-admits it mid-run — ``workers_readmitted`` in
``meta["cluster"]`` counts how often that happened.  Only after
``max_attempts`` consecutive failed cycles is the worker *retired*
for the remainder of the run; the run itself fails only when every
worker has retired (or a single unit exhausts its own
:data:`MAX_ATTEMPTS` budget).

**Determinism.**  Units are reduced in canonical shard order on the
coordinator, and every unit's grid is the exact int64 answer of a
canonical slice (the repo-wide invariant: identical counts across
backends, worker counts, and machines).  The reduced total is therefore
bit-identical to the serial :func:`~repro.storage.sharded.sharded_count`
of the same plan — which the equivalence tests and the distributed
bench assert, byte for byte.
"""

from __future__ import annotations

import collections
import json
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.distributed import health as _health
from repro.distributed import protocol
from repro.distributed.health import HealthMonitor, RetryPolicy
from repro.errors import ReproError, WorkerUnavailableError
from repro.storage.sharded import ShardedGraph

#: Dispatch attempts allowed per unit before the run is declared failed.
MAX_ATTEMPTS = 5

#: Copies of one unit allowed in flight at once (1 original + 1 steal).
MAX_INFLIGHT_COPIES = 2

#: Shards planned per worker when the request carries no cut mode:
#: enough units that dynamic self-scheduling can balance uneven shards.
UNITS_PER_WORKER = 4


class WorkerLink:
    """Blocking JSONL client for one worker daemon (TCP sibling of
    :class:`~repro.serve.client.ServeClient`).

    Transport failures — connect refusal, timeout, mid-request
    disconnect, a garbled response — raise
    :class:`~repro.errors.WorkerUnavailableError`, the coordinator's
    retry signal; every such message names the worker's ``host:port``
    and, when the coordinator labelled the link with one, the attempt
    count.  Failures *reported* by the worker re-raise as their typed
    :mod:`repro.errors` classes and are never retried.
    """

    def __init__(
        self,
        address: str,
        *,
        connect_timeout: float = 10.0,
        timeout: Optional[float] = 600.0,
        attempt: Optional[str] = None,
    ) -> None:
        host, port = protocol.split_address(address)
        self.address = address
        self.attempt = attempt
        self._label = (
            f"worker {address!r}" if attempt is None
            else f"worker {address!r} (attempt {attempt})"
        )
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError as exc:
            raise WorkerUnavailableError(
                f"cannot connect to {self._label}: {exc}"
            ) from exc
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._closed = False

    def request(self, message: Dict) -> Dict:
        """One round-trip; returns the ok envelope or raises."""
        data = protocol.encode_message(message)  # symmetric frame cap
        try:
            self._sock.sendall(data)
            line = protocol.read_message_line(self._file)
        except OSError as exc:
            raise WorkerUnavailableError(
                f"{self._label} connection failed: {exc}"
            ) from exc
        if line is None:
            raise WorkerUnavailableError(
                f"{self._label} closed the connection"
            )
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkerUnavailableError(
                f"{self._label} sent invalid JSON: {exc}"
            ) from exc
        return protocol.raise_from_response(envelope)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "WorkerLink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class _Unit:
    """One ΣS − ΣH term: a canonical edge range with a sign."""

    uid: int
    shard: int
    kind: str  # "slice" | "halo"
    lo: int
    hi: int
    sign: int


class ClusterExecutor:
    """See the module docstring.  One executor per distributed count."""

    def __init__(
        self,
        cluster,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        connect_timeout: Optional[float] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        self.addresses = protocol.parse_cluster(cluster)
        # Resolve the module default at construction time so deployment
        # code (and tests) can swap ``health.DEFAULT_RETRY_POLICY``.
        policy = retry_policy or _health.DEFAULT_RETRY_POLICY
        if connect_timeout is not None:
            policy = replace(policy, connect_timeout=connect_timeout)
        if job_timeout is not None:
            policy = replace(policy, op_timeout=job_timeout)
        self.retry_policy = policy
        self.connect_timeout = policy.connect_timeout
        self.job_timeout = policy.op_timeout
        self.health = HealthMonitor(self.addresses)

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Live runtime counters of every reachable worker daemon.

        Each reachable worker's payload gains a ``health`` entry (state
        plus ping round trip); an unreachable worker reports its typed
        transport error instead.
        """
        out: Dict[str, Dict] = {}
        for address in self.addresses:
            try:
                with WorkerLink(
                    address,
                    connect_timeout=self.connect_timeout,
                    timeout=self.job_timeout,
                ) as link:
                    tick = time.perf_counter()
                    link.request({"op": "ping"})
                    rtt = time.perf_counter() - tick
                    payload = dict(link.request({"op": "stats"})["result"])
            except WorkerUnavailableError as exc:
                self.health.mark_lost(address, exc)
                out[address] = {
                    "unreachable": str(exc),
                    "health": {"state": "dead"},
                }
                continue
            self.health.mark_ok(address, rtt_seconds=rtt)
            payload["health"] = {"state": "alive", "rtt_seconds": rtt}
            out[address] = payload
        return out

    # -- counting -------------------------------------------------------
    def count(self, request, spec):
        """Run one *resolved* exact request across the cluster."""
        from repro.core.counters import MotifCounts

        start = time.perf_counter()
        graph = request.graph
        shard_kwargs = request.shard_spec or {
            "num_shards": max(1, UNITS_PER_WORKER * len(self.addresses))
        }
        tick = time.perf_counter()
        sharded = ShardedGraph(graph, **shard_kwargs)
        plan = sharded.plan(request.delta)
        units: List[_Unit] = []
        for shard in plan:
            if shard.halo_hi - shard.own_lo >= 3:
                units.append(_Unit(
                    uid=len(units), shard=shard.index, kind="slice",
                    lo=shard.own_lo, hi=shard.halo_hi, sign=1,
                ))
            if shard.halo_hi - shard.own_hi >= 3:
                units.append(_Unit(
                    uid=len(units), shard=shard.index, kind="halo",
                    lo=shard.own_hi, hi=shard.halo_hi, sign=-1,
                ))
        plan_seconds = time.perf_counter() - tick

        state = _RunState(units, num_workers=len(self.addresses))
        spec_payload = protocol.encode_count_spec(request)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(address, request.source, graph, spec_payload, state),
                daemon=True,
                name=f"repro-cluster-{address}",
            )
            for address in self.addresses
        ]
        for thread in threads:
            thread.start()
        try:
            self._wait(request, state)
        finally:
            state.abort()  # idle stealers must not linger past failure
            for thread in threads:
                thread.join(timeout=30)

        # Canonical-order reduction: exactly one recorded grid per unit.
        total = np.zeros((6, 6), dtype=np.int64)
        for unit in units:
            total += unit.sign * state.results[unit.uid]
        assert not np.any(total < 0), "halo union produced a negative cell (bug)"

        phases = {"plan": plan_seconds}
        for phase, seconds in state.remote_phases.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
        result = MotifCounts(
            total,
            algorithm=request.algorithm,
            is_exact=True,
            phase_seconds=phases,
            meta={
                "sharding": "halo-union",
                "shards": sharded.num_shards,
                "slice_runs": len(units),
                "halo_edges": sum(s.halo_edges for s in plan),
                "max_slice_edges": max((s.slice_edges for s in plan), default=0),
                "shard_budget": sharded.max_shard_edges,
                "cluster": {
                    **state.describe(self.addresses),
                    "health": self.health.describe(),
                },
            },
        )
        result.delta = request.delta
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # -- per-worker dispatch loop ---------------------------------------
    def _worker_loop(self, address, source, graph, spec_payload, state) -> None:
        try:
            self._serve_worker(address, source, graph, spec_payload, state)
        except Exception as exc:  # noqa: BLE001 - thread boundary: a bug
            state.fail(exc)  # here must surface, not hang the wait loop

    def _serve_worker(self, address, source, graph, spec_payload, state) -> None:
        policy = self.retry_policy
        failures = 0  # consecutive failed connect/serve cycles
        while state.running():
            if failures:
                # Back off on the deterministic schedule, then re-probe
                # the worker — a recovered daemon rejoins the run here.
                if not state.sleep(policy.delay(failures - 1, salt=address)):
                    return
            attempt = f"{failures + 1}/{policy.max_attempts}"
            try:
                link = WorkerLink(
                    address,
                    connect_timeout=policy.connect_timeout,
                    timeout=policy.op_timeout,
                    attempt=attempt,
                )
            except WorkerUnavailableError as exc:
                failures += 1
                self.health.mark_lost(address, exc)
                state.worker_lost(address, None, exc)
                if failures >= policy.max_attempts:
                    state.worker_retired(address)
                    return
                continue
            unit = None
            try:
                try:
                    tick = time.perf_counter()
                    link.request({"op": "ping"})
                    self.health.mark_ok(
                        address, rtt_seconds=time.perf_counter() - tick
                    )
                    held = False
                    if source is not None:
                        probe = link.request({"op": "open", "source": source})["result"]
                        held = bool(probe.get("held"))
                        if held and probe.get("num_edges") != graph.num_edges:
                            # Same path, different file: treat as not
                            # local rather than silently counting a
                            # different graph.
                            held = False
                    state.worker_ready(address, held)
                    while True:
                        unit, speculative = state.acquire(address)
                        if unit is None:
                            return
                        tick = time.perf_counter()
                        if held:
                            envelope = link.request({
                                "op": "count_slice", "source": source,
                                "lo": unit.lo, "hi": unit.hi, "spec": spec_payload,
                            })
                        else:
                            payload = protocol.encode_edge_slice(graph, unit.lo, unit.hi)
                            state.add_shipped(protocol.edge_slice_bytes(payload))
                            envelope = link.request({
                                "op": "count_edges", "edges": payload,
                                "spec": spec_payload,
                            })
                        counts = protocol.decode_counts(envelope["result"]["counts"])
                        state.complete(
                            address, unit, counts,
                            seconds=time.perf_counter() - tick,
                            speculative=speculative,
                        )
                        self.health.mark_ok(address)
                        unit = None
                        failures = 0  # a completed unit resets the budget
                except WorkerUnavailableError as exc:
                    failures += 1
                    self.health.mark_lost(address, exc)
                    state.worker_lost(address, unit, exc)
                    if failures >= policy.max_attempts:
                        state.worker_retired(address)
                        return
                    # else: fall out to the backoff + reconnect cycle
                except ReproError as exc:
                    # Deterministic failure (bad request, corrupt
                    # source): retrying elsewhere cannot succeed.
                    state.fail(exc)
                    return
            finally:
                link.close()

    # -- completion wait ------------------------------------------------
    @staticmethod
    def _wait(request, state) -> None:
        with state.cond:
            while True:
                if state.error is not None:
                    raise state.error
                if state.finished():
                    return
                if len(state.retired_workers) >= state.num_workers:
                    # A merely *lost* worker is still reconnecting on
                    # its backoff schedule; only when every worker has
                    # exhausted its attempt budget is the run hopeless.
                    raise WorkerUnavailableError(
                        f"all {state.num_workers} cluster workers "
                        f"exhausted their retry budgets; last error: "
                        f"{state.last_failure}"
                    )
                request.check_deadline()
                state.cond.wait(timeout=0.1)


class _RunState:
    """Shared dispatch state of one distributed count (lock-guarded)."""

    def __init__(self, units: List[_Unit], *, num_workers: int) -> None:
        self.units = {unit.uid: unit for unit in units}
        self.num_workers = num_workers
        self.cond = threading.Condition()
        self.pending = collections.deque(unit.uid for unit in units)
        self.results: Dict[int, np.ndarray] = {}
        self.inflight: Dict[int, int] = collections.defaultdict(int)
        self.attempts: Dict[int, int] = collections.defaultdict(int)
        self.remote_phases: Dict[str, float] = {}
        self.shard_seconds: Dict[str, float] = {}
        self.jobs_by_worker: Dict[str, int] = {}
        self.live_workers: set = set()
        self.started_workers: set = set()
        self.local_workers: set = set()
        self.lost_workers: set = set()
        self.retired_workers: set = set()
        self.error: Optional[BaseException] = None
        self.last_failure: Optional[str] = None
        self.aborted = False
        self.stats = {
            "retries": 0,
            "speculative": 0,
            "duplicates_ignored": 0,
            "worker_failures": 0,
            "workers_readmitted": 0,
            "bytes_shipped": 0,
        }

    # -- worker lifecycle ----------------------------------------------
    def worker_ready(self, address: str, held: bool) -> bool:
        """Admit (or re-admit) a probed worker; ``True`` on readmission."""
        with self.cond:
            readmitted = address in self.lost_workers
            self.lost_workers.discard(address)
            self.started_workers.add(address)
            self.live_workers.add(address)
            self.jobs_by_worker.setdefault(address, 0)
            if held:
                self.local_workers.add(address)
            if readmitted:
                self.stats["workers_readmitted"] += 1
            self.cond.notify_all()
            return readmitted

    def worker_lost(self, address, unit, exc) -> None:
        with self.cond:
            self.started_workers.add(address)
            self.live_workers.discard(address)
            self.lost_workers.add(address)
            self.stats["worker_failures"] += 1
            self.last_failure = f"{address}: {exc}"
            if unit is not None:
                self.inflight[unit.uid] -= 1
                if unit.uid not in self.results:
                    if self.attempts[unit.uid] >= MAX_ATTEMPTS:
                        self.error = WorkerUnavailableError(
                            f"unit {unit.kind}[{unit.shard}] failed "
                            f"{self.attempts[unit.uid]} times; giving up "
                            f"(last: {exc})"
                        )
                    else:
                        self.stats["retries"] += 1
                        self.pending.appendleft(unit.uid)
            self.cond.notify_all()

    def worker_retired(self, address: str) -> None:
        """This worker's attempt budget is spent for the rest of the run."""
        with self.cond:
            self.retired_workers.add(address)
            self.cond.notify_all()

    def running(self) -> bool:
        with self.cond:
            return self.error is None and not self.aborted and not self.finished()

    def sleep(self, seconds: float) -> bool:
        """Backoff wait that aborts early; ``False`` when the run ended."""
        deadline = time.monotonic() + max(0.0, seconds)
        with self.cond:
            while True:
                if self.error is not None or self.aborted or self.finished():
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return True
                self.cond.wait(timeout=min(remaining, 0.1))

    # -- job acquisition -------------------------------------------------
    def acquire(self, address: str):
        """Next unit for ``address``: queued work, else a stolen tail unit."""
        with self.cond:
            while True:
                if self.error is not None or self.aborted:
                    return None, False
                while self.pending:
                    uid = self.pending.popleft()
                    if uid in self.results:
                        continue  # answered while queued (speculative win)
                    self.inflight[uid] += 1
                    self.attempts[uid] += 1
                    self.jobs_by_worker[address] = self.jobs_by_worker.get(address, 0) + 1
                    return self.units[uid], False
                open_units = [
                    uid for uid in self.units if uid not in self.results
                ]
                if not open_units:
                    return None, False
                # Tail re-dispatch: duplicate the in-flight unit with the
                # fewest copies/attempts on this idle worker.
                stealable = [
                    uid for uid in open_units
                    if self.inflight[uid] < MAX_INFLIGHT_COPIES
                    and self.attempts[uid] < MAX_ATTEMPTS
                ]
                if stealable:
                    uid = min(
                        stealable,
                        key=lambda u: (self.inflight[u], self.attempts[u], u),
                    )
                    self.inflight[uid] += 1
                    self.attempts[uid] += 1
                    self.stats["speculative"] += 1
                    self.jobs_by_worker[address] = self.jobs_by_worker.get(address, 0) + 1
                    return self.units[uid], True
                # Everything open is already maximally duplicated: wait
                # for a completion or a failure to requeue something.
                self.cond.wait(timeout=0.1)

    # -- completion ------------------------------------------------------
    def complete(self, address, unit, counts, *, seconds, speculative) -> None:
        grid = np.rint(np.asarray(counts.grid)).astype(np.int64)
        with self.cond:
            self.inflight[unit.uid] -= 1
            if unit.uid in self.results:
                # Exactly-once: a speculative duplicate (or a retry that
                # raced its replacement) landed second — drop it whole.
                self.stats["duplicates_ignored"] += 1
            else:
                self.results[unit.uid] = grid
                self.shard_seconds[f"shard{unit.shard}.{unit.kind}"] = seconds
                for phase, secs in counts.phase_seconds.items():
                    self.remote_phases[phase] = self.remote_phases.get(phase, 0.0) + secs
            self.cond.notify_all()

    def add_shipped(self, nbytes: int) -> None:
        with self.cond:
            self.stats["bytes_shipped"] += int(nbytes)

    def fail(self, exc: BaseException) -> None:
        with self.cond:
            if self.error is None:
                self.error = exc
            self.cond.notify_all()

    def abort(self) -> None:
        with self.cond:
            self.aborted = True
            self.cond.notify_all()

    def finished(self) -> bool:
        return len(self.results) == len(self.units)

    def describe(self, addresses) -> Dict[str, object]:
        """The ``meta["cluster"]`` payload (JSON-safe)."""
        with self.cond:
            return {
                "workers": list(addresses),
                "local_workers": sorted(self.local_workers),
                "retired_workers": sorted(self.retired_workers),
                "jobs": dict(self.jobs_by_worker),
                "shard_seconds": dict(self.shard_seconds),
                **{k: int(v) for k, v in self.stats.items()},
            }


def cluster_count(request, spec):
    """Registry routing target: run one resolved exact request on the
    cluster named by ``request.cluster`` (see :class:`ClusterExecutor`)."""
    executor = ClusterExecutor(request.cluster)
    return executor.count(request, spec)


def cluster_runtime_stats(
    cluster,
    *,
    connect_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Dict[str, Dict]:
    """Runtime counters of every worker in ``cluster`` (CLI helper)."""
    executor = ClusterExecutor(
        cluster, connect_timeout=connect_timeout, retry_policy=retry_policy
    )
    return executor.stats()
