"""Wire protocol of the ``repro worker`` daemon (coordinator ↔ worker).

The distributed runtime reuses the serving layer's versioned JSONL
envelopes (:mod:`repro.serve.protocol`): every request is one JSON
object per line, every response the same ``ok_response`` /
``error_response`` envelope the ``repro serve`` daemon emits, and
count results travel as the ``repro.serve.counts/1`` payload of
:func:`~repro.serve.protocol.encode_counts`.  What this module adds is
the *worker* op vocabulary and the edge-column shipping codec — pure
data, no sockets, so the daemon, the coordinator, and the tests share
one implementation.

Ops
---
``hello``
    ``{"op": "hello"}`` → worker identity: pid, pool size, protocol
    revision, and the packed sources it currently holds open.
``ping``
    ``{"op": "ping"}`` → ``{"pong": true, "pid": ...}``.  The health
    heartbeat (:mod:`repro.distributed.health`): cheap enough to probe
    before every (re)admission, and the coordinator measures its round
    trip as the worker's latency sample.
``open``
    ``{"op": "open", "source": <path>}`` → ``{"held": bool, ...}``.
    The locality probe: a worker that can open the coordinator's
    ``.rgz`` path answers ``held: true`` (with edge/node counts the
    coordinator cross-checks) and will accept ``count_slice`` jobs by
    canonical edge range; a worker without the file answers ``held:
    false`` — *not* an error — and receives shipped edge columns
    instead.  A present-but-corrupt file is an error.
``count_slice``
    ``{"op": "count_slice", "source": <path>, "lo": i, "hi": j,
    "spec": {...}}`` → counts for canonical edge range ``[lo, hi)`` of
    the held packed graph.  ``spec`` carries the resolved counting
    knobs (see :func:`encode_count_spec`).
``count_edges``
    Same ``spec``, but the edges arrive inline as base64 columns
    (:func:`encode_edge_slice`) — the remote-placement fallback.
``stats``
    Worker runtime counters, including the resident pool's stats
    (``jobs_aborted``, ``worker_restarts``, …) — what ``repro stats
    --runtime --cluster`` prints and the distributed bench records.
``shutdown``
    Acknowledge, then stop serving (used by tests and the bench for
    clean teardown; production teardown is SIGTERM).
"""

from __future__ import annotations

import base64
import json
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph

# One protocol, one envelope: the worker daemon frames its responses
# with the exact serve-layer codec (re-exported for convenience).
from repro.serve.protocol import (  # noqa: F401  (re-exports)
    PROTOCOL_VERSION,
    decode_counts,
    encode_counts,
    error_response,
    ok_response,
    raise_from_response,
)

#: Worker op vocabulary (anything else is a typo → ``bad_request``).
WORKER_OPS = (
    "hello", "ping", "open", "count_slice", "count_edges", "stats", "shutdown",
)

#: Ceiling on one JSONL message, enforced **symmetrically**: inbound
#: via :func:`read_message_line`, outbound via :func:`encode_message`
#: (both the coordinator's requests and the worker's responses).
#: Shipped edge slices dominate: three int64/float64 columns at a
#: one-million-edge shard are ~32 MB of base64, so the cap is far
#: above the serve daemon's 1 MiB.
MAX_MESSAGE = 128 << 20

#: Fields a count spec may carry — the resolved :class:`CountRequest`
#: knobs that affect the answer, plus the execution strategy ones the
#: worker is free to honour.  Sharding/cluster fields are deliberately
#: absent: a worker counts exactly the slice it was handed.
SPEC_FIELDS = frozenset({
    "delta", "algorithm", "categories", "backend", "thrd", "schedule", "params",
})


def encode_count_spec(request) -> Dict:
    """The JSON-safe counting knobs of a resolved ``CountRequest``.

    Only answer-shaping fields travel: ``workers``/``pool`` are the
    worker daemon's own deployment choice (counts are bit-identical
    across parallelism degrees — the repo-wide invariant), and the
    shard plan lives with the coordinator.
    """
    return {
        "delta": float(request.delta),
        "algorithm": request.algorithm,
        "categories": request.categories,
        "backend": request.backend,
        "thrd": None if request.thrd is None else float(request.thrd),
        "schedule": request.schedule,
        "params": {str(k): v for k, v in request.params.items()},
    }


def parse_count_spec(spec: object) -> Dict:
    """Validate a wire count spec's shape; returns the normalized dict."""
    if not isinstance(spec, dict):
        raise ValidationError(f"count spec must be an object, got {spec!r}")
    unknown = set(spec) - SPEC_FIELDS
    if unknown:
        raise ValidationError(f"unknown count spec field(s) {sorted(unknown)}")
    if "delta" not in spec:
        raise ValidationError("count spec requires a 'delta'")
    out = dict(spec)
    out["delta"] = float(spec["delta"])
    out.setdefault("algorithm", "fast")
    out.setdefault("categories", "all")
    out.setdefault("backend", "auto")
    out.setdefault("thrd", None)
    out.setdefault("schedule", "dynamic")
    params = out.setdefault("params", {})
    if not isinstance(params, dict):
        raise ValidationError(f"spec params must be an object, got {params!r}")
    return out


# ----------------------------------------------------------------------
# edge-column shipping (remote placement fallback)
# ----------------------------------------------------------------------

def _pack_column(arr: np.ndarray) -> Dict:
    """One edge column as ``{dtype, data}`` with little-endian bytes."""
    contiguous = np.ascontiguousarray(arr)
    le = contiguous.astype(contiguous.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": le.dtype.str,
        "data": base64.b64encode(le.tobytes()).decode("ascii"),
    }


def _unpack_column(payload: object, *, expect: int) -> np.ndarray:
    if not isinstance(payload, dict) or "dtype" not in payload or "data" not in payload:
        raise ValidationError(f"malformed edge column {payload!r}")
    try:
        raw = base64.b64decode(payload["data"], validate=True)
        arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    except (ValueError, TypeError) as exc:
        raise ValidationError(f"cannot decode edge column: {exc}") from exc
    if len(arr) != expect:
        raise ValidationError(
            f"edge column length {len(arr)} != declared num_edges {expect}"
        )
    return arr


def encode_edge_slice(graph: TemporalGraph, lo: int, hi: int) -> Dict:
    """Canonical edge range ``[lo, hi)`` as a shippable JSON payload.

    Slicing a contiguous canonical range preserves sortedness and
    tie-breaking, so the receiver can rebuild the slice with
    :meth:`TemporalGraph.from_canonical_arrays` and count it exactly as
    a local slice would count — node ids keep the parent's space.
    """
    if not (0 <= lo <= hi <= graph.num_edges):
        raise ValidationError(
            f"slice [{lo}, {hi}) out of range for {graph.num_edges} edges"
        )
    return {
        "format": "repro.distributed.edges/1",
        "num_edges": hi - lo,
        "num_nodes": graph.num_nodes,
        "src": _pack_column(graph.sources[lo:hi]),
        "dst": _pack_column(graph.destinations[lo:hi]),
        "t": _pack_column(graph.timestamps[lo:hi]),
    }


def decode_edge_slice(payload: object) -> TemporalGraph:
    """Rebuild the shipped slice as a zero-copy canonical graph."""
    if not isinstance(payload, dict) or payload.get("format") != "repro.distributed.edges/1":
        raise ValidationError(
            f"unknown edge payload format "
            f"{payload.get('format') if isinstance(payload, dict) else payload!r}"
        )
    num_edges = int(payload["num_edges"])
    src = _unpack_column(payload["src"], expect=num_edges)
    dst = _unpack_column(payload["dst"], expect=num_edges)
    t = _unpack_column(payload["t"], expect=num_edges)
    return TemporalGraph.from_canonical_arrays(
        src, dst, t, num_nodes=int(payload["num_nodes"])
    )


def edge_slice_bytes(payload: Dict) -> int:
    """Approximate wire size of one shipped slice (for stats)."""
    return sum(len(payload[col]["data"]) for col in ("src", "dst", "t"))


def parse_cluster(cluster) -> Tuple[str, ...]:
    """Normalize a cluster spec to a tuple of ``host:port`` addresses.

    Accepts the CLI string form (``"host:port,host:port"``) or any
    sequence of such strings; validates each entry has a numeric port.
    """
    if cluster is None:
        raise ValidationError("cluster must name at least one host:port worker")
    if isinstance(cluster, str):
        entries = [part.strip() for part in cluster.split(",")]
    else:
        entries = [str(part).strip() for part in cluster]
    entries = [part for part in entries if part]
    if not entries:
        raise ValidationError("cluster must name at least one host:port worker")
    for entry in entries:
        host, sep, port = entry.rpartition(":")
        if not sep or not host:
            raise ValidationError(
                f"cluster worker {entry!r} is not of the form host:port"
            )
        try:
            port_num = int(port)
        except ValueError:
            raise ValidationError(
                f"cluster worker {entry!r} has a non-numeric port"
            ) from None
        if not (0 < port_num < 65536):
            raise ValidationError(f"cluster worker {entry!r} port out of range")
    return tuple(entries)


def split_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (validated)."""
    (entry,) = parse_cluster(address)
    host, _, port = entry.rpartition(":")
    return host, int(port)


def encode_message(payload: Dict, *, limit: int = MAX_MESSAGE) -> bytes:
    """One JSONL frame, length-capped before it touches a socket.

    The outbound half of the frame cap: :func:`read_message_line`
    protects a *reader* from an unbounded peer, this protects the
    *peer* from us — a worker whose result would exceed the limit
    raises here (mapped to a typed error envelope, which always fits)
    instead of streaming a frame the coordinator is guaranteed to
    reject after buffering 128 MiB of it.
    """
    data = json.dumps(payload).encode() + b"\n"
    if len(data) > limit:
        shown = f"{limit >> 20} MiB" if limit >= (1 << 20) else f"{limit}-byte"
        raise ValidationError(
            f"message of {len(data)} bytes exceeds the {shown} protocol limit"
        )
    return data


def read_message_line(stream) -> Optional[bytes]:
    """One length-capped JSONL line from a blocking binary stream.

    Returns ``None`` at EOF; raises :class:`ValidationError` when the
    peer sends a line past :data:`MAX_MESSAGE` (protecting the daemon
    from unbounded buffering, same contract as the serve daemon's
    asyncio ``limit``).
    """
    line = stream.readline(MAX_MESSAGE + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE:
        raise ValidationError(
            f"message exceeds the {MAX_MESSAGE >> 20} MiB protocol limit"
        )
    return line
