"""The ``repro worker`` daemon: one node of a counting cluster.

A worker daemon sits on each node, speaks the JSONL worker protocol
(:mod:`repro.distributed.protocol`) over TCP, opens its local ``.rgz``
files zero-copy via :func:`~repro.storage.format.open_packed`, and
counts the canonical edge ranges the coordinator hands it — through a
resident :class:`~repro.parallel.pool.WorkerPool` when deployed with
``workers > 1``.  Workers without the coordinator's packed file still
participate: the coordinator ships them edge-column slices inline
(``count_edges``).

Each coordinator connection is served by its own handler thread and
processes requests strictly in order — one job in flight per
connection, which is exactly the dispatch unit the coordinator wants
(its parallelism is across workers; a worker's parallelism is its
pool).  The daemon is equally usable in-process (tests, the docs'
examples) via :meth:`WorkerDaemon.start` and as a blocking CLI entry
via :func:`run_worker`.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
from typing import Dict, Optional, Sequence

from repro.distributed import protocol
from repro.errors import StorageFormatError, ValidationError
from repro.storage.format import open_packed
from repro.storage.sharded import slice_canonical


class _Handler(socketserver.StreamRequestHandler):
    """One coordinator connection: a JSONL request/response loop."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        daemon: "WorkerDaemon" = self.server.daemon  # type: ignore[attr-defined]
        with daemon._lock:
            daemon.stats["connections"] += 1
        while True:
            try:
                line = protocol.read_message_line(self.rfile)
            except ValidationError as exc:
                self._reply(protocol.error_response(exc, None))
                return  # cannot resync a stream mid-oversized-line
            if line is None:
                return
            request_id = None
            message: Dict = {}
            try:
                parsed = json.loads(line)
                if not isinstance(parsed, dict):
                    raise ValidationError("request must be a JSON object")
                message = parsed
                request_id = message.get("id")
                result = daemon.handle_message(message)
                envelope = protocol.ok_response(result, request_id)
            except Exception as exc:  # noqa: BLE001 - protocol boundary
                with daemon._lock:
                    daemon.stats["errors"] += 1
                envelope = protocol.error_response(exc, request_id)
            if not self._reply(envelope):
                return
            if message.get("op") == "shutdown":
                daemon._request_shutdown()
                return

    def _reply(self, envelope: Dict) -> bool:
        try:
            data = protocol.encode_message(envelope)
        except ValidationError as exc:
            # The result outgrew the frame cap (symmetric with the
            # read-side limit).  Error envelopes are tiny, so degrading
            # to one never recurses.
            request_id = envelope.get("id") if isinstance(envelope, dict) else None
            data = protocol.encode_message(protocol.error_response(exc, request_id))
        try:
            self.wfile.write(data)
            self.wfile.flush()
            return True
        except OSError:
            return False


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class WorkerDaemon:
    """See the module docstring.

    Parameters
    ----------
    host / port:
        TCP bind address; port ``0`` picks an ephemeral port (read the
        bound one from :attr:`address` after :meth:`start`).
    workers:
        Resident pool size for pool-runtime algorithms (the HARE
        family).  ``1`` (default) counts serially in-process — no pool,
        no shared-memory segments, nothing to leak even under SIGKILL.
    start_method:
        Pool process start method (as in
        :class:`~repro.parallel.pool.WorkerPool`).
    sources:
        Packed files to open eagerly at startup (optional; ``open``
        probes open lazily either way).
    delay:
        Testing aid: sleep this many seconds before every count op, so
        fault-injection tests can SIGKILL the daemon deterministically
        *mid-shard*.  Never set in production.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        start_method: Optional[str] = None,
        sources: Sequence[str] = (),
        delay: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = start_method
        self.delay = float(delay)
        self._lock = threading.RLock()
        self._packed: Dict[str, object] = {}
        self._pool = None
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False
        self.stats: Dict[str, object] = {
            "connections": 0,
            "opens": 0,
            "slices_served": 0,
            "edges_counted": 0,
            "bytes_received": 0,
            "errors": 0,
        }
        for source in sources:
            self._open_source(os.fspath(source))

    # -- addressing -----------------------------------------------------
    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    # -- op dispatch ----------------------------------------------------
    def handle_message(self, message: Dict) -> Dict:
        """Execute one protocol op; returns the result payload."""
        op = message.get("op")
        if op not in protocol.WORKER_OPS:
            raise ValidationError(
                f"unknown op {op!r}; choose from {protocol.WORKER_OPS}"
            )
        if op == "hello":
            return self._op_hello()
        if op == "ping":
            return {"pong": True, "pid": os.getpid()}
        if op == "open":
            return self._op_open(message)
        if op == "count_slice":
            return self._op_count_slice(message)
        if op == "count_edges":
            return self._op_count_edges(message)
        if op == "stats":
            return self.describe_stats()
        return {"closing": True}  # shutdown: handler stops after replying

    def _op_hello(self) -> Dict:
        with self._lock:
            sources = sorted(self._packed)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "workers": self.workers,
            "sources": sources,
        }

    def _op_open(self, message: Dict) -> Dict:
        source = message.get("source")
        if not isinstance(source, str) or not source:
            raise ValidationError("open requires a 'source' path")
        if not os.path.exists(source):
            # Not holding the file is a *placement* fact, not an error:
            # the coordinator will ship this worker edge slices instead.
            return {"held": False}
        packed = self._open_source(source)
        graph = packed.graph
        return {
            "held": True,
            "num_edges": graph.num_edges,
            "num_nodes": graph.num_nodes,
        }

    def _op_count_slice(self, message: Dict) -> Dict:
        spec = protocol.parse_count_spec(message.get("spec"))
        source = message.get("source")
        if not isinstance(source, str) or not source:
            raise ValidationError("count_slice requires a 'source' path")
        if not os.path.exists(source):
            raise StorageFormatError(
                f"worker does not hold {source!r} (probe with 'open' first)"
            )
        graph = self._open_source(source).graph
        lo, hi = self._parse_range(message, graph.num_edges)
        piece = slice_canonical(graph, lo, hi)
        return {"counts": protocol.encode_counts(self._count(piece, spec))}

    def _op_count_edges(self, message: Dict) -> Dict:
        spec = protocol.parse_count_spec(message.get("spec"))
        payload = message.get("edges")
        piece = protocol.decode_edge_slice(payload)
        with self._lock:
            self.stats["bytes_received"] += protocol.edge_slice_bytes(payload)
        return {"counts": protocol.encode_counts(self._count(piece, spec))}

    # -- internals ------------------------------------------------------
    @staticmethod
    def _parse_range(message: Dict, num_edges: int) -> tuple:
        try:
            lo, hi = int(message["lo"]), int(message["hi"])
        except (KeyError, TypeError, ValueError):
            raise ValidationError(
                "count_slice requires integer 'lo' and 'hi' edge ids"
            ) from None
        if not (0 <= lo <= hi <= num_edges):
            raise ValidationError(
                f"slice [{lo}, {hi}) out of range for {num_edges} edges"
            )
        return lo, hi

    def _open_source(self, source: str):
        with self._lock:
            packed = self._packed.get(source)
            if packed is None:
                packed = open_packed(source)
                self._packed[source] = packed
                self.stats["opens"] += 1
            return packed

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None and self.workers > 1:
                from repro.parallel.pool import WorkerPool

                self._pool = WorkerPool(self.workers, start_method=self.start_method)
            return self._pool

    def _count(self, piece, spec: Dict):
        """Count one slice with this daemon's own execution resources."""
        from repro.core.registry import CountRequest, execute, get_algorithm

        if self.delay:
            time.sleep(self.delay)
        algo = get_algorithm(spec["algorithm"])
        workers = self.workers if algo.parallel else 1
        pool = self._ensure_pool() if (workers > 1 and algo.pool_runtime) else None
        result = execute(CountRequest(
            graph=piece,
            delta=spec["delta"],
            algorithm=spec["algorithm"],
            categories=spec["categories"],
            backend=spec["backend"],
            thrd=spec["thrd"],
            schedule=spec["schedule"],
            workers=workers,
            pool=pool,
            start_method=self.start_method,
            params=dict(spec["params"]),
        ))
        with self._lock:
            self.stats["slices_served"] += 1
            self.stats["edges_counted"] += piece.num_edges
        return result

    def describe_stats(self) -> Dict:
        """JSON-safe runtime counters: daemon + resident pool."""
        with self._lock:
            merged: Dict[str, object] = dict(self.stats)
            merged["pid"] = os.getpid()
            merged["workers"] = self.workers
            merged["sources"] = sorted(self._packed)
            merged["pool"] = None if self._pool is None else dict(self._pool.stats)
        return merged

    # -- lifecycle ------------------------------------------------------
    def start(self) -> str:
        """Serve in a background thread; returns the bound address."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
                name=f"repro-worker-{self.address}",
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the caller's thread (the CLI entry) until closed."""
        self._serving = True
        self._server.serve_forever(poll_interval=0.1)

    def _request_shutdown(self) -> None:
        # From a handler thread; serve_forever runs elsewhere, so
        # shutdown() cannot deadlock.  Run async so the reply flushes.
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._serving:
            # shutdown() handshakes with a running serve_forever loop;
            # calling it when none ever ran would block forever.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=30)
        with self._lock:
            pool, self._pool = self._pool, None
            self._packed.clear()
        if pool is not None:
            pool.close()

    def __enter__(self) -> "WorkerDaemon":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 1,
    start_method: Optional[str] = None,
    sources: Sequence[str] = (),
    delay: float = 0.0,
) -> int:
    """Blocking entry point behind ``repro worker``.

    Prints the bound address (coordinators and scripts parse the
    ``worker listening on HOST:PORT`` line — with ``--port 0`` it is
    the only way to learn the ephemeral port) and serves until
    interrupted.
    """
    daemon = WorkerDaemon(
        host, port,
        workers=workers, start_method=start_method, sources=sources, delay=delay,
    )
    print(f"worker listening on {daemon.address} (workers={workers})", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        daemon.close()
    return 0
