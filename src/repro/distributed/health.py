"""Cluster health: retry policy, heartbeats, and the circuit breaker.

Until PR 9 every transport-failure decision in the distributed runtime
was a hard-coded constant scattered through ``cluster.py``: fixed
connect/op timeouts, an immediate permanent death sentence for a
worker whose socket hiccuped, no way for a recovered daemon to rejoin
a run.  This module centralises those decisions as *data*:

:class:`RetryPolicy`
    Connect/op timeouts, exponential backoff with **seeded,
    deterministic jitter** (two coordinators with the same seed
    produce the same delay schedule — reproducible fault tests, no
    thundering-herd synchronisation across workers because the worker
    address salts the stream), and a per-worker reconnect budget.

:class:`HealthMonitor`
    Per-worker heartbeat records fed by the ``ping`` protocol op:
    last-success time, round-trip latency, consecutive failures, and
    how often the worker was re-admitted after being marked dead.  The
    coordinator's dispatch loops keep it current; ``repro stats
    --runtime`` renders it.

:class:`CircuitBreaker`
    The serving layer's degradation switch for cluster-bound catalog
    graphs: ``closed`` (normal) → ``open`` after ``threshold``
    consecutive :class:`~repro.errors.WorkerUnavailableError`\\ s →
    ``half_open`` after ``reset_after`` seconds, when exactly one
    trial request probes the cluster and either closes the breaker or
    re-opens it with a fresh timer.

Everything here is pure bookkeeping over monotonic time — no sockets
except :func:`ping_worker`, so the policy and breaker are unit-testable
without a cluster.

>>> policy = RetryPolicy(backoff_base=0.1, backoff_max=2.0, seed=7)
>>> [round(policy.delay(a, salt="w1"), 6) == round(policy.delay(a, salt="w1"), 6)
...  for a in range(3)]
[True, True, True]
>>> policy.delay(0, salt="w1") != policy.delay(0, salt="w2")
True
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ValidationError, WorkerUnavailableError

#: Breaker states (see :class:`CircuitBreaker`).
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class RetryPolicy:
    """Every transport-retry knob of the distributed runtime, as data.

    ``delay(attempt, salt=...)`` is the backoff schedule: attempt ``a``
    (0-based) sleeps ``min(backoff_max, backoff_base * backoff_factor**a)``
    stretched by a deterministic jitter of ±``jitter`` (a fraction),
    derived from ``(seed, salt, attempt)`` via CRC32 — stable across
    processes and platforms, unlike ``hash()``.
    """

    #: Seconds allowed for one TCP connect to a worker.
    connect_timeout: float = 10.0
    #: Seconds allowed for one request/response round trip (``None``
    #: waits forever — only sensible on trusted local clusters).
    op_timeout: Optional[float] = 600.0
    #: Consecutive failed connect/serve cycles before one worker is
    #: retired for the remainder of the run (per-worker budget; the
    #: per-*unit* budget is ``cluster.MAX_ATTEMPTS``).
    max_attempts: int = 5
    #: First backoff delay, seconds.
    backoff_base: float = 0.1
    #: Multiplier between consecutive delays.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay, seconds.
    backoff_max: float = 5.0
    #: Jitter fraction: each delay is scaled by ``1 ± jitter * u`` with
    #: ``u`` uniform in ``[-1, 1)`` from the seeded stream.
    jitter: float = 0.25
    #: Seed of the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.connect_timeout <= 0:
            raise ValidationError(
                f"connect_timeout must be positive, got {self.connect_timeout}"
            )
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValidationError(
                f"op_timeout must be positive or None, got {self.op_timeout}"
            )
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValidationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not (0.0 <= self.jitter < 1.0):
            raise ValidationError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, *, salt: str = "") -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValidationError(f"attempt must be >= 0, got {attempt}")
        base = min(self.backoff_max, self.backoff_base * self.backoff_factor ** attempt)
        if not self.jitter or not base:
            return base
        # CRC32 of the (seed, salt, attempt) triple -> uniform in [0, 1):
        # deterministic across processes (hash() is salted per process).
        digest = zlib.crc32(f"{self.seed}:{salt}:{attempt}".encode("utf-8"))
        unit = (digest / 0xFFFFFFFF) * 2.0 - 1.0  # [-1, 1)
        return base * (1.0 + self.jitter * unit)


#: Policy used when a coordinator is built without an explicit one.
#: Deployment code (and tests) may swap it module-wide; per-run
#: overrides go through ``ClusterExecutor(retry_policy=...)``.
DEFAULT_RETRY_POLICY = RetryPolicy()


def ping_worker(
    address: str, *, policy: Optional[RetryPolicy] = None
) -> Dict[str, object]:
    """One connect + ``ping`` round trip; returns the health sample.

    Raises :class:`~repro.errors.WorkerUnavailableError` on any
    transport failure (the caller's signal to back off and re-probe).
    """
    from repro.distributed.cluster import WorkerLink  # late: avoid cycle

    policy = policy or DEFAULT_RETRY_POLICY
    tick = time.perf_counter()
    with WorkerLink(
        address,
        connect_timeout=policy.connect_timeout,
        timeout=policy.op_timeout,
    ) as link:
        result = link.request({"op": "ping"})["result"]
    rtt = time.perf_counter() - tick
    return {"state": "alive", "rtt_seconds": rtt, "pid": result.get("pid")}


class _WorkerHealth:
    """One worker's heartbeat record (guarded by the monitor's lock)."""

    __slots__ = (
        "address", "state", "last_ok", "last_error",
        "consecutive_failures", "failures", "readmissions", "rtt_seconds",
    )

    def __init__(self, address: str) -> None:
        self.address = address
        self.state = "unknown"
        self.last_ok: Optional[float] = None
        self.last_error: Optional[str] = None
        self.consecutive_failures = 0
        self.failures = 0
        self.readmissions = 0
        self.rtt_seconds: Optional[float] = None


class HealthMonitor:
    """Per-worker heartbeat tracking for one cluster (thread-safe).

    The coordinator's dispatch loops feed it (:meth:`mark_ok` on every
    successful op, :meth:`mark_lost` on every transport failure,
    :meth:`mark_readmitted` when a dead worker rejoins); anything may
    read :meth:`describe` at any time.
    """

    def __init__(self, addresses) -> None:
        self._lock = threading.Lock()
        self._workers: Dict[str, _WorkerHealth] = {
            address: _WorkerHealth(address) for address in addresses
        }

    def _record(self, address: str) -> _WorkerHealth:
        record = self._workers.get(address)
        if record is None:
            record = self._workers[address] = _WorkerHealth(address)
        return record

    def mark_ok(self, address: str, *, rtt_seconds: Optional[float] = None) -> None:
        with self._lock:
            record = self._record(address)
            was_dead = record.state == "dead"
            record.state = "alive"
            record.last_ok = time.monotonic()
            record.consecutive_failures = 0
            if rtt_seconds is not None:
                record.rtt_seconds = rtt_seconds
            if was_dead:
                record.readmissions += 1

    def mark_lost(self, address: str, error: object = None) -> None:
        with self._lock:
            record = self._record(address)
            record.state = "dead"
            record.consecutive_failures += 1
            record.failures += 1
            if error is not None:
                record.last_error = str(error)

    def readmissions(self) -> int:
        """Total times any dead worker of this cluster came back."""
        with self._lock:
            return sum(r.readmissions for r in self._workers.values())

    def probe(
        self, address: str, *, policy: Optional[RetryPolicy] = None
    ) -> Dict[str, object]:
        """Ping one worker, updating its record either way."""
        try:
            sample = ping_worker(address, policy=policy)
        except WorkerUnavailableError as exc:
            self.mark_lost(address, exc)
            raise
        self.mark_ok(address, rtt_seconds=float(sample["rtt_seconds"]))
        return sample

    def describe(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot of every worker's heartbeat record."""
        now = time.monotonic()
        with self._lock:
            return {
                record.address: {
                    "state": record.state,
                    "seconds_since_ok": (
                        None if record.last_ok is None else now - record.last_ok
                    ),
                    "rtt_seconds": record.rtt_seconds,
                    "consecutive_failures": record.consecutive_failures,
                    "failures": record.failures,
                    "readmissions": record.readmissions,
                    "last_error": record.last_error,
                }
                for record in self._workers.values()
            }


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker (thread-safe).

    ``closed``: requests flow.  After ``threshold`` consecutive
    :meth:`record_failure` calls the breaker **opens**: :meth:`allow`
    answers ``False`` until ``reset_after`` seconds pass, then the
    breaker half-opens and exactly one caller gets ``True`` (the trial
    request).  The trial's :meth:`record_success` closes the breaker;
    its :meth:`record_failure` re-opens it with a fresh timer.
    """

    threshold: int = 3
    reset_after: float = 30.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _state: str = "closed"
    _consecutive_failures: int = 0
    _opened_at: float = 0.0
    _trial_inflight: bool = False

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValidationError(f"threshold must be >= 1, got {self.threshold}")
        if self.reset_after < 0:
            raise ValidationError(
                f"reset_after must be non-negative, got {self.reset_after}"
            )

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == "open" and (
            time.monotonic() - self._opened_at >= self.reset_after
        ):
            self._state = "half_open"
            self._trial_inflight = False

    def allow(self) -> bool:
        """Whether the caller may attempt the protected operation now."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._trial_inflight:
                self._trial_inflight = True  # exactly one probe at a time
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._trial_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == "half_open" or (
                self._consecutive_failures >= self.threshold
            ):
                self._state = "open"
                self._opened_at = time.monotonic()
                self._trial_inflight = False

    def retry_after(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        with self._lock:
            self._maybe_half_open()
            if self._state != "open":
                return 0.0
            return max(0.0, self.reset_after - (time.monotonic() - self._opened_at))

    def describe(self) -> Dict[str, object]:
        """JSON-safe breaker snapshot (the ``stats`` payload entry)."""
        with self._lock:
            self._maybe_half_open()
            retry = 0.0
            if self._state == "open":
                retry = max(
                    0.0, self.reset_after - (time.monotonic() - self._opened_at)
                )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "threshold": self.threshold,
                "retry_after_seconds": retry,
            }
