"""Distributed shard execution: coordinator/worker runtime over TCP.

The multi-node sibling of :mod:`repro.parallel`: a ``repro worker``
daemon per node (:class:`WorkerDaemon`), a coordinator
(:class:`ClusterExecutor`) that farms the
:class:`~repro.storage.sharded.ShardedGraph` plan's per-shard slice and
halo jobs across them with locality-aware placement, retry with
exactly-once accounting, and a canonical-order reduction bit-identical
to the serial shard-halo union.  See ``docs/distributed.md``.
"""

from repro.distributed.cluster import (
    ClusterExecutor,
    WorkerLink,
    cluster_count,
    cluster_runtime_stats,
)
from repro.distributed.protocol import parse_cluster
from repro.distributed.worker import WorkerDaemon, run_worker

__all__ = [
    "ClusterExecutor",
    "WorkerDaemon",
    "WorkerLink",
    "cluster_count",
    "cluster_runtime_stats",
    "parse_cluster",
    "run_worker",
]
