"""Characterising networks by their motif fingerprints.

Motif distributions act as a structural fingerprint: communication
networks are pair/star heavy, trust/transaction networks grow
triangles, and bipartite rating networks cannot form triangles at all.
This example counts motifs on several dataset twins, normalises each
6×6 grid into a 36-dimensional fingerprint, and prints the pairwise
cosine similarities — the bipartite datasets cluster away from the
social ones, reproducing the qualitative story of the paper's Fig. 10.

Run:  python examples/network_fingerprints.py [--scale 0.3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MotifCategory, count_motifs, load_dataset

DATASETS = (
    "collegemsg",      # messaging: heavy pair ping-pong
    "sms_a",           # texting: even heavier pair bursts
    "bitcoinotc",      # trust ratings: triangles present
    "superuser",       # Q&A: mixed
    "rec_movielens",   # bipartite ratings: zero triangles
    "ia_online_ads",   # bipartite clicks: zero triangles
)

DELTA = 600


def fingerprint(name: str, scale: float) -> np.ndarray:
    graph = load_dataset(name, scale)
    counts = count_motifs(graph, DELTA)
    vector = counts.grid.astype(float).ravel()
    norm = np.linalg.norm(vector)
    share = {
        category: counts.category_total(category) / max(counts.total(), 1)
        for category in MotifCategory
    }
    print(
        f"  {name:16s} edges={graph.num_edges:>7,} total motifs={counts.total():>11,} "
        f"stars={share[MotifCategory.STAR]:5.1%} pairs={share[MotifCategory.PAIR]:5.1%} "
        f"triangles={share[MotifCategory.TRIANGLE]:5.1%}"
    )
    return vector / norm if norm else vector


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    args = parser.parse_args()

    print(f"motif fingerprints (δ = {DELTA}s, scale = {args.scale}):")
    vectors = {name: fingerprint(name, args.scale) for name in DATASETS}

    print("\npairwise cosine similarity:")
    header = "                 " + "".join(f"{n[:12]:>13}" for n in DATASETS)
    print(header)
    for a in DATASETS:
        row = "".join(f"{float(vectors[a] @ vectors[b]):13.3f}" for b in DATASETS)
        print(f"  {a:15s}{row}")

    bipartite = [n for n in DATASETS if n in ("rec_movielens", "ia_online_ads")]
    social = [n for n in DATASETS if n not in bipartite]
    within = np.mean([vectors[a] @ vectors[b] for a in bipartite for b in bipartite if a != b])
    across = np.mean([vectors[a] @ vectors[b] for a in bipartite for b in social])
    print(f"\nmean similarity within bipartite pair: {within:.3f}")
    print(f"mean similarity bipartite vs social:   {across:.3f}")
    print("bipartite datasets cluster together:", bool(within > across))


if __name__ == "__main__":
    main()
