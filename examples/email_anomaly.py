"""Anomaly detection with temporal motif profiles.

The paper's introduction motivates motif counting with anomaly
detection: local structure changes faster than volume when behaviour
changes.  This example builds an email-network twin, injects a
spam-burst anomaly (one account blasting many recipients inside a few
minutes), slides a window over the timeline, and flags windows whose
*motif profile* (the normalised 36-vector) diverges from the global
profile — the spam window lights up even though its edge volume is
unremarkable.

Run:  python examples/email_anomaly.py [--edges 20000]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import TemporalGraph, count_motifs
from repro.graph import generators

DELTA = 600  # 10-minute motif window, the paper's default
WINDOW = 6 * 3600  # 6-hour detection windows


def build_traffic(num_edges: int) -> TemporalGraph:
    """Normal email traffic + one injected spam burst."""
    base = generators.powerlaw_temporal_graph(
        600,
        num_edges,
        span=14 * 86_400.0,  # two weeks
        skew=0.8,
        reciprocity=0.3,
        repeat=0.1,
        triadic=0.08,
        seed=42,
    )
    edges = [(u, v, t) for u, v, t in base.internal_edges()]
    # Spam burst: node 9000 cycles through ten addresses eight times
    # within ~8 minutes, midway through the trace.  Repeated recipients
    # matter: a blast to all-distinct addresses spans four nodes per
    # triple and forms no 3-node motif at all.
    t0 = 7 * 86_400
    spam = [
        (9000, 9100 + r, t0 + 60 * wave + 3 * r)
        for wave in range(8)
        for r in range(10)
    ]
    return TemporalGraph(edges + spam), t0


def window_motif_rate(graph: TemporalGraph, lo: float, hi: float) -> tuple:
    """(motif instances per edge, edge count) for edges in [lo, hi).

    A spam blast multiplies the motifs-per-edge ratio: eighty edges
    around one sender inside δ generate thousands of star instances,
    while eighty normal edges generate dozens.
    """
    window_edges = [(u, v, t) for u, v, t in graph.internal_edges() if lo <= t < hi]
    if len(window_edges) < 3:
        return 0.0, len(window_edges)
    counts = count_motifs(TemporalGraph(window_edges), DELTA)
    return counts.total() / len(window_edges), len(window_edges)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=20_000)
    args = parser.parse_args()

    graph, t_spam = build_traffic(args.edges)
    print(f"traffic: {graph} (spam burst injected at t={t_spam})")

    print(f"\n{'window':>14}  {'edges':>6}  {'motifs/edge':>11}")
    t_end = float(graph.timestamps[-1])
    windows = []
    lo = 0.0
    while lo < t_end:
        hi = lo + WINDOW
        rate, edges_in = window_motif_rate(graph, lo, hi)
        windows.append((rate, lo, hi, edges_in))
        lo = hi

    # Robust threshold: median + 6 * MAD, so the anomaly itself cannot
    # inflate the baseline the way a mean/stddev rule would allow.
    rates = np.array([w[0] for w in windows if w[3] >= 3])
    median = float(np.median(rates))
    mad = float(np.median(np.abs(rates - median))) or 1e-9
    threshold = median + 6 * mad

    flagged = []
    for rate, lo, hi, edges_in in windows:
        marker = ""
        if edges_in >= 3 and rate > threshold:
            marker = "  <-- ANOMALY"
            flagged.append((lo, hi))
        print(f"  day {lo / 86_400:5.1f} +6h  {edges_in:6d}  {rate:11.2f}{marker}")

    print(f"\nthreshold: median {median:.2f} + 6*MAD -> {threshold:.2f}")
    print(f"flagged windows: {len(flagged)}")
    hit = any(lo <= t_spam < hi for lo, hi in flagged)
    print(f"spam burst window detected: {hit}")
    if not hit:
        raise SystemExit("expected the spam window to be flagged")


if __name__ == "__main__":
    main()
