"""Streaming replay: incremental sliding-window motif counting.

Temporal graphs are naturally streams of timestamped edges.  This
example replays a synthetic communication network through the
incremental :class:`~repro.core.streaming.StreamingMotifEngine` with a
sliding window, prints the per-checkpoint JSON lines the ``repro
stream`` CLI emits, and verifies the central guarantee: every
checkpoint is **bit-identical** to a batch recount of the live edge
set — without the engine ever recounting the window from scratch.

Run:  python examples/stream_replay.py
"""

import json

from repro import StreamRequest, TemporalGraph, count_motifs, open_stream
from repro.graph.generators import powerlaw_temporal_graph


def main() -> None:
    # A synthetic power-law session graph, replayed in time order —
    # exactly what a message bus delivering one day of traffic looks
    # like from the counter's perspective.
    graph = powerlaw_temporal_graph(2_000, 30_000, seed=7)
    edges = list(graph.internal_edges())
    span = edges[-1][2] - edges[0][2]
    delta, window = 3_600.0, span * 0.25

    print(f"replaying {len(edges):,} edges (span {span:,.0f}s) "
          f"with delta={delta:g}, window={window:,.0f}s\n")

    engine = open_stream(
        StreamRequest(delta=delta, window=window, checkpoint_every=5_000)
    )
    for cp in engine.replay(edges):
        # Each checkpoint carries running totals, window bookkeeping
        # and the ingest/expire/count wall-clock split.
        print(json.dumps(cp.as_dict()))

    # The punchline: streaming counts equal a full batch recount of
    # the live window, cell for cell.
    final = engine.checkpoint()
    live = TemporalGraph(engine.live_edges())
    batch = count_motifs(live, delta)
    identical = (final.counts.grid == batch.grid).all()
    print(f"\nlive window: {live.num_edges:,} edges "
          f"({final.edges_expired:,} expired along the way)")
    print(f"streaming == batch recount: {bool(identical)}")
    print(f"total motifs in window: {final.counts.total():,}")


if __name__ == "__main__":
    main()
