"""Quickstart: count δ-temporal motifs in a small temporal graph.

Reproduces the paper's running example (Fig. 1): five nodes, twelve
timestamped edges, δ = 10 seconds — then tours the pluggable algorithm
registry: every backend (FAST/HARE, the exact baselines, and the
sampling estimators with their confidence intervals) is reachable
through the one `count_motifs` entry point.

Run:  python examples/quickstart.py
"""

from repro import available_algorithms, count_motifs, count_motifs_sweep, TemporalGraph

# The temporal graph of the paper's Fig. 1.  Edges are (src, dst, t);
# node labels can be any hashable value.
EDGES = [
    ("a", "c", 4), ("a", "c", 8), ("d", "a", 9), ("a", "b", 11), ("a", "c", 15),
    ("e", "d", 1), ("e", "c", 6), ("d", "c", 10), ("d", "e", 14), ("c", "d", 17),
    ("e", "d", 18), ("d", "e", 21),
]


def main() -> None:
    graph = TemporalGraph(EDGES)
    print(f"graph: {graph}")
    print(f"registered algorithms: {', '.join(available_algorithms())}")
    print()

    counts = count_motifs(graph, delta=10)  # FAST, the default backend
    print(counts.to_text("All 2-/3-node, 3-edge motifs with δ = 10s"))
    print()

    # The instances the paper names explicitly:
    print("paper walkthrough instances:")
    print(f"  M63 ⟨(a,c,4), (a,c,8), (d,a,9)⟩  -> count {counts['M63']}")
    print(f"  M46 ⟨(e,c,6), (d,c,10), (d,e,14)⟩ -> count {counts['M46']}")
    print(f"  M65 ⟨(d,e,14), (e,d,18), (d,e,21)⟩-> count {counts['M65']}")
    print()

    # Category totals (the three colour groups of the paper's Fig. 2).
    from repro import MotifCategory

    for category in MotifCategory:
        print(f"  {category.value:9s} motifs: {counts.category_total(category)}")
    print()

    # Any registered backend is one keyword away; the exact ones agree
    # cell for cell.
    for algorithm in ("bruteforce", "ex", "bt"):
        other = count_motifs(graph, delta=10, algorithm=algorithm)
        print(f"FAST == {algorithm}: {counts == other}")

    # Parallel counting (HARE) returns identical counts.
    parallel = count_motifs(graph, delta=10, workers=2)
    print(f"FAST == HARE(2 workers): {counts == parallel}")
    print()

    # Sampling estimators return the same MotifCounts shape, flagged
    # approximate and carrying a stderr grid: replicates (n_samples)
    # are averaged and the 95% confidence interval comes for free.
    estimate = count_motifs(
        graph, delta=10, algorithm="bts", q=0.8, n_samples=5, seed=1
    )
    lo, hi = estimate.confidence_interval("M63")
    print(f"BTS estimate (q=0.8, 5 replicates): total ≈ {estimate.total():.1f}")
    print(f"  exact: {estimate.is_exact}, M63 ≈ {estimate['M63']:.2f} "
          f"± {estimate.stderr_of('M63'):.2f} (95% CI [{lo:.2f}, {hi:.2f}])")
    print()

    # Multi-δ / multi-algorithm batches are one call.
    sweep = count_motifs_sweep(graph, deltas=[5, 10, 20], algorithms=["fast", "ex"])
    for delta in (5, 10, 20):
        fast_total = sweep.get("fast", delta).total()
        agree = sweep.get("fast", delta) == sweep.get("ex", delta)
        print(f"δ={delta:2d}: total={fast_total:3d}  FAST==EX: {agree}")


if __name__ == "__main__":
    main()
