"""Quickstart: count δ-temporal motifs in a small temporal graph.

Reproduces the paper's running example (Fig. 1): five nodes, twelve
timestamped edges, δ = 10 seconds — then shows the named instances
from the paper's text and the full 6×6 count grid.

Run:  python examples/quickstart.py
"""

from repro import TemporalGraph, count_motifs

# The temporal graph of the paper's Fig. 1.  Edges are (src, dst, t);
# node labels can be any hashable value.
EDGES = [
    ("a", "c", 4), ("a", "c", 8), ("d", "a", 9), ("a", "b", 11), ("a", "c", 15),
    ("e", "d", 1), ("e", "c", 6), ("d", "c", 10), ("d", "e", 14), ("c", "d", 17),
    ("e", "d", 18), ("d", "e", 21),
]


def main() -> None:
    graph = TemporalGraph(EDGES)
    print(f"graph: {graph}")

    counts = count_motifs(graph, delta=10)
    print(counts.to_text("All 2-/3-node, 3-edge motifs with δ = 10s"))
    print()

    # The instances the paper names explicitly:
    print("paper walkthrough instances:")
    print(f"  M63 ⟨(a,c,4), (a,c,8), (d,a,9)⟩  -> count {counts['M63']}")
    print(f"  M46 ⟨(e,c,6), (d,c,10), (d,e,14)⟩ -> count {counts['M46']}")
    print(f"  M65 ⟨(d,e,14), (e,d,18), (d,e,21)⟩-> count {counts['M65']}")
    print()

    # Category totals (the three colour groups of the paper's Fig. 2).
    from repro import MotifCategory

    for category in MotifCategory:
        print(f"  {category.value:9s} motifs: {counts.category_total(category)}")

    # Exactness: the brute-force oracle agrees cell for cell.
    brute = count_motifs(graph, delta=10, algorithm="bruteforce")
    print(f"\nFAST == brute force: {counts == brute}")

    # Parallel counting (HARE) returns identical counts.
    parallel = count_motifs(graph, delta=10, workers=2)
    print(f"FAST == HARE(2 workers): {counts == parallel}")


if __name__ == "__main__":
    main()
