"""Temporal-cycle scanning on a transaction network.

Temporal cycles — value leaving an account and returning to it within
a short window — are a classic money-laundering signature, and the
reason the paper benchmarks against 2SCENT.  This example scans a
Bitcoin-like twin for cycles with both engines:

* FAST-Tri for the 3-edge cyclic motif **M26** (exact count, fast),
* the 2SCENT enumerator for *instances* of cycles up to length 5,
  reporting the accounts that participate in the most cycles.

Run:  python examples/cycle_fraud_scan.py [--scale 0.2] [--delta 3600]
"""

from __future__ import annotations

import argparse
import time
from collections import Counter

from repro import count_motifs, load_dataset
from repro.baselines.twoscent import enumerate_cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--delta", type=float, default=3600)
    parser.add_argument("--max-len", type=int, default=5)
    args = parser.parse_args()

    graph = load_dataset("soc_bitcoin", args.scale)
    print(f"transaction graph: {graph}")

    t0 = time.perf_counter()
    counts = count_motifs(graph, args.delta, categories="triangle")
    t1 = time.perf_counter()
    print(
        f"\nFAST-Tri: {counts['M26']:,} cyclic triangles (M26) within "
        f"δ={args.delta:.0f}s  [{t1 - t0:.2f}s]"
    )

    t0 = time.perf_counter()
    node_hits: Counter = Counter()
    by_length: Counter = Counter()
    src, dst, _ = graph.edge_lists()
    for cycle in enumerate_cycles(graph, args.delta, max_length=args.max_len, min_length=3):
        by_length[len(cycle)] += 1
        for eid in cycle:
            node_hits[src[eid]] += 1
    t1 = time.perf_counter()

    print(f"2SCENT enumeration (length 3..{args.max_len})  [{t1 - t0:.2f}s]:")
    for length in sorted(by_length):
        print(f"  length {length}: {by_length[length]:,} cycles")
    assert by_length.get(3, 0) == counts["M26"], "engines must agree on M26"
    print("  (3-cycles agree with FAST-Tri's M26 count)")

    print("\naccounts on the most cycles (laundering candidates):")
    for node, hits in node_hits.most_common(5):
        print(f"  account {graph.label(node)}: on {hits:,} cycle edges")


if __name__ == "__main__":
    main()
