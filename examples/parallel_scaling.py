"""HARE parallel scaling demo (a miniature of Fig. 11 / Fig. 12(b)).

Counts motifs on a skew-heavy WikiTalk twin with 1, 2 and 4 workers,
comparing three configurations:

* full HARE (intra-node splitting + dynamic scheduling),
* inter-node only (no heavy-node splitting),
* static scheduling without splitting — the paper's "without thrd".

On a machine with more cores the separation grows; this container has
two (see EXPERIMENTS.md for the measured parallel-efficiency ceiling).

Run:  python examples/parallel_scaling.py [--scale 0.4]
"""

from __future__ import annotations

import argparse
import time

from repro import count_motifs, load_dataset
from repro.graph.statistics import default_degree_threshold, top_k_degrees
from repro.parallel.hare import hare_count

DELTA = 600


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    args = parser.parse_args()

    graph = load_dataset("wikitalk", args.scale)
    graph.ensure_pair_index()
    thrd = default_degree_threshold(graph, 20)
    print(f"graph: {graph}")
    print(f"top-5 temporal degrees: {top_k_degrees(graph, 5)}  (thrd = {thrd})")

    serial_time, serial = timed(lambda: count_motifs(graph, DELTA))
    print(f"\nserial FAST: {serial_time:.2f}s  ({serial.total():,} instances)")

    configs = [
        ("HARE (thrd + dynamic)", dict(thrd=None, schedule="dynamic")),
        ("inter-node only", dict(thrd=float("inf"), schedule="dynamic")),
        ("static, no thrd", dict(thrd=float("inf"), schedule="static")),
    ]
    print(f"\n{'configuration':24} " + "".join(f"w={w:<8}" for w in (1, 2, 4)))
    for label, kwargs in configs:
        cells = []
        for workers in (1, 2, 4):
            elapsed, counts = timed(
                lambda: hare_count(graph, DELTA, workers=workers, **kwargs)
            )
            assert counts == serial, "parallel counts must be exact"
            cells.append(f"{elapsed:6.2f}s ")
        print(f"{label:24} " + " ".join(cells))
    print("\nall configurations produced counts identical to the serial run")


if __name__ == "__main__":
    main()
