"""Ablation 1 (DESIGN.md §5): FAST-Star's hash-map second-edge counting
vs the explicit middle-edge rescan the paper contrasts against."""

import pytest

from conftest import DELTA, bench_graph, once, write_report
from repro.bench.harness import format_table, time_call
from repro.core.ablation import count_star_pair_rescan
from repro.core.fast_star import count_star_pair

DATASETS = ("collegemsg", "superuser")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fast_star_hashmap(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: count_star_pair(graph, DELTA))


@pytest.mark.parametrize("dataset", DATASETS)
def test_fast_star_rescan(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: count_star_pair_rescan(graph, DELTA))


def test_ablation_star_report(benchmark):
    rows = []

    def run():
        for dataset in DATASETS:
            graph = bench_graph(dataset)
            fast = time_call(lambda: count_star_pair(graph, DELTA))
            rescan = time_call(lambda: count_star_pair_rescan(graph, DELTA))
            rows.append([dataset, fast, rescan, f"{rescan / fast:.1f}x"])
        return rows

    once(benchmark, run)
    text = format_table(
        ["dataset", "FAST-Star (hash maps)", "mid-edge rescan", "slowdown"],
        rows,
        title="Ablation: the min/mout hash-map optimisation of Algorithm 1",
    )
    write_report("ablation_star", text)
    # both variants verified equal in tests; here assert the rescans cost more
    for row in rows:
        assert row[2] >= row[1], row
