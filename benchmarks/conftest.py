"""Shared configuration for the benchmark suite.

Every benchmark regenerates part of a paper artifact (DESIGN.md §4
maps files to tables/figures).  ``REPRO_BENCH_SCALE`` shrinks the
dataset twins uniformly (default 0.35 of the registry sizes, which
keeps a full ``pytest benchmarks/ --benchmark-only`` run in the
minutes range); set it to 1.0 to reproduce the EXPERIMENTS.md runs.

Rendered paper-style tables are written to ``benchmarks/reports/``
by the ``*_report`` benchmarks.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.graph.datasets import load_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
DELTA = 600

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        choices=("auto", "python", "columnar"),
        default="auto",
        help="execution backend for the paper-figure benchmarks "
             "(fig10/fig11/table3): auto resolves per algorithm, "
             "python forces the interpreted loops, columnar the "
             "vectorized kernels — counts/estimates are identical "
             "either way, only the timings move",
    )


@pytest.fixture(scope="session")
def backend(request):
    """The --backend choice, threaded into every paper-figure run."""
    return request.config.getoption("--backend")


def resolve_backend(backend: str, algorithm_default: str = "python") -> str:
    """Concrete backend for direct baseline calls (no registry resolve).

    The paper-figure benchmarks call baseline functions directly
    (``ex_count``, ``bts_count_pairs``, ...), whose ``backend=``
    parameter has no ``"auto"``; map it to each baseline's historical
    default so ``--backend`` omitted keeps timing exactly what the
    committed baselines timed.
    """
    return algorithm_default if backend == "auto" else backend


def bench_graph(name: str):
    """Load a dataset twin at the benchmark scale, fully indexed."""
    graph = load_dataset(name, SCALE)
    graph.ensure_pair_index()
    graph.edge_lists()
    return graph


def write_report(name: str, text: str) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def once(benchmark, fn):
    """Run a heavy target exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _note_scale(request):
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    if capmanager is not None:
        with capmanager.global_and_fixture_disabled():
            print(f"\n[repro benchmarks] dataset scale = {SCALE}, delta = {DELTA}")
    yield
