#!/usr/bin/env python
"""Streaming engine benchmark: checkpoint throughput vs naive recount.

Replays a synthetic power-law session graph
(:func:`repro.graph.generators.powerlaw_temporal_graph`) in time order
through the incremental :class:`~repro.core.streaming.StreamingMotifEngine`
with a sliding window, and compares against the *naive* streaming
strategy — rebuilding and batch-recounting the live window at every
checkpoint — which is what the batch stack forced before ISSUE 3.

Counts are asserted **identical** between the two strategies at every
sampled checkpoint; the naive total is estimated from a uniform sample
of checkpoints (recounting a 10^6-edge replay at all of them would
take hours, which is rather the point).

Modes
-----

``python benchmarks/bench_stream.py``
    Full run (10^5 and 10^6 edges) writing ``BENCH_stream.json``.

``python benchmarks/bench_stream.py --smoke --check BENCH_stream.json``
    CI regression gate: run the small smoke size only and fail (exit
    1) if the streaming-vs-naive speedup fell below half the committed
    baseline's — the same machine-robust ratio-of-ratios check as
    ``bench_columnar.py``.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import bisect
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

from repro.core.api import count_motifs
from repro.core.registry import StreamRequest, open_stream
from repro.graph.generators import powerlaw_temporal_graph
from repro.graph.temporal_graph import TemporalGraph

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_stream.json"

#: (edges, nodes) benchmark points.
SIZES = [(100_000, 10_000), (1_000_000, 100_000)]
SMOKE_SIZE = (50_000, 5_000)

DELTA = 3600.0
SEED = 23
#: Sliding window as a fraction of the replay's time span.
WINDOW_FRACTION = 0.2
#: Checkpoints per replay (checkpoint_every = edges / CHECKPOINTS).
CHECKPOINTS = 100
#: Naive recounts actually timed (uniform sample; the rest estimated).
NAIVE_SAMPLES = 8


def bench_one(num_edges: int, num_nodes: int, delta: float) -> Dict[str, object]:
    """Replay one synthetic graph; verify equality, measure speedup."""
    graph = powerlaw_temporal_graph(num_nodes, num_edges, seed=SEED)
    edges = list(graph.internal_edges())
    times = [t for _, _, t in edges]
    span = times[-1] - times[0]
    window = span * WINDOW_FRACTION
    checkpoint_every = max(num_edges // CHECKPOINTS, 1)

    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "delta": delta,
        "window": window,
        "checkpoint_every": checkpoint_every,
    }

    # -- incremental streaming replay ----------------------------------
    engine = open_stream(
        StreamRequest(delta=delta, window=window, checkpoint_every=checkpoint_every)
    )
    snapshots: List[Dict[str, object]] = []
    tick = time.perf_counter()
    for cp in engine.replay(edges):
        snapshots.append(
            {
                "edges_seen": cp.edges_seen,
                "edges_live": cp.edges_live,
                "t_latest": cp.t_latest,
                "per_motif": cp.counts.per_motif(),
            }
        )
    stream_seconds = time.perf_counter() - tick
    entry["checkpoints"] = len(snapshots)
    entry["stream_seconds"] = stream_seconds
    entry["edges_per_second"] = num_edges / max(stream_seconds, 1e-9)

    # -- naive strategy: full live-window recount per checkpoint -------
    # Timed on a uniform checkpoint sample and scaled; counts at the
    # sampled checkpoints must match the streaming grids exactly.
    stride = max(len(snapshots) // NAIVE_SAMPLES, 1)
    sampled = snapshots[stride - 1 :: stride]
    naive_sampled_seconds = 0.0
    for snap in sampled:
        processed = snap["edges_seen"]
        cutoff = snap["t_latest"] - window
        lo = bisect.bisect_left(times, cutoff, 0, processed)
        tick = time.perf_counter()
        live_graph = TemporalGraph(edges[lo:processed])
        naive = count_motifs(live_graph, delta, backend="columnar")
        naive_sampled_seconds += time.perf_counter() - tick
        if naive.per_motif() != snap["per_motif"]:
            raise AssertionError(
                f"streaming != naive recount at edges_seen={processed}: "
                f"{sum(snap['per_motif'].values())} vs {naive.total()}"
            )
    entry["counts_equal"] = True
    entry["naive_sampled_checkpoints"] = len(sampled)
    entry["naive_seconds_estimated"] = (
        naive_sampled_seconds / len(sampled) * len(snapshots)
    )
    entry["speedup"] = entry["naive_seconds_estimated"] / max(stream_seconds, 1e-9)
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    print(
        f"  {entry['edges']:>10,} edges | stream {entry['stream_seconds']:8.2f}s "
        f"({entry['edges_per_second']:>10,.0f} edges/s) | naive est "
        f"{entry['naive_seconds_estimated']:8.2f}s | {entry['speedup']:5.1f}x | "
        f"{entry['checkpoints']} checkpoints"
    )


def run(sizes, delta: float, out: Optional[pathlib.Path]) -> List[Dict[str, object]]:
    print(
        f"streaming engine benchmark (delta={delta:g}, window="
        f"{WINDOW_FRACTION:.0%} of span, seed={SEED})"
    )
    results = []
    for num_edges, num_nodes in sizes:
        results.append(bench_one(num_edges, num_nodes, delta))
        print_entry(results[-1])
    if out is not None:
        payload = {
            "description": "incremental streaming vs naive per-checkpoint recount",
            "generator": "powerlaw_temporal_graph",
            "delta": delta,
            "window_fraction": WINDOW_FRACTION,
            "seed": SEED,
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None or base.get("speedup") is None:
            continue
        compared += 1
        floor = base["speedup"] / 2.0
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges: speedup {entry['speedup']:.2f}x vs "
            f"baseline {base['speedup']:.2f}x (floor {floor:.2f}x) -> {verdict}"
        )
        if entry["speedup"] < floor:
            status = 1
    if compared == 0:
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("streaming engine regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)

    sizes = [SMOKE_SIZE] if args.smoke else [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, args.delta, out)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
