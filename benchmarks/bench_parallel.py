#!/usr/bin/env python
"""Persistent shared-memory pool benchmark: repeated counts vs fork-per-call.

The service workload of the ROADMAP north star: one resident graph,
repeated counting requests.  The historical HARE path pays per request
for a fresh fork pool, a fresh work decomposition, and fresh
copy-on-write faulting; the persistent
:class:`~repro.parallel.pool.WorkerPool` publishes the graph (and the
per-δ kernel tables) into shared memory once, keeps its workers
attached, memoizes the batch plan, and answers *identical* repeated
requests from its raw-counter cache — all version-stamped against the
graph, so every answer stays bit-identical to a cold count (asserted
here on every measured configuration).

Measured per graph size (δ fixed, ``WORKERS`` workers):

``fork_per_call_seconds``
    Mean latency of the pre-pool path: ``hare_count`` forking a fresh
    process pool per request.
``pool_first_call_seconds``
    First request against a fresh persistent pool (includes publish +
    attach + δ-table export).
``pool_repeat_seconds``
    Mean latency of repeated identical requests (result-cache hits) —
    the steady state of repeated traffic.
``pool_resident_seconds``
    Mean latency with the result cache bypassed: resident workers,
    shared arrays and plans, but full kernel execution per request.
``scaling``
    ``pool_resident`` latency per worker count (Fig. 11 analogue).
    ``cpu_count`` is recorded alongside: on a single-core CI container
    the curve is flat by construction; on real hardware it tracks the
    cores.

Modes
-----

``python benchmarks/bench_parallel.py``
    Full run (10^5 and 10^6 edges) writing ``BENCH_parallel.json``.

``python benchmarks/bench_parallel.py --smoke --check BENCH_parallel.json``
    CI regression gate: run the small smoke size only and fail (exit
    1) if the repeated-request speedup fell below half the committed
    baseline's — the machine-robust ratio-of-ratios check the other
    gates use — or if any configuration miscounts.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

from repro.core.api import count_motifs
from repro.graph.generators import powerlaw_temporal_graph
from repro.parallel.hare import hare_count
from repro.parallel.pool import WorkerPool

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_parallel.json"

#: (edges, nodes) benchmark points.
SIZES = [(100_000, 10_000), (1_000_000, 100_000)]
SMOKE_SIZE = (50_000, 5_000)

DELTA = 3600.0
SEED = 23
WORKERS = 4
#: Repeated requests measured per configuration.
REPEATS = 3
#: Worker counts of the scaling curve.
SCALING_WORKERS = (1, 2, 4)


def _timed(fn) -> float:
    tick = time.perf_counter()
    fn()
    return time.perf_counter() - tick


def bench_one(num_edges: int, num_nodes: int, delta: float) -> Dict[str, object]:
    """Measure one graph size; verify exactness of every configuration."""
    graph = powerlaw_temporal_graph(num_nodes, num_edges, seed=SEED)
    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "delta": delta,
        "workers": WORKERS,
        "repeats": REPEATS,
    }
    reference = count_motifs(graph, delta, backend="columnar")
    entry["total"] = reference.total()

    def check(result) -> None:
        if not result.same_counts(reference):
            raise AssertionError(
                f"configuration miscounted: {result.total()} vs {reference.total()}"
            )

    # -- fork-per-call (the historical path) ---------------------------
    fork_seconds: List[float] = []
    for _ in range(REPEATS):
        result = None

        def call():
            nonlocal result
            result = count_motifs(
                graph, delta, workers=WORKERS, backend="columnar",
                start_method="fork",
            )

        fork_seconds.append(_timed(call))
        check(result)
    entry["fork_per_call_seconds"] = sum(fork_seconds) / len(fork_seconds)

    # -- persistent pool: repeated identical requests ------------------
    with WorkerPool(WORKERS, "fork") as pool:
        result = None

        def first():
            nonlocal result
            result = count_motifs(graph, delta, workers=WORKERS, pool=pool)

        entry["pool_first_call_seconds"] = _timed(first)
        check(result)
        repeat_seconds = []
        for _ in range(REPEATS):
            repeat_seconds.append(_timed(first))
            check(result)
        entry["pool_repeat_seconds"] = sum(repeat_seconds) / len(repeat_seconds)
        entry["pool_cache_hits"] = pool.stats["cache_hits"]

    # -- persistent pool: resident execution (no result cache) ---------
    with WorkerPool(WORKERS, "fork", result_cache=False) as pool:
        count_motifs(graph, delta, workers=WORKERS, pool=pool)  # warm attach
        resident_seconds = []
        for _ in range(REPEATS):
            result = None

            def resident():
                nonlocal result
                result = count_motifs(graph, delta, workers=WORKERS, pool=pool)

            resident_seconds.append(_timed(resident))
            check(result)
        entry["pool_resident_seconds"] = sum(resident_seconds) / len(resident_seconds)

    entry["speedup_repeat"] = (
        entry["fork_per_call_seconds"] / max(entry["pool_repeat_seconds"], 1e-9)
    )
    entry["speedup_resident"] = (
        entry["fork_per_call_seconds"] / max(entry["pool_resident_seconds"], 1e-9)
    )

    # -- worker scaling (Fig. 11 analogue) -----------------------------
    # hare_count routes through the pool for every worker count, so
    # the 1-worker point measures the same resident runtime (attach,
    # dispatch, reduction) as the rest of the curve.
    scaling = []
    for workers in SCALING_WORKERS:
        with WorkerPool(workers, "fork", result_cache=False) as pool:
            result = None

            def scaled():
                nonlocal result
                result = hare_count(
                    graph, delta, workers=workers, pool=pool, backend="columnar"
                )

            _timed(scaled)  # attach + δ-table warm
            check(result)
            seconds = _timed(scaled)
            check(result)
            scaling.append({"workers": workers, "seconds": seconds})
    entry["scaling"] = scaling
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    print(
        f"  {entry['edges']:>10,} edges | fork/call {entry['fork_per_call_seconds']:7.3f}s"
        f" | pool repeat {entry['pool_repeat_seconds']:8.4f}s ({entry['speedup_repeat']:6.1f}x)"
        f" | pool resident {entry['pool_resident_seconds']:7.3f}s"
        f" ({entry['speedup_resident']:4.2f}x)"
    )
    curve = ", ".join(f"{s['workers']}w={s['seconds']:.3f}s" for s in entry["scaling"])
    print(f"  {'':>10}       | scaling: {curve}")


def run(sizes, delta: float, out: Optional[pathlib.Path]) -> List[Dict[str, object]]:
    print(
        f"persistent pool benchmark (delta={delta:g}, workers={WORKERS}, "
        f"seed={SEED}, cpus={os.cpu_count()})"
    )
    results = []
    for num_edges, num_nodes in sizes:
        results.append(bench_one(num_edges, num_nodes, delta))
        print_entry(results[-1])
    if out is not None:
        payload = {
            "description": (
                "repeated counting requests: persistent shared-memory pool "
                "vs fork-per-call HARE"
            ),
            "generator": "powerlaw_temporal_graph",
            "delta": delta,
            "workers": WORKERS,
            "seed": SEED,
            "cpu_count": os.cpu_count(),
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None or base.get("speedup_repeat") is None:
            continue
        compared += 1
        floor = base["speedup_repeat"] / 2.0
        verdict = "ok" if entry["speedup_repeat"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges: repeat speedup {entry['speedup_repeat']:.1f}x vs "
            f"baseline {base['speedup_repeat']:.1f}x (floor {floor:.1f}x) -> {verdict}"
        )
        if entry["speedup_repeat"] < floor:
            status = 1
    if compared == 0:
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("persistent pool regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare repeated-request speedups against a committed baseline "
             "JSON; exit 1 on a >2x regression",
    )
    args = parser.parse_args(argv)

    sizes = [SMOKE_SIZE] if args.smoke else [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, args.delta, out)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
