#!/usr/bin/env python
"""Before/after benchmark for the columnar backend (ISSUE 2 tentpole).

Times the ``fast`` algorithm with ``backend="python"`` vs
``backend="columnar"`` on synthetic power-law session graphs
(:func:`repro.graph.generators.powerlaw_temporal_graph`) and asserts
the two backends return **identical** exact counts at every size.

Modes
-----

``python benchmarks/bench_columnar.py``
    Full before/after run (default sizes 10^5 and 10^6 edges; add
    ``--full`` for the 10^7-edge columnar-only point, where the python
    backend is impractical) and write ``BENCH_columnar.json``.

``python benchmarks/bench_columnar.py --smoke --check BENCH_columnar.json``
    CI regression gate: run only the small smoke size and fail (exit
    1) if the measured columnar-vs-python speedup fell below half the
    committed baseline's — a machine-robust ratio-of-ratios check that
    catches kernel regressions without depending on absolute CI box
    speed.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

from repro.core.api import count_motifs
from repro.graph.generators import powerlaw_temporal_graph

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_columnar.json"

#: (edges, nodes) benchmark points; python backend runs where feasible.
SIZES = [(100_000, 10_000), (1_000_000, 100_000)]
FULL_SIZES = SIZES + [(10_000_000, 1_000_000)]
SMOKE_SIZE = (50_000, 5_000)

#: Largest size the python backend is asked to run (beyond this only
#: the columnar backend is timed; there is no "before" to compare).
PYTHON_CAP = 1_000_000

DELTA = 43_200.0
SEED = 11


def bench_one(num_edges: int, num_nodes: int, delta: float) -> Dict[str, object]:
    """Time both backends on one synthetic graph; verify identical counts."""
    graph = powerlaw_temporal_graph(num_nodes, num_edges, seed=SEED)
    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "delta": delta,
    }

    tick = time.perf_counter()
    columnar = count_motifs(graph, delta, backend="columnar")
    entry["columnar_seconds"] = time.perf_counter() - tick
    entry["columnar_phases"] = dict(columnar.phase_seconds)
    entry["total_motifs"] = columnar.total()

    if num_edges <= PYTHON_CAP:
        tick = time.perf_counter()
        python = count_motifs(graph, delta, backend="python")
        entry["python_seconds"] = time.perf_counter() - tick
        entry["python_phases"] = dict(python.phase_seconds)
        entry["counts_equal"] = bool(python == columnar)
        entry["speedup"] = entry["python_seconds"] / max(
            entry["columnar_seconds"], 1e-9
        )
        if not entry["counts_equal"]:
            raise AssertionError(
                f"backend mismatch at {num_edges} edges: "
                f"python total {python.total()} vs columnar {columnar.total()}"
            )
    else:
        entry["python_seconds"] = None
        entry["speedup"] = None
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    py = entry["python_seconds"]
    py_text = f"{py:8.2f}s" if py is not None else "   (skipped)"
    speedup = entry["speedup"]
    speed_text = f"{speedup:5.1f}x" if speedup is not None else "     -"
    print(
        f"  {entry['edges']:>10,} edges | python {py_text} | "
        f"columnar {entry['columnar_seconds']:8.2f}s | {speed_text} | "
        f"{entry['total_motifs']:,} motifs"
    )


def run(sizes, delta: float, out: Optional[pathlib.Path]) -> List[Dict[str, object]]:
    print(f"columnar backend benchmark (delta={delta:g}, seed={SEED})")
    results = []
    for num_edges, num_nodes in sizes:
        results.append(bench_one(num_edges, num_nodes, delta))
        print_entry(results[-1])
    if out is not None:
        payload = {
            "description": "fast algorithm: python vs columnar backend",
            "generator": "powerlaw_temporal_graph",
            "delta": delta,
            "seed": SEED,
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None or base.get("speedup") is None or entry["speedup"] is None:
            continue
        compared += 1
        floor = base["speedup"] / 2.0
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges: speedup {entry['speedup']:.2f}x vs "
            f"baseline {base['speedup']:.2f}x (floor {floor:.2f}x) -> {verdict}"
        )
        if entry["speedup"] < floor:
            status = 1
    if compared == 0:
        # A gate that compares nothing is a broken gate, not a pass.
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("columnar backend regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="also run the 10^7-edge columnar-only point",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = [SMOKE_SIZE]
    elif args.full:
        sizes = [SMOKE_SIZE] + FULL_SIZES
    else:
        # The smoke size is always included so the committed baseline
        # carries the reference point --check compares against.
        sizes = [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        # Only full runs refresh the committed baseline by default; a
        # smoke run writing it would clobber the 10^5/10^6-edge entries
        # the acceptance record and CI gate rest on.
        out = DEFAULT_OUT
    results = run(sizes, args.delta, out)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
