"""E-T2 — Table II: dataset statistics.

Benchmarks dataset twin generation and statistics computation, and
writes the paper-vs-generated statistics table to the reports dir.
"""

import pytest

from conftest import SCALE, bench_graph, once, write_report
from repro.bench.experiments import run_table2
from repro.graph.datasets import REGISTRY
from repro.graph.statistics import compute_statistics


@pytest.mark.parametrize("dataset", ["collegemsg", "superuser", "soc_bitcoin"])
def test_generate_dataset(benchmark, dataset):
    spec = REGISTRY[dataset]
    result = once(benchmark, lambda: spec.build(SCALE))
    assert result.num_edges == max(1, int(spec.gen_edges * SCALE))


@pytest.mark.parametrize("dataset", ["collegemsg", "superuser"])
def test_compute_statistics(benchmark, dataset):
    graph = bench_graph(dataset)
    stats = benchmark(lambda: compute_statistics(graph))
    assert stats.num_edges == graph.num_edges


def test_table2_report(benchmark):
    result = once(benchmark, lambda: run_table2(scale=SCALE))
    assert len(result.rows) == 16
    write_report("table2", result.render())
