#!/usr/bin/env python
"""Serving-layer benchmark: daemon request replay, cold vs warm cache.

The ``repro serve`` workload: a resident daemon holding a published
graph, clients replaying counting requests over the unix socket.  The
first pass over a mixed-δ request list is *cold* — every request runs
a real pool execution (publish and δ-table export already amortized by
a warm-up request).  Repeat passes are *warm*: identical requests are
answered from the :class:`~repro.parallel.pool.WorkerPool`'s
version-stamped result cache without touching the workers.  Every
served answer is checked byte-identical (canonical answer bytes) to a
direct in-process :func:`~repro.core.api.count_motifs` call.

Measured per graph size:

``requests_per_sec_cold``
    Throughput of the first (cache-cold) pass over the unique-δ
    request list, including wire and codec overhead.
``requests_per_sec_warm``
    Throughput of repeated identical passes (cache-warm).
``speedup_warm``
    ``warm / cold`` throughput ratio — the steady-state win of the
    resident service for repeated traffic.
``burst_clients`` / ``burst_executions``
    A burst of concurrent identical requests from separate client
    threads, and how many pool executions the admission layer actually
    ran for them (duplicate coalescing; 1 is perfect).

Modes
-----

``python benchmarks/bench_serve.py``
    Full run writing ``BENCH_serve.json``.

``python benchmarks/bench_serve.py --smoke --check BENCH_serve.json``
    CI regression gate: run the smoke size only and fail (exit 1) if
    the warm/cold speedup fell below half the committed baseline's
    (ratio-of-ratios, machine-robust) or any served answer differs
    from the direct count.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.core.api import count_motifs
from repro.graph.generators import powerlaw_temporal_graph
from repro.serve import MotifService, ServeClient, ServeDaemon, ServiceConfig
from repro.serve.protocol import canonical_counts_bytes

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_serve.json"

#: (edges, nodes) benchmark points.
SIZES = [(100_000, 10_000), (300_000, 30_000)]
SMOKE_SIZE = (20_000, 2_000)

SEED = 31
WORKERS = 4
#: δ multipliers over a base window; each unique δ is one cold request.
DELTA_STEPS = 8
BASE_DELTA = 900.0
#: Warm passes over the identical request list.
WARM_PASSES = 3
#: Concurrent duplicate clients in the coalescing burst.
BURST_CLIENTS = 6


@contextmanager
def serving(graph, workers: int):
    """A daemon on a fresh unix socket around ``graph`` ("bench")."""
    service = MotifService(
        ServiceConfig(workers=workers, batch_window=0.002, max_pending=256)
    )
    service.add_graph("bench", graph)
    tmpdir = tempfile.mkdtemp(prefix="reproserve-bench", dir="/tmp")
    socket_path = os.path.join(tmpdir, "serve.sock")
    daemon = ServeDaemon(service, socket_path=socket_path)
    ready = threading.Event()
    holder: Dict[str, object] = {}

    def run_loop() -> None:
        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        asyncio.set_event_loop(loop)
        loop.run_until_complete(daemon.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run_loop, daemon=True, name="serve-bench-loop")
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("serve daemon failed to start")
    try:
        yield service, socket_path
    finally:
        loop = holder["loop"]
        asyncio.run_coroutine_threadsafe(daemon.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()
        service.close()
        try:
            os.unlink(socket_path)
        except FileNotFoundError:
            pass
        os.rmdir(tmpdir)


def bench_one(num_edges: int, num_nodes: int) -> Dict[str, object]:
    """Measure one graph size; verify every served answer."""
    graph = powerlaw_temporal_graph(num_nodes, num_edges, seed=SEED)
    deltas = [BASE_DELTA * (i + 1) for i in range(DELTA_STEPS)]
    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "deltas": deltas,
        "workers": WORKERS,
        "warm_passes": WARM_PASSES,
    }
    direct = {
        d: canonical_counts_bytes(count_motifs(graph, d, algorithm="fast"))
        for d in deltas
    }

    with serving(graph, WORKERS) as (service, socket_path):
        with ServeClient(socket_path, timeout=600.0) as client:
            # Warm-up: publish + attach + plan, off the books.
            client.count("bench", deltas[0])

            tick = time.perf_counter()
            for d in deltas:
                counts = client.count("bench", d)
                if canonical_counts_bytes(counts) != direct[d]:
                    raise AssertionError(f"served answer diverged at delta={d}")
            cold_seconds = time.perf_counter() - tick
            entry["cold_pass_seconds"] = cold_seconds
            entry["requests_per_sec_cold"] = len(deltas) / cold_seconds

            tick = time.perf_counter()
            for _ in range(WARM_PASSES):
                for d in deltas:
                    counts = client.count("bench", d)
                    if canonical_counts_bytes(counts) != direct[d]:
                        raise AssertionError(
                            f"warm served answer diverged at delta={d}"
                        )
            warm_seconds = time.perf_counter() - tick
            entry["warm_pass_seconds"] = warm_seconds / WARM_PASSES
            entry["requests_per_sec_warm"] = (
                WARM_PASSES * len(deltas) / warm_seconds
            )

        entry["speedup_warm"] = (
            entry["requests_per_sec_warm"]
            / max(entry["requests_per_sec_cold"], 1e-9)
        )
        entry["pool_cache_hits"] = service.pool.stats["cache_hits"]

        # -- duplicate-coalescing burst --------------------------------
        burst_delta = BASE_DELTA * (DELTA_STEPS + 3)  # never requested above
        executions_before = service.stats["executions"]
        errors: List[BaseException] = []
        matched: List[bool] = []
        reference = canonical_counts_bytes(
            count_motifs(graph, burst_delta, algorithm="fast")
        )
        barrier = threading.Barrier(BURST_CLIENTS)

        def hit() -> None:
            try:
                with ServeClient(socket_path, timeout=600.0) as burst_client:
                    barrier.wait(timeout=60)
                    counts = burst_client.count("bench", burst_delta)
                    matched.append(canonical_counts_bytes(counts) == reference)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(BURST_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        if errors:
            raise AssertionError(f"burst client failed: {errors[0]!r}")
        if not all(matched) or len(matched) != BURST_CLIENTS:
            raise AssertionError("burst answers diverged from the direct count")
        entry["burst_clients"] = BURST_CLIENTS
        entry["burst_executions"] = service.stats["executions"] - executions_before
        entry["coalesced_total"] = service.stats["coalesced"]
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    print(
        f"  {entry['edges']:>9,} edges | cold {entry['requests_per_sec_cold']:8.2f} req/s"
        f" | warm {entry['requests_per_sec_warm']:9.1f} req/s"
        f" ({entry['speedup_warm']:6.1f}x)"
        f" | burst {entry['burst_clients']} clients ->"
        f" {entry['burst_executions']} execution(s)"
    )


def run(sizes, out: Optional[pathlib.Path]) -> List[Dict[str, object]]:
    print(
        f"serve benchmark (workers={WORKERS}, deltas={DELTA_STEPS}, "
        f"seed={SEED}, cpus={os.cpu_count()})"
    )
    results = []
    for num_edges, num_nodes in sizes:
        results.append(bench_one(num_edges, num_nodes))
        print_entry(results[-1])
    if out is not None:
        payload = {
            "description": (
                "repro serve daemon replay: cold vs warm (result-cache) "
                "request throughput over the unix socket"
            ),
            "generator": "powerlaw_temporal_graph",
            "workers": WORKERS,
            "delta_steps": DELTA_STEPS,
            "base_delta": BASE_DELTA,
            "seed": SEED,
            "cpu_count": os.cpu_count(),
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None or base.get("speedup_warm") is None:
            continue
        compared += 1
        floor = base["speedup_warm"] / 2.0
        verdict = "ok" if entry["speedup_warm"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges: warm speedup {entry['speedup_warm']:.1f}x vs "
            f"baseline {base['speedup_warm']:.1f}x (floor {floor:.1f}x) -> {verdict}"
        )
        if entry["speedup_warm"] < floor:
            status = 1
        if entry["burst_executions"] > 1:
            print(
                f"  {entry['edges']:,} edges: burst of {entry['burst_clients']} "
                f"identical requests took {entry['burst_executions']} executions "
                "(expected 1) -> REGRESSED"
            )
            status = 1
    if compared == 0:
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("serving layer regressed against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare warm/cold speedups against a committed baseline JSON; "
             "exit 1 on a >2x regression or a coalescing failure",
    )
    args = parser.parse_args(argv)

    sizes = [SMOKE_SIZE] if args.smoke else [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, out)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
