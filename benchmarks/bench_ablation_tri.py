"""Ablations 2 & 4 (DESIGN.md §5): FAST-Tri's pair-timeline bisection
windows, and triple-count-then-divide vs single-thread center removal."""

import pytest

from conftest import DELTA, bench_graph, once, write_report
from repro.bench.harness import format_table, time_call
from repro.core.ablation import count_triangle_no_window
from repro.core.fast_tri import count_triangle

DATASETS = ("collegemsg", "superuser")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fast_tri_windowed(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: count_triangle(graph, DELTA))


@pytest.mark.parametrize("dataset", DATASETS)
def test_fast_tri_full_scan(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: count_triangle_no_window(graph, DELTA))


@pytest.mark.parametrize("dataset", DATASETS)
def test_fast_tri_remove_centers(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: count_triangle(graph, DELTA, remove_centers=True))


def test_ablation_tri_report(benchmark):
    rows = []

    def run():
        for dataset in DATASETS:
            graph = bench_graph(dataset)
            windowed = time_call(lambda: count_triangle(graph, DELTA))
            full = time_call(lambda: count_triangle_no_window(graph, DELTA))
            dedup = time_call(lambda: count_triangle(graph, DELTA, remove_centers=True))
            rows.append([dataset, windowed, full, dedup])
        return rows

    once(benchmark, run)
    text = format_table(
        ["dataset", "FAST-Tri (bisect windows)", "full pair scan", "center removal"],
        rows,
        title="Ablation: pair-timeline windows and the de-duplication strategies",
    )
    write_report("ablation_tri", text)
