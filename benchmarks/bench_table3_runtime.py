"""E-T3 — Table III: single-threaded runtime of all eight algorithms.

The flagship efficiency table.  Per-dataset benchmarks mirror the
paper's columns; the report runs the full sixteen-dataset driver and
asserts the headline shapes: FAST beats EX, FAST-Pair beats BT-Pair,
and FAST-Tri beats the full 2SCENT enumeration, on average.
``--backend columnar`` (see conftest) retimes every column that has a
vectorized backend — FAST's kernels and the PR 5 sampling kernels for
EX/EWS/BTS-Pair; BT and 2SCENT have only python paths.
"""

import pytest

from conftest import DELTA, SCALE, bench_graph, once, resolve_backend, write_report
from repro.baselines.backtracking import bt_count_pairs
from repro.baselines.exact_ex import ex_count
from repro.baselines.sampling_bts import bts_count_pairs
from repro.baselines.sampling_ews import ews_count
from repro.baselines.twoscent import twoscent_count_cycles
from repro.bench.experiments import run_table3
from repro.core.api import count_motifs
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle

#: Representative small/medium/large/skewed datasets for per-algorithm benchmarks.
DATASETS = ("collegemsg", "bitcoinotc", "superuser", "wikitalk")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_fast(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    counts = once(benchmark, lambda: count_motifs(graph, DELTA, backend=backend))
    assert counts.total() > 0


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_ex(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    once(benchmark, lambda: ex_count(graph, DELTA, backend=resolve_backend(backend)))


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_ews(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: ews_count(
            graph, DELTA, p=0.01, q=1.0, backend=resolve_backend(backend)
        ),
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_bt_pair(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: bt_count_pairs(graph, DELTA))


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_bts_pair(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: bts_count_pairs(
            graph, DELTA, q=0.3, exact_when_full=False,
            backend=resolve_backend(backend),
        ),
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_fast_pair(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: count_star_pair(graph, DELTA, backend=resolve_backend(backend)),
    )


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_twoscent_tri(benchmark, dataset):
    graph = bench_graph(dataset)
    once(benchmark, lambda: twoscent_count_cycles(graph, DELTA, enumerate_all_lengths=True))


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3_fast_tri(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: count_triangle(graph, DELTA, backend=resolve_backend(backend)),
    )


def test_table3_report(benchmark):
    result = once(benchmark, lambda: run_table3(scale=SCALE, delta=DELTA))
    speedups = result.data["speedups"]
    def mean(xs):
        return sum(xs) / len(xs)
    # The paper's headline shapes (§V-E): FAST wins each comparison on
    # average across the sixteen datasets.
    assert mean(speedups["fast"]) > 1.0, "FAST should beat EX on average"
    assert mean(speedups["pair"]) > 1.0, "FAST-Pair should beat BT-Pair on average"
    assert mean(speedups["tri"]) > 1.0, "FAST-Tri should beat 2SCENT on average"
    write_report("table3", result.render())
