"""E-F11 — Fig. 11: runtime vs worker count.

HARE vs time-slab-parallel EX, HARE-Pair vs BTS-Pair.  The container
exposes two physical cores (measured ~1.4x two-process efficiency, see
EXPERIMENTS.md), so the asserted shape is relative: HARE at the core
count is no slower than serial HARE, while EX's slab overhead makes
oversubscription strictly worse for it.  ``--backend columnar`` (see
conftest) reruns the scaling curves on the vectorized kernels —
including the PR 5 sampling kernels for BTS-Pair.
"""

import pytest

from conftest import DELTA, SCALE, bench_graph, once, resolve_backend, write_report
from repro.baselines.exact_ex import ex_count
from repro.baselines.sampling_bts import bts_count_pairs
from repro.bench.experiments import run_fig11
from repro.parallel.hare import hare_count, hare_star_pair

WORKERS = (1, 2, 4)
DATASETS = ("superuser", "wikitalk")


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig11_hare(benchmark, dataset, workers, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: hare_count(
            graph, DELTA, workers=workers, backend=resolve_backend(backend)
        ),
    )


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig11_ex_parallel(benchmark, dataset, workers, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: ex_count(
            graph, DELTA, workers=workers, backend=resolve_backend(backend)
        ),
    )


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig11_hare_pair(benchmark, dataset, workers, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: hare_star_pair(
            graph, DELTA, workers=workers, backend=resolve_backend(backend)
        ),
    )


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig11_bts_pair(benchmark, dataset, workers, backend):
    graph = bench_graph(dataset)
    once(
        benchmark,
        lambda: bts_count_pairs(
            graph, DELTA, q=0.3, exact_when_full=False, workers=workers,
            backend=resolve_backend(backend),
        ),
    )


def test_fig11_report(benchmark):
    result = once(
        benchmark,
        lambda: run_fig11(
            datasets=("superuser", "wikitalk", "soc_bitcoin", "redditcomments"),
            workers=WORKERS,
            scale=SCALE,
            delta=DELTA,
        ),
    )
    write_report("fig11", result.render())
    series = result.data["series"]
    # Shape claims are asserted in aggregate across datasets — individual
    # cells are single-shot timings and too noisy to gate on.
    ex_degrades = sum(
        1 for data in series.values() if data["EX"][2] >= data["EX"][1] * 0.9
    )
    assert ex_degrades >= len(series) // 2, {
        name: data["EX"] for name, data in series.items()
    }
    hare_bounded = sum(
        1 for data in series.values() if data["HARE"][1] <= data["HARE"][0] * 2.5
    )
    assert hare_bounded >= len(series) // 2, {
        name: data["HARE"] for name, data in series.items()
    }
