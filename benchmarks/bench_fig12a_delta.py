"""E-F12a — Fig. 12(a): sensitivity to the time window δ.

Paper shape: EX's window counters do O(1) work per event regardless of
δ, so EX is nearly flat; FAST/HARE scans grow with the in-window
degree d^δ, so HARE grows mildly.  The report asserts the *relative*
growth ordering rather than absolute numbers.
"""

import pytest

from conftest import SCALE, bench_graph, once, write_report
from repro.bench.experiments import FIG12A_DELTAS, run_fig12a
from repro.core.api import count_motifs, count_motifs_sweep

SWEEP = (FIG12A_DELTAS[0], FIG12A_DELTAS[-1])  # 7200 and 28800 seconds


@pytest.mark.parametrize("delta", SWEEP)
def test_fig12a_fast_delta(benchmark, delta):
    graph = bench_graph("superuser")
    once(benchmark, lambda: count_motifs(graph, delta))


def test_fig12a_ex_delta_sweep(benchmark):
    # The registry's batch API runs the whole δ sweep in one call; each
    # result carries its own elapsed_seconds for the growth assertion.
    graph = bench_graph("superuser")
    sweep = once(
        benchmark, lambda: count_motifs_sweep(graph, SWEEP, algorithms=("ex",))
    )
    timings = sweep.elapsed("ex")
    assert len(timings) == len(SWEEP) and all(t > 0 for t in timings)


def test_fig12a_report(benchmark):
    result = once(benchmark, lambda: run_fig12a(scale=SCALE, workers=2))
    write_report("fig12a", result.render())
    series = result.data["series"]
    for name, values in series.items():
        growth = values[-1] / max(values[0], 1e-9)
        if name.startswith("EX-"):
            # EX should stay within ~2.5x across a 4x delta sweep
            # (flat up to constant-factor noise and slab overlap).
            assert growth < 2.5, (name, values)
