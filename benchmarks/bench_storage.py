#!/usr/bin/env python
"""Packed-storage benchmark: pack-once-count-many vs parse-per-run.

Measures what the ``.rgz`` format exists for:

* **speedup** — counting from a packed file (``open_packed`` →
  mmap-attached columnar arrays) versus the old cold path of parsing
  the SNAP text edge list and rebuilding the columnar store on every
  run.  Counts are asserted identical between the two paths.
* **peak RSS** — a fresh subprocess counts the largest graph through
  ``source=`` + ``shard_budget`` (the out-of-core shard-halo route)
  and reports ``ru_maxrss``; the full run *requires* that peak to stay
  below the packed file's own size, proving the counting working set
  is the shard budget, not the graph.

Modes
-----

``python benchmarks/bench_storage.py``
    Full run (10^6 and 10^7 edges) writing ``BENCH_storage.json``.
    Fails if the 10^7-edge sharded count's peak RSS reaches the packed
    file size.

``python benchmarks/bench_storage.py --smoke --check BENCH_storage.json``
    CI regression gate: run the small smoke size only and fail (exit
    1) if the packed-vs-parse speedup fell below half the committed
    baseline's — the same ratio-of-ratios check as the other
    benchmarks.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.api import count_motifs
from repro.graph.edgelist import load_edgelist, save_edgelist
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import open_packed, pack_graph

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_storage.json"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

#: (edges, nodes) benchmark points.
SIZES = [(1_000_000, 100_000), (10_000_000, 1_000_000)]
SMOKE_SIZE = (200_000, 20_000)

#: The size whose sharded count must fit below its own file size.
RSS_CRITERION_EDGES = 10_000_000

DELTA = 400.0
SEED = 31
#: Time span per edge; with DELTA this sets ~20 edges per δ-window.
SPAN_PER_EDGE = 20
#: "Count many": packed-path runs per size (each a fresh open).
COUNT_RUNS = 3
SHARD_BUDGET = 500_000


def make_graph(num_edges: int, num_nodes: int, seed: int) -> TemporalGraph:
    """Synthetic canonical-array graph (no Python-loop construction)."""
    rng = np.random.default_rng(seed)
    t = np.sort(rng.integers(0, SPAN_PER_EDGE * num_edges, num_edges))
    src = rng.integers(0, num_nodes, num_edges)
    dst = (src + rng.integers(1, num_nodes, num_edges)) % num_nodes
    return TemporalGraph.from_canonical_arrays(src, dst, t, num_nodes=num_nodes)


def measure_sharded_rss(path: str, delta: float, budget: int) -> Dict[str, int]:
    """Peak RSS of a fresh process counting ``path`` shard by shard.

    The child reads ``VmHWM`` from ``/proc/self/status``: ``ru_maxrss``
    is inherited across ``fork`` and *not* reset by ``execve``, so under
    ``subprocess`` it would report this (large) parent's peak instead of
    the child's own high-water mark.  Non-Linux falls back to
    ``ru_maxrss`` — only meaningful when the launcher itself is small.
    """
    code = (
        "import resource, sys\n"
        "from repro.core.api import count_motifs\n"
        f"result = count_motifs(None, {delta!r}, source={path!r}, "
        f"shard_budget={budget})\n"
        "try:\n"
        "    with open('/proc/self/status') as fh:\n"
        "        rss_kb = next(int(line.split()[1]) for line in fh\n"
        "                      if line.startswith('VmHWM'))\n"
        "except (OSError, StopIteration):\n"
        "    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
        "print(int(result.total()), result.meta['shards'], rss_kb * 1024)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True,
        check=True,
    )
    total, shards, rss = proc.stdout.split()
    return {"total": int(total), "shards": int(shards), "peak_rss_bytes": int(rss)}


def bench_one(num_edges: int, num_nodes: int, delta: float,
              workdir: pathlib.Path) -> Dict[str, object]:
    graph = make_graph(num_edges, num_nodes, SEED)
    text_path = str(workdir / f"g{num_edges}.txt")
    rgz_path = str(workdir / f"g{num_edges}.rgz")
    save_edgelist(graph, text_path)

    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "delta": delta,
    }

    # -- pack once ------------------------------------------------------
    tick = time.perf_counter()
    pack_graph(graph, rgz_path, layout="full")
    entry["pack_seconds"] = time.perf_counter() - tick
    entry["file_bytes"] = os.path.getsize(rgz_path)
    del graph

    # -- parse-per-run cold path ---------------------------------------
    tick = time.perf_counter()
    parsed = load_edgelist(text_path)
    reference = count_motifs(parsed, delta, backend="columnar")
    entry["parse_run_seconds"] = time.perf_counter() - tick
    del parsed

    # -- pack-once-count-many ------------------------------------------
    packed_seconds = 0.0
    for _ in range(COUNT_RUNS):
        tick = time.perf_counter()
        with open_packed(rgz_path) as packed:
            result = count_motifs(packed.graph, delta, backend="columnar")
        packed_seconds += time.perf_counter() - tick
        if not result.same_counts(reference):
            raise AssertionError(
                f"packed count diverged at {num_edges} edges: "
                f"{result.total()} vs {reference.total()}"
            )
    entry["counts_equal"] = True
    entry["count_runs"] = COUNT_RUNS
    entry["packed_run_seconds"] = packed_seconds / COUNT_RUNS
    entry["speedup"] = entry["parse_run_seconds"] / max(
        entry["packed_run_seconds"], 1e-9
    )

    # -- out-of-core shard-halo RSS ------------------------------------
    rss = measure_sharded_rss(rgz_path, delta, SHARD_BUDGET)
    if rss["total"] != int(reference.total()):
        raise AssertionError(
            f"sharded count diverged at {num_edges} edges: "
            f"{rss['total']} vs {int(reference.total())}"
        )
    entry["shard_budget"] = SHARD_BUDGET
    entry["shards"] = rss["shards"]
    entry["peak_rss_bytes"] = rss["peak_rss_bytes"]
    entry["rss_below_file"] = rss["peak_rss_bytes"] < entry["file_bytes"]

    os.unlink(text_path)
    os.unlink(rgz_path)
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    print(
        f"  {entry['edges']:>10,} edges | pack {entry['pack_seconds']:7.2f}s "
        f"({entry['file_bytes'] / 1e6:8.1f} MB) | parse-run "
        f"{entry['parse_run_seconds']:7.2f}s | packed-run "
        f"{entry['packed_run_seconds']:7.2f}s | {entry['speedup']:6.1f}x | "
        f"sharded RSS {entry['peak_rss_bytes'] / 1e6:7.1f} MB "
        f"({'<' if entry['rss_below_file'] else '>='} file, "
        f"{entry['shards']} shards)"
    )


def run(sizes, delta: float, out: Optional[pathlib.Path]) -> List[Dict[str, object]]:
    print(
        f"packed storage benchmark (delta={delta:g}, seed={SEED}, "
        f"{COUNT_RUNS} packed runs/size, shard budget {SHARD_BUDGET:,})"
    )
    results = []
    with tempfile.TemporaryDirectory(prefix="bench-storage-") as workdir:
        for num_edges, num_nodes in sizes:
            results.append(bench_one(num_edges, num_nodes, delta, pathlib.Path(workdir)))
            print_entry(results[-1])
    for entry in results:
        if entry["edges"] >= RSS_CRITERION_EDGES and not entry["rss_below_file"]:
            raise AssertionError(
                f"sharded peak RSS {entry['peak_rss_bytes']:,} B reached the "
                f"packed file size {entry['file_bytes']:,} B at "
                f"{entry['edges']:,} edges — out-of-core contract broken"
            )
    if out is not None:
        payload = {
            "description": "packed mmap storage: pack-once-count-many vs text parse per run",
            "generator": "uniform canonical arrays",
            "delta": delta,
            "seed": SEED,
            "count_runs": COUNT_RUNS,
            "shard_budget": SHARD_BUDGET,
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None or base.get("speedup") is None:
            continue
        compared += 1
        floor = base["speedup"] / 2.0
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges: speedup {entry['speedup']:.2f}x vs "
            f"baseline {base['speedup']:.2f}x (floor {floor:.2f}x) -> {verdict}"
        )
        if entry["speedup"] < floor:
            status = 1
    if compared == 0:
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("packed storage regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)

    sizes = [SMOKE_SIZE] if args.smoke else [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, args.delta, out)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
