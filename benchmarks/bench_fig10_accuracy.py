"""E-F10 — Fig. 10: FAST and EX produce identical count matrices.

The accuracy claim of §V-D: both exact algorithms agree cell-by-cell
on all four display datasets.  Benchmarks time each algorithm; the
report renders both grids and hard-asserts equality.  ``--backend``
(see conftest) reruns the figure on either kernel backend — the
equality assertion is the same either way, which is the point.
"""

import pytest

from conftest import DELTA, SCALE, bench_graph, once, resolve_backend, write_report
from repro.baselines.exact_ex import ex_count
from repro.bench.experiments import FIG10_DATASETS, run_fig10
from repro.core.api import count_motifs


@pytest.mark.parametrize("dataset", FIG10_DATASETS)
def test_fig10_fast(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    counts = once(benchmark, lambda: count_motifs(graph, DELTA, backend=backend))
    assert counts.total() > 0


@pytest.mark.parametrize("dataset", FIG10_DATASETS)
def test_fig10_ex_matches_fast(benchmark, dataset, backend):
    graph = bench_graph(dataset)
    fast = count_motifs(graph, DELTA, backend=backend)
    ex = once(
        benchmark,
        lambda: ex_count(graph, DELTA, backend=resolve_backend(backend)),
    )
    assert ex == fast  # the figure's whole point


def test_fig10_report(benchmark):
    result = once(benchmark, lambda: run_fig10(scale=SCALE, delta=DELTA))
    assert result.data["all_equal"] is True
    write_report("fig10", result.render())
