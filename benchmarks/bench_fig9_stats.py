"""E-F9 — Fig. 9: degree skew and per-node counting time on WikiTalk.

The paper's observation: the degree distribution is long-tailed and
the few highest-degree nodes dominate total counting time.  The report
asserts exactly that shape on the WikiTalk twin.
"""

from conftest import DELTA, SCALE, bench_graph, once, write_report
from repro.bench.experiments import run_fig9
from repro.core.fast_star import scan_center


def test_scan_highest_degree_node(benchmark):
    graph = bench_graph("wikitalk")
    degrees = graph.degrees()
    hub = int(degrees.argmax())
    seq = graph.node_sequence(hub)

    def scan():
        scan_center(seq, DELTA, [0] * 24, [0] * 8)

    benchmark(scan)


def test_scan_median_degree_node(benchmark):
    graph = bench_graph("wikitalk")
    degrees = graph.degrees()
    order = degrees.argsort()
    median_node = int(order[len(order) // 2])
    seq = graph.node_sequence(median_node)

    def scan():
        scan_center(seq, DELTA, [0] * 24, [0] * 8)

    benchmark(scan)


def test_fig9_report(benchmark):
    result = once(benchmark, lambda: run_fig9(dataset="wikitalk", delta=DELTA, scale=SCALE))
    totals = result.data["bucket_totals"]
    write_report("fig9", result.render())
    # Paper shape: high-degree buckets dominate estimated time even
    # though they hold a handful of nodes.  Compare the top bucket
    # against the (node-dominant) lowest bucket rather than requiring a
    # strict argmax, which single-shot per-node timings can jitter.
    assert totals[-1] > totals[0], totals
