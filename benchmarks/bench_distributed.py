#!/usr/bin/env python
"""Distributed shard execution benchmark: 1 vs 2 vs 4 localhost workers.

Measures what the coordinator/worker runtime exists for: the shard
phase of a packed-graph count farming out across worker daemons.  One
fixed shard plan (so the work is identical at every cluster size) is
executed on clusters of 1, 2 and 4 ``repro worker`` subprocesses, all
holding the packed file (the count-by-reference placement path), and
every distributed grid is asserted bit-identical to the serial
:class:`~repro.storage.sharded.ShardedGraph` count of the same plan.

Per entry:

* **speedup** — wall-clock of the 1-worker cluster over this cluster
  size (the shard-phase scaling claim; 1.0 by definition at 1 worker).
* **speedup_vs_serial** — the serial in-process shard union over this
  cluster size (dispatch overhead shows up here).

Full runs on a multi-core box assert near-linear scaling: ≥ 1.7× at 2
workers.  Single-core boxes (``os.cpu_count() < 2``) cannot scale
localhost workers and skip that assertion — honestly recording
``cores`` so the committed baseline is interpretable.

Modes
-----

``python benchmarks/bench_distributed.py``
    Full run (10^7 edges) writing ``BENCH_distributed.json``.

``python benchmarks/bench_distributed.py --smoke --check BENCH_distributed.json``
    CI gate: the small smoke size only; equivalence is asserted as
    always, and measured speedups must stay above half the committed
    baseline's (ratio-of-ratios, same as the other benches).

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import count_motifs
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import pack_graph

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_distributed.json"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"
REPO_ROOT = SRC_DIR.parent

FULL_SIZE = (10_000_000, 1_000_000)
SMOKE_SIZE = (200_000, 20_000)
WORKER_COUNTS = (1, 2, 4)
SMOKE_WORKER_COUNTS = (1, 2)

DELTA = 400.0
SEED = 47
#: Time span per edge; with DELTA this sets ~20 edges per δ-window.
SPAN_PER_EDGE = 20
#: One fixed plan for every cluster size: enough units that a 4-worker
#: cluster self-schedules, small enough that per-unit dispatch is cheap.
NUM_SHARDS = 16

#: Full runs on a multi-core box must scale at least this much at 2
#: workers; a single core cannot run two workers concurrently at all.
MIN_SPEEDUP_2_WORKERS = 1.7


def make_graph(num_edges: int, num_nodes: int, seed: int) -> TemporalGraph:
    rng = np.random.default_rng(seed)
    t = np.sort(rng.integers(0, SPAN_PER_EDGE * num_edges, num_edges))
    src = rng.integers(0, num_nodes, num_edges)
    dst = (src + rng.integers(1, num_nodes, num_edges)) % num_nodes
    return TemporalGraph.from_canonical_arrays(src, dst, t, num_nodes=num_nodes)


def spawn_workers(count: int, source: str) -> Tuple[List[subprocess.Popen], str]:
    """``count`` worker daemons holding ``source``; returns (procs, cluster)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    procs, addresses = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker", "--port", "0",
             "--source", source],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, cwd=str(REPO_ROOT), text=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"worker listening on (\S+)", line)
        if not match:
            proc.kill()
            raise RuntimeError(f"worker printed no address: {line!r}")
        procs.append(proc)
        addresses.append(match.group(1))
    return procs, ",".join(addresses)


def stop_workers(procs: List[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        proc.wait(timeout=30)
        proc.stdout.close()


def bench_size(num_edges: int, num_nodes: int, delta: float,
               worker_counts, workdir: pathlib.Path) -> List[Dict[str, object]]:
    graph = make_graph(num_edges, num_nodes, SEED)
    rgz_path = str(workdir / f"g{num_edges}.rgz")
    pack_graph(graph, rgz_path, layout="full")
    del graph

    # Serial reference: the same shard plan, one process, no sockets.
    tick = time.perf_counter()
    reference = count_motifs(rgz_path, delta, num_shards=NUM_SHARDS)
    serial_seconds = time.perf_counter() - tick
    print(f"  {num_edges:>10,} edges | serial shard union "
          f"{serial_seconds:7.2f}s ({NUM_SHARDS} shards)")

    entries: List[Dict[str, object]] = []
    one_worker_seconds: Optional[float] = None
    for workers in worker_counts:
        procs, cluster = spawn_workers(workers, rgz_path)
        try:
            tick = time.perf_counter()
            result = count_motifs(rgz_path, delta, cluster=cluster,
                                  num_shards=NUM_SHARDS)
            elapsed = time.perf_counter() - tick
        finally:
            stop_workers(procs)
        if not np.array_equal(result.grid, reference.grid):
            raise AssertionError(
                f"distributed count diverged at {workers} workers: "
                f"{result.total()} vs {reference.total()}"
            )
        meta = result.meta["cluster"]
        if one_worker_seconds is None:
            one_worker_seconds = elapsed
        entry: Dict[str, object] = {
            "edges": num_edges,
            "nodes": num_nodes,
            "delta": delta,
            "workers": workers,
            "shards": result.meta["shards"],
            "elapsed_seconds": elapsed,
            "serial_seconds": serial_seconds,
            "speedup": one_worker_seconds / max(elapsed, 1e-9),
            "speedup_vs_serial": serial_seconds / max(elapsed, 1e-9),
            "counts_equal": True,
            "jobs": sum(meta["jobs"].values()),
            "retries": meta["retries"],
            "speculative": meta["speculative"],
            "bytes_shipped": meta["bytes_shipped"],
            "local_workers": len(meta["local_workers"]),
        }
        entries.append(entry)
        print(
            f"  {num_edges:>10,} edges | {workers} worker(s) "
            f"{elapsed:7.2f}s | x{entry['speedup']:.2f} vs 1 worker | "
            f"x{entry['speedup_vs_serial']:.2f} vs serial | "
            f"{entry['jobs']} jobs, {entry['bytes_shipped']:,} B shipped"
        )
    os.unlink(rgz_path)
    return entries


def run(sizes, worker_counts, delta: float,
        out: Optional[pathlib.Path], *, smoke: bool) -> List[Dict[str, object]]:
    cores = os.cpu_count() or 1
    print(
        f"distributed shard execution benchmark (delta={delta:g}, "
        f"seed={SEED}, {NUM_SHARDS} shards, workers={tuple(worker_counts)}, "
        f"{cores} core(s))"
    )
    results: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as workdir:
        for num_edges, num_nodes in sizes:
            results.extend(bench_size(
                num_edges, num_nodes, delta, worker_counts,
                pathlib.Path(workdir),
            ))
    if not smoke and cores >= 2:
        for entry in results:
            if entry["workers"] == 2 and entry["speedup"] < MIN_SPEEDUP_2_WORKERS:
                raise AssertionError(
                    f"shard-phase speedup at 2 workers is "
                    f"{entry['speedup']:.2f}x on a {cores}-core box "
                    f"(required {MIN_SPEEDUP_2_WORKERS}x)"
                )
    elif not smoke:
        print(
            f"single-core machine: skipping the {MIN_SPEEDUP_2_WORKERS}x "
            "scaling assertion (two localhost workers cannot run "
            "concurrently); equivalence was asserted for every entry"
        )
    if out is not None:
        payload = {
            "description": "distributed shard execution: localhost worker daemons vs serial shard union",
            "generator": "uniform canonical arrays",
            "delta": delta,
            "seed": SEED,
            "num_shards": NUM_SHARDS,
            "cores": cores,
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline.

    Equivalence is asserted during the run itself; what the gate adds
    is a floor on scaling: half the committed baseline's speedup at
    the same (edges, workers) point.
    """
    baseline = json.loads(baseline_path.read_text())
    by_key = {
        (entry["edges"], entry["workers"]): entry
        for entry in baseline["results"]
    }
    status = 0
    compared = 0
    for entry in results:
        if entry["workers"] == 1:
            continue  # speedup is 1.0 by definition
        base = by_key.get((entry["edges"], entry["workers"]))
        if base is None or base.get("speedup") is None:
            continue
        compared += 1
        floor = base["speedup"] / 2.0
        verdict = "ok" if entry["speedup"] >= floor else "REGRESSED"
        print(
            f"  {entry['edges']:,} edges @ {entry['workers']} workers: "
            f"speedup {entry['speedup']:.2f}x vs baseline "
            f"{base['speedup']:.2f}x (floor {floor:.2f}x) -> {verdict}"
        )
        if entry["speedup"] < floor:
            status = 1
    if compared == 0:
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "(edges, workers) points; the regression gate cannot run"
        )
        return 1
    if status:
        print("distributed scaling regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size at "
             f"{SMOKE_WORKER_COUNTS} workers",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes, worker_counts = [SMOKE_SIZE], SMOKE_WORKER_COUNTS
    else:
        sizes, worker_counts = [SMOKE_SIZE, FULL_SIZE], WORKER_COUNTS
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, worker_counts, args.delta, out, smoke=args.smoke)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
