#!/usr/bin/env python
"""Before/after benchmark for the vectorized sampling kernels (ISSUE 5).

Times the BTS-Pair and EWS estimators with ``backend="python"`` vs
``backend="columnar"`` on synthetic power-law session graphs, asserts
the fixed-seed estimates are **bit-identical** at every size (the PR 5
conformance contract), and additionally times BTS block farming on a
persistent shared-memory :class:`~repro.parallel.pool.WorkerPool`.

Modes
-----

``python benchmarks/bench_sampling.py``
    Full before/after run (10^5 and 10^6 edges) writing
    ``BENCH_sampling.json``.

``python benchmarks/bench_sampling.py --smoke --check BENCH_sampling.json``
    CI regression gate: run only the small smoke size and fail (exit
    1) if a measured columnar-vs-python speedup fell below half the
    committed baseline's — the same machine-robust ratio-of-ratios
    check as the columnar/stream/parallel gates.

Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.sampling_bts import bts_count_pairs
from repro.baselines.sampling_ews import ews_count
from repro.graph.generators import powerlaw_temporal_graph
from repro.parallel.pool import WorkerPool

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_sampling.json"

#: (edges, nodes) benchmark points.
SIZES = [(100_000, 10_000), (1_000_000, 100_000)]
SMOKE_SIZE = (50_000, 5_000)

DELTA = 43_200.0
GRAPH_SEED = 11
SAMPLE_SEED = 5

#: The paper's configurations: BTS-Pair at q = 0.3, EWS at p = 0.01.
BTS_KWARGS = dict(q=0.3, seed=SAMPLE_SEED, exact_when_full=False)
EWS_KWARGS = dict(p=0.01, q=1.0, seed=SAMPLE_SEED)

#: Gated estimators: each carries a python-vs-columnar speedup.
ESTIMATORS = ("bts", "ews")


def _timed(fn):
    tick = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - tick


def bench_one(num_edges: int, num_nodes: int, delta: float, pool_workers: int) -> Dict[str, object]:
    """Time both backends (and the pool) on one synthetic graph."""
    graph = powerlaw_temporal_graph(num_nodes, num_edges, seed=GRAPH_SEED)
    entry: Dict[str, object] = {
        "edges": graph.num_edges,
        "nodes": graph.num_nodes,
        "delta": delta,
    }

    # -- BTS-Pair ------------------------------------------------------
    col, col_s = _timed(
        lambda: bts_count_pairs(graph, delta, backend="columnar", **BTS_KWARGS)
    )
    py, py_s = _timed(
        lambda: bts_count_pairs(graph, delta, backend="python", **BTS_KWARGS)
    )
    if not np.array_equal(col.grid, py.grid):
        raise AssertionError(f"BTS backend mismatch at {num_edges} edges")
    with WorkerPool(pool_workers, "fork", result_cache=False) as pool:
        # First call publishes the graph + δ table; the second measures
        # the steady-state resident runtime a service would see.
        pooled = bts_count_pairs(
            graph, delta, backend="columnar", workers=pool_workers, pool=pool,
            **BTS_KWARGS,
        )
        _, pool_s = _timed(
            lambda: bts_count_pairs(
                graph, delta, backend="columnar", workers=pool_workers,
                pool=pool, **BTS_KWARGS,
            )
        )
    if not np.array_equal(pooled.grid, py.grid):
        raise AssertionError(f"BTS pool mismatch at {num_edges} edges")
    entry["bts"] = {
        "python_seconds": py_s,
        "columnar_seconds": col_s,
        "pool_seconds": pool_s,
        "pool_workers": pool_workers,
        "speedup": py_s / max(col_s, 1e-9),
        "estimate_total": float(col.total()),
    }

    # -- EWS -----------------------------------------------------------
    col, col_s = _timed(
        lambda: ews_count(graph, delta, backend="columnar", **EWS_KWARGS)
    )
    py, py_s = _timed(
        lambda: ews_count(graph, delta, backend="python", **EWS_KWARGS)
    )
    if not np.array_equal(col.grid, py.grid):
        raise AssertionError(f"EWS backend mismatch at {num_edges} edges")
    entry["ews"] = {
        "python_seconds": py_s,
        "columnar_seconds": col_s,
        "speedup": py_s / max(col_s, 1e-9),
        "estimate_total": float(col.total()),
    }
    return entry


def print_entry(entry: Dict[str, object]) -> None:
    for name in ESTIMATORS:
        data = entry[name]
        pool_text = (
            f" | pool[{data['pool_workers']}] {data['pool_seconds']:7.2f}s"
            if "pool_seconds" in data
            else ""
        )
        print(
            f"  {entry['edges']:>10,} edges | {name.upper():4s} | "
            f"python {data['python_seconds']:8.2f}s | "
            f"columnar {data['columnar_seconds']:7.2f}s | "
            f"{data['speedup']:5.1f}x{pool_text}"
        )


def run(sizes, delta: float, out: Optional[pathlib.Path], pool_workers: int) -> List[Dict[str, object]]:
    print(
        f"sampling kernels benchmark (delta={delta:g}, sample seed="
        f"{SAMPLE_SEED}, cpu_count={os.cpu_count()})"
    )
    results = []
    for num_edges, num_nodes in sizes:
        results.append(bench_one(num_edges, num_nodes, delta, pool_workers))
        print_entry(results[-1])
    if out is not None:
        payload = {
            "description": "BTS-Pair + EWS estimators: python vs columnar backend",
            "generator": "powerlaw_temporal_graph",
            "delta": delta,
            "graph_seed": GRAPH_SEED,
            "sample_seed": SAMPLE_SEED,
            "bts_kwargs": {k: v for k, v in BTS_KWARGS.items() if k != "exact_when_full"},
            "ews_kwargs": dict(EWS_KWARGS),
            "cpu_count": os.cpu_count(),
            "results": results,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"written to {out}")
    return results


def check(results: List[Dict[str, object]], baseline_path: pathlib.Path) -> int:
    """Ratio-of-ratios regression gate against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    by_edges = {entry["edges"]: entry for entry in baseline["results"]}
    status = 0
    compared = 0
    for entry in results:
        base = by_edges.get(entry["edges"])
        if base is None:
            continue
        for name in ESTIMATORS:
            base_speedup = base.get(name, {}).get("speedup")
            speedup = entry[name]["speedup"]
            if base_speedup is None:
                continue
            compared += 1
            floor = base_speedup / 2.0
            verdict = "ok" if speedup >= floor else "REGRESSED"
            print(
                f"  {entry['edges']:,} edges {name.upper()}: speedup "
                f"{speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x) -> {verdict}"
            )
            if speedup < floor:
                status = 1
    if compared == 0:
        # A gate that compares nothing is a broken gate, not a pass.
        print(
            f"no baseline entry in {baseline_path} matches the measured "
            "sizes; the regression gate cannot run"
        )
        return 1
    if status:
        print("sampling kernels regressed >2x against the committed baseline")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"run only the {SMOKE_SIZE[0]:,}-edge smoke size",
    )
    parser.add_argument("--delta", type=float, default=DELTA)
    parser.add_argument(
        "--pool-workers", type=int, default=min(4, os.cpu_count() or 1),
        help="workers for the persistent-pool BTS timing",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help=f"write results JSON here (default {DEFAULT_OUT.name}; "
             "omitted in --check runs unless given explicitly)",
    )
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="BASELINE",
        help="compare speedups against a committed baseline JSON; exit 1 "
             "on a >2x regression",
    )
    args = parser.parse_args(argv)

    sizes = [SMOKE_SIZE] if args.smoke else [SMOKE_SIZE] + SIZES
    out = args.out
    if out is None and args.check is None and not args.smoke:
        out = DEFAULT_OUT
    results = run(sizes, args.delta, out, args.pool_workers)
    if args.check is not None:
        return check(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
