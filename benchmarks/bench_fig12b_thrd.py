"""E-F12b — Fig. 12(b): sensitivity to the degree threshold thrd.

Compares HARE's hierarchical mode (intra-node splitting of heavy
nodes + dynamic scheduling) against inter-node-only and static
("without thrd") configurations on the skew-heavy WikiTalk twin.
"""

import pytest

from conftest import DELTA, SCALE, bench_graph, once, write_report
from repro.bench.experiments import run_fig12b
from repro.graph.statistics import default_degree_threshold
from repro.parallel.hare import hare_count


@pytest.mark.parametrize("config", ["default_thrd", "no_intra", "static_no_thrd"])
def test_fig12b_configs(benchmark, config):
    graph = bench_graph("wikitalk")
    thrd = default_degree_threshold(graph, 20)
    kwargs = {
        "default_thrd": {"thrd": thrd, "schedule": "dynamic"},
        "no_intra": {"thrd": float("inf"), "schedule": "dynamic"},
        "static_no_thrd": {"thrd": float("inf"), "schedule": "static"},
    }[config]
    once(benchmark, lambda: hare_count(graph, DELTA, workers=2, **kwargs))


def test_fig12b_report(benchmark):
    result = once(benchmark, lambda: run_fig12b(scale=SCALE, delta=DELTA, workers=(1, 2)))
    write_report("fig12b", result.render())
    assert result.data["base_thrd"] > 0
