#!/usr/bin/env python
"""Aggregate every committed ``benchmarks/BENCH_*.json`` into one table.

Each benchmark writes its own baseline JSON and guards itself with a
``--smoke --check`` gate, but nothing showed the *trajectory* — how
the headline speedups of every subsystem stand next to each other
across PRs.  This tool prints exactly that: one row per (benchmark,
graph size, metric), so a perf regression anywhere in the committed
baselines is visible at a glance in CI logs and PR reviews.

The walker is schema-tolerant: any ``speedup`` / ``speedup_*`` value
in a result entry (top level or one nesting level down, e.g. the
per-estimator blocks of ``BENCH_sampling.json``) becomes a row, so new
benchmarks join the table by just writing their JSON.

Usage::

    python tools/bench_report.py [--dir benchmarks]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Iterator, List, Optional, Tuple


def iter_speedups(entry: dict, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield (metric label, value) for every speedup key in an entry."""
    for key, value in sorted(entry.items()):
        if isinstance(value, dict):
            yield from iter_speedups(value, prefix + key + ".")
        elif key == "speedup" or key.startswith("speedup_"):
            if value is None:
                continue
            try:
                speedup = float(value)
            except (TypeError, ValueError):
                continue
            label = prefix + key
            if label.endswith(".speedup"):
                label = label[: -len(".speedup")]
            elif label == "speedup":
                label = "overall"
            else:
                label = label.replace("speedup_", "")
            yield label, speedup


def collect(bench_dir: pathlib.Path) -> List[Tuple[str, str, int, str, float]]:
    """(benchmark, description, edges, metric, speedup) rows, sorted."""
    rows: List[Tuple[str, str, int, str, float]] = []
    if not bench_dir.is_dir():
        print(f"warning: no benchmark directory at {bench_dir}", file=sys.stderr)
        return rows
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if not isinstance(payload, dict):
            print(
                f"warning: skipping {path.name}: top level is "
                f"{type(payload).__name__}, expected object",
                file=sys.stderr,
            )
            continue
        name = path.stem[len("BENCH_"):]
        description = str(payload.get("description", ""))
        results = payload.get("results", [])
        if not isinstance(results, list):
            print(
                f"warning: skipping {path.name}: 'results' is not a list",
                file=sys.stderr,
            )
            continue
        for entry in results:
            if not isinstance(entry, dict):
                continue
            try:
                edges = int(entry.get("edges", 0))
            except (TypeError, ValueError):
                edges = 0
            for metric, value in iter_speedups(entry):
                rows.append((name, description, edges, metric, value))
    return rows


def render(rows: List[Tuple[str, str, int, str, float]]) -> str:
    lines = ["benchmark speedup trajectory (committed baselines)", ""]
    header = f"{'benchmark':<12} {'edges':>12} {'metric':<18} {'speedup':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    last_name = None
    for name, description, edges, metric, value in rows:
        if name != last_name:
            if last_name is not None:
                lines.append("")
            lines.append(f"[{name}] {description}")
            last_name = name
        lines.append(f"{name:<12} {edges:>12,} {metric:<18} {value:>8.2f}x")
    if last_name is None:
        lines.append("(no BENCH_*.json baselines found)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "benchmarks",
        help="directory holding the BENCH_*.json baselines",
    )
    args = parser.parse_args(argv)
    rows = collect(args.dir)
    print(render(rows))
    # Informational: each benchmark's own --smoke --check gate is the
    # pass/fail authority; an empty table still flags loudly above.
    return 0


if __name__ == "__main__":
    sys.exit(main())
