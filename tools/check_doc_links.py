#!/usr/bin/env python
"""Markdown link checker for the docs tree (CI docs job).

Scans the repository's markdown pages for relative links and fails if
any target file is missing — the offline equivalent of a link-check
service (external http(s) links and pure anchors are skipped).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List

ROOT = pathlib.Path(__file__).resolve().parent.parent
PAGES = sorted(
    list(ROOT.glob("*.md")) + list((ROOT / "docs").glob("*.md"))
)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check() -> List[str]:
    errors = []
    for page in PAGES:
        for target in LINK.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{page.relative_to(ROOT)}: broken link -> {target}")
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print(error)
    print(
        f"checked {len(PAGES)} pages: "
        + ("OK" if not errors else f"{len(errors)} broken link(s)")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
