"""Unit tests for the vectorized sampling kernels (PR 5 tentpole).

The cross-backend *estimate* equalities live in tests/test_conformance
and tests/test_determinism; this module pins the kernel building
blocks themselves: the shared triple-classification table, the
canonical floating-point reductions, and the per-edge δ-window memo's
export/install round trip.
"""

import numpy as np
import pytest

from repro.core.columnar_kernels import (
    edge_window_ends,
    export_delta_cache,
    install_delta_cache,
)
from repro.core.motifs import classify_triple
from repro.core.sampling_kernels import (
    TRIPLE_CELL_TABLE,
    ews_grid,
    ht_weight_sum,
    second_edge_code,
    third_edge_code,
    wedge_node,
)
from repro.graph.temporal_graph import TemporalGraph
from tests.conftest import random_graph


class TestTripleCellTable:
    def test_matches_classify_triple_exhaustively(self):
        """Every (second, third) edge shape the kernels can generate
        classifies to exactly what classify_triple says — including the
        rejections (fourth nodes, unreachable wedge references)."""
        e1 = (0, 1)
        nodes = (0, 1, 2, 3, 4)
        checked = 0
        for s2 in nodes[:3]:
            for d2 in nodes[:3]:
                if s2 == d2 or not {s2, d2} & {0, 1}:
                    continue  # kernels only generate incident seconds
                code2 = second_edge_code(0, 1, s2, d2)
                w = wedge_node(code2, s2, d2)
                for s3 in nodes:
                    for d3 in nodes:
                        if s3 == d3:
                            continue
                        cell = TRIPLE_CELL_TABLE[
                            code2 * 16 + third_edge_code(0, 1, w, s3, d3)
                        ]
                        motif = classify_triple((e1, (s2, d2), (s3, d3)))
                        checked += 1
                        if motif is None:
                            assert cell == -1, (s2, d2, s3, d3)
                        else:
                            expected = (motif.row - 1) * 6 + (motif.col - 1)
                            assert cell == expected, (s2, d2, s3, d3)
        assert checked == 120  # 6 second shapes x 20 third-edge pairs

    def test_wedge_codes_split_pair_and_wedge_shapes(self):
        assert second_edge_code(0, 1, 0, 1) == 0
        assert second_edge_code(0, 1, 1, 0) == 1
        assert wedge_node(0, 0, 1) == -1
        assert wedge_node(1, 1, 0) == -1
        for s2, d2 in ((0, 2), (1, 2), (2, 0), (2, 1)):
            code = second_edge_code(0, 1, s2, d2)
            assert code >= 2
            assert wedge_node(code, s2, d2) == 2


class TestCanonicalReductions:
    def test_ht_weight_sum_is_enumeration_order_free(self):
        rng = np.random.default_rng(0)
        spans = rng.uniform(0, 9.5, size=500)
        shuffled = spans.copy()
        rng.shuffle(shuffled)
        assert ht_weight_sum(spans, 10.0, 0.3) == ht_weight_sum(shuffled, 10.0, 0.3)

    def test_ht_weight_sum_single_instance(self):
        # weight = W / (q * (W - span))
        value = ht_weight_sum([4.0], 10.0, 0.5)
        assert value == pytest.approx(10.0 / (0.5 * 6.0))

    def test_ews_grid_weights(self):
        pair = np.zeros(36, dtype=np.int64)
        wedge = np.zeros(36, dtype=np.int64)
        pair[28] = 3
        wedge[5] = 2
        grid = ews_grid(pair, wedge, p=0.5, q=0.25)
        assert grid[4, 4] == pytest.approx(3 / 0.5)
        assert grid[0, 5] == pytest.approx(2 / (0.5 * 0.25))
        assert grid.sum() == pytest.approx(3 / 0.5 + 2 / (0.5 * 0.25))


class TestEdgeWindowEnds:
    def test_ends_match_bruteforce(self):
        graph = random_graph(5, num_nodes=8, num_edges=40, t_max=25)
        col = graph.columnar()
        hi = edge_window_ends(col, 6.0)
        t = np.asarray(col.t, dtype=np.float64)
        for e in range(col.num_edges):
            assert hi[e] == np.count_nonzero(t <= t[e] + 6.0)

    def test_export_install_round_trip(self):
        graph = random_graph(9, num_nodes=7, num_edges=30, t_max=20)
        col = graph.columnar()
        arrays = export_delta_cache(
            col, 5.0, star_pair=False, window_bounds=False, edge_window=True
        )
        assert set(arrays) == {"ewin.hi"}
        # A second graph instance stands in for a pool worker's
        # attached store: installing must hit the memo, not recompute.
        twin = TemporalGraph(list(graph.internal_edges())).columnar()
        install_delta_cache(twin, 5.0, arrays)
        hi = edge_window_ends(twin, 5.0)
        assert hi is arrays["ewin.hi"]
        assert np.array_equal(hi, edge_window_ends(col, 5.0))
