"""Tests for the unified count_motifs entry point."""

import pytest

from repro.core.api import count_motifs
from repro.core.motifs import MotifCategory
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


class TestOptions:
    def test_default_algorithm_is_fast(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        assert counts.algorithm == "fast"
        assert counts.delta == 10

    def test_elapsed_recorded(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        assert counts.elapsed_seconds > 0

    def test_algorithms_agree(self, paper_graph):
        fast = count_motifs(paper_graph, 10, algorithm="fast")
        ex = count_motifs(paper_graph, 10, algorithm="ex")
        brute = count_motifs(paper_graph, 10, algorithm="bruteforce")
        assert fast == ex == brute

    def test_unknown_algorithm(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="quantum")

    def test_unknown_categories(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, categories="everything")

    def test_invalid_workers(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, workers=0)

    def test_negative_delta(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, -1)


class TestCategorySelection:
    @pytest.mark.parametrize("algorithm", ["fast", "ex", "bruteforce"])
    def test_star_only(self, paper_graph, algorithm):
        counts = count_motifs(paper_graph, 10, algorithm=algorithm, categories="star")
        full = count_motifs(paper_graph, 10)
        assert counts.category_total(MotifCategory.STAR) == full.category_total(MotifCategory.STAR)
        assert counts.category_total(MotifCategory.PAIR) == 0
        assert counts.category_total(MotifCategory.TRIANGLE) == 0

    @pytest.mark.parametrize("algorithm", ["fast", "ex", "bruteforce"])
    def test_pair_only(self, paper_graph, algorithm):
        counts = count_motifs(paper_graph, 10, algorithm=algorithm, categories="pair")
        full = count_motifs(paper_graph, 10)
        assert counts.category_total(MotifCategory.PAIR) == full.category_total(MotifCategory.PAIR)
        assert counts.category_total(MotifCategory.STAR) == 0

    @pytest.mark.parametrize("algorithm", ["fast", "ex", "bruteforce"])
    def test_triangle_only(self, paper_graph, algorithm):
        counts = count_motifs(paper_graph, 10, algorithm=algorithm, categories="triangle")
        full = count_motifs(paper_graph, 10)
        assert counts.category_total(MotifCategory.TRIANGLE) == full.category_total(MotifCategory.TRIANGLE)
        assert counts.category_total(MotifCategory.PAIR) == 0

    def test_star_pair(self, paper_graph):
        counts = count_motifs(paper_graph, 10, categories="star_pair")
        full = count_motifs(paper_graph, 10)
        assert counts.category_total(MotifCategory.STAR) == full.category_total(MotifCategory.STAR)
        assert counts.category_total(MotifCategory.PAIR) == full.category_total(MotifCategory.PAIR)
        assert counts.category_total(MotifCategory.TRIANGLE) == 0


class TestParallelRouting:
    def test_workers_route_through_hare(self, paper_graph):
        serial = count_motifs(paper_graph, 10)
        parallel = count_motifs(paper_graph, 10, workers=2)
        assert parallel == serial
        assert parallel.algorithm.startswith("hare")

    def test_ex_parallel(self, paper_graph):
        serial = count_motifs(paper_graph, 10, algorithm="ex")
        parallel = count_motifs(paper_graph, 10, algorithm="ex", workers=2)
        assert parallel == serial

    def test_parallel_categories(self, paper_graph):
        serial = count_motifs(paper_graph, 10, categories="triangle")
        parallel = count_motifs(paper_graph, 10, categories="triangle", workers=2)
        assert parallel == serial

    def test_static_schedule(self, paper_graph):
        assert count_motifs(paper_graph, 10, workers=2, schedule="static") == \
            count_motifs(paper_graph, 10)

    def test_explicit_thrd(self, paper_graph):
        assert count_motifs(paper_graph, 10, workers=2, thrd=3) == \
            count_motifs(paper_graph, 10)


class TestEmptyAndTiny:
    def test_empty_graph(self):
        counts = count_motifs(TemporalGraph([]), 10)
        assert counts.total() == 0

    def test_two_edges(self):
        counts = count_motifs(TemporalGraph([(0, 1, 1), (1, 2, 2)]), 10)
        assert counts.total() == 0
