"""Tests for the pluggable algorithm registry and the unified API."""

import numpy as np
import pytest

from repro.core.api import count_motifs, count_motifs_sweep
from repro.core.counters import MotifCounts
from repro.core.registry import (
    CATEGORIES,
    CountRequest,
    available_algorithms,
    execute,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
)
from repro.errors import ValidationError

ALL_SEVEN = ("fast", "ex", "bruteforce", "bt", "twoscent", "bts", "ews")


@pytest.fixture
def dummy_cleanup():
    names = []
    yield names
    for name in names:
        unregister_algorithm(name)


class TestRegistration:
    def test_all_seven_builtins_registered(self):
        assert set(ALL_SEVEN) <= set(available_algorithms())

    def test_one_decorated_function_is_enough(self, paper_graph, dummy_cleanup):
        """Registering a new backend end-to-end is a single decorator."""

        @register_algorithm("dummy42", exact=True, description="always 42 M11s")
        def _dummy(request):
            grid = np.zeros((6, 6), dtype=np.int64)
            grid[0, 0] = 42
            return MotifCounts(grid, algorithm="dummy42")

        dummy_cleanup.append("dummy42")
        assert "dummy42" in available_algorithms()
        result = count_motifs(paper_graph, 10, algorithm="dummy42")
        assert result["M11"] == 42
        assert result.is_exact
        assert result.delta == 10
        assert result.elapsed_seconds > 0

    def test_lazy_adapter_gets_requested_label(self, paper_graph, dummy_cleanup):
        """An adapter leaving the default label is stamped with its name."""

        @register_algorithm("lazy-zero", exact=True)
        def _lazy(request):
            return MotifCounts.zeros()  # algorithm left at the default

        dummy_cleanup.append("lazy-zero")
        result = count_motifs(paper_graph, 10, algorithm="lazy-zero")
        assert result.algorithm == "lazy-zero"

    def test_duplicate_name_rejected(self, dummy_cleanup):
        @register_algorithm("dup-algo", exact=True)
        def _a(request):
            return MotifCounts.zeros()

        dummy_cleanup.append("dup-algo")
        with pytest.raises(ValidationError):

            @register_algorithm("dup-algo", exact=True)
            def _b(request):
                return MotifCounts.zeros()

    def test_replace_overrides(self, paper_graph, dummy_cleanup):
        @register_algorithm("swap-algo", exact=True)
        def _a(request):
            return MotifCounts.zeros()

        dummy_cleanup.append("swap-algo")

        @register_algorithm("swap-algo", exact=True, replace=True)
        def _b(request):
            grid = np.zeros((6, 6), dtype=np.int64)
            grid[0, 0] = 1
            return MotifCounts(grid)

        assert count_motifs(paper_graph, 1, algorithm="swap-algo")["M11"] == 1

    def test_invalid_capability_bad_category(self):
        with pytest.raises(ValidationError):
            register_algorithm("bad-cat", exact=True, categories=("all", "hexagon"))

    def test_invalid_capability_missing_all(self):
        with pytest.raises(ValidationError):
            register_algorithm("no-all", exact=True, categories=("star",))

    def test_invalid_name(self):
        with pytest.raises(ValidationError):
            register_algorithm("", exact=True)


class TestDispatchErrors:
    def test_unknown_algorithm(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="quantum")

    def test_unknown_categories(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, categories="everything")

    def test_bad_workers(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, workers=0)

    def test_negative_delta(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, -1)

    def test_serial_algorithm_rejects_workers(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="bruteforce", workers=2)

    def test_unsupported_category_for_algorithm(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="twoscent", categories="star")

    def test_unknown_param_rejected(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="bts", qq=0.5)

    def test_n_samples_rejected_for_exact(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="fast", n_samples=3)

    def test_seed_rejected_for_exact(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10, algorithm="fast", seed=5)


class TestCompatShim:
    """The pre-registry keyword signature keeps working unchanged."""

    def test_positional_delta(self, paper_graph):
        assert count_motifs(paper_graph, 10).total() == 27

    def test_old_keywords(self, paper_graph):
        counts = count_motifs(
            paper_graph, 10, algorithm="ex", categories="all",
            workers=1, thrd=None, schedule="dynamic",
        )
        assert counts.total() == 27

    def test_request_object(self, paper_graph):
        request = CountRequest(graph=paper_graph, delta=10, algorithm="fast")
        assert count_motifs(request).total() == 27
        assert execute(request) == count_motifs(paper_graph, 10)

    def test_request_object_rejects_extra_delta(self, paper_graph):
        request = CountRequest(graph=paper_graph, delta=10)
        with pytest.raises(ValidationError):
            count_motifs(request, 10)

    def test_request_object_rejects_keyword_overrides(self, paper_graph):
        request = CountRequest(graph=paper_graph, delta=10)
        with pytest.raises(ValidationError, match="algorithm"):
            count_motifs(request, algorithm="ex")
        with pytest.raises(ValidationError, match="n_samples"):
            count_motifs(request, n_samples=5)


class TestAllSevenSelectable:
    @pytest.mark.parametrize("algorithm", ALL_SEVEN)
    def test_selectable_through_count_motifs(self, paper_graph, algorithm):
        kwargs = {"seed": 0} if algorithm in ("bts", "ews") else {}
        result = count_motifs(paper_graph, 10, algorithm=algorithm, **kwargs)
        assert isinstance(result, MotifCounts)
        assert result.delta == 10
        assert result.meta["requested_algorithm"] == algorithm

    @pytest.mark.parametrize("algorithm", ("ex", "bruteforce", "bt"))
    def test_exact_backends_agree_with_fast(self, paper_graph, algorithm):
        fast = count_motifs(paper_graph, 10)
        assert count_motifs(paper_graph, 10, algorithm=algorithm) == fast

    def test_twoscent_matches_fast_on_m26(self, paper_graph):
        fast = count_motifs(paper_graph, 10)
        ts = count_motifs(paper_graph, 10, algorithm="twoscent")
        assert ts["M26"] == fast["M26"]
        assert ts.total() == ts["M26"]


class TestSampling:
    def test_sampling_result_carries_stderr(self, paper_graph):
        result = count_motifs(paper_graph, 10, algorithm="bts", q=0.5, seed=3)
        assert result.is_exact is False
        assert result.stderr is not None
        assert result.stderr.shape == (6, 6)
        assert result.meta["n_samples"] == 3  # sampling default
        assert result.meta["seed"] == 3

    def test_degenerate_ews_is_flagged_approximate_but_matches(self, paper_graph):
        exact = count_motifs(paper_graph, 10)
        est = count_motifs(paper_graph, 10, algorithm="ews", p=1.0, q=1.0)
        assert est.is_exact is False
        assert np.allclose(est.grid, exact.grid)
        assert est.stderr is not None and np.allclose(est.stderr, 0.0)

    def test_confidence_interval_brackets_degenerate_estimate(self, paper_graph):
        est = count_motifs(paper_graph, 10, algorithm="ews", p=1.0, q=1.0)
        lo, hi = est.confidence_interval("M63")
        assert lo <= est["M63"] <= hi

    def test_single_sample_has_no_stderr(self, paper_graph):
        est = count_motifs(paper_graph, 10, algorithm="ews", n_samples=1)
        assert est.stderr is None
        assert est.is_exact is False

    def test_seed_reproducibility(self, paper_graph):
        a = count_motifs(paper_graph, 10, algorithm="bts", q=0.5, seed=11)
        b = count_motifs(paper_graph, 10, algorithm="bts", q=0.5, seed=11)
        assert np.array_equal(a.grid, b.grid)

    def test_phase_timing_per_replicate(self, paper_graph):
        est = count_motifs(paper_graph, 10, algorithm="ews", n_samples=2)
        assert set(est.phase_seconds) == {"sample[0]", "sample[1]"}

    def test_total_stderr_uses_replicate_totals(self, paper_graph):
        est = count_motifs(paper_graph, 10, algorithm="bts", q=0.5, seed=2)
        assert est.meta["total_stderr"] >= 0.0
        # Cells within a replicate are correlated, so the total's stderr
        # is generally NOT the quadrature sum of the cell stderrs.
        assert np.isfinite(est.meta["total_stderr"])

    def test_twoscent_result_declares_partial_coverage(self, paper_graph):
        ts = count_motifs(paper_graph, 10, algorithm="twoscent")
        assert "M26" in ts.meta["coverage"]


class TestMaskingConsistency:
    """One masking implementation, identical cells across algorithms."""

    @pytest.mark.parametrize("categories", [c for c in CATEGORIES if c != "all"])
    def test_exact_backends_mask_identically(self, paper_graph, categories):
        reference = count_motifs(paper_graph, 10).masked(categories)
        for algorithm in ("fast", "ex", "bruteforce", "bt"):
            masked = count_motifs(
                paper_graph, 10, algorithm=algorithm, categories=categories
            )
            assert masked == reference, algorithm

    def test_masked_preserves_metadata(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        masked = counts.masked("star")
        assert masked.algorithm == counts.algorithm
        assert masked.is_exact == counts.is_exact
        assert masked.delta == counts.delta
        assert masked.meta == counts.meta

    def test_masked_all_is_identity(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        assert counts.masked("all") is counts

    def test_masked_unknown_category(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs(paper_graph, 10).masked("hexagon")

    def test_sampling_mask_zeroes_stderr_outside(self, paper_graph):
        from repro.core.motifs import GRID, MotifCategory

        est = count_motifs(
            paper_graph, 10, algorithm="bts", q=0.5, categories="pair"
        )
        assert est.stderr is not None
        for motif in GRID.values():
            if motif.category is not MotifCategory.PAIR:
                assert est.get(motif.row, motif.col) == 0
                assert est.stderr_of(motif.name) == 0.0


class TestSweep:
    def test_sweep_shape_and_lookup(self, paper_graph):
        sweep = count_motifs_sweep(
            paper_graph, deltas=[5, 10], algorithms=["fast", "ex"]
        )
        assert len(sweep) == 4
        assert sweep.get("fast", 10) == sweep.get("ex", 10)
        assert len(sweep.elapsed("fast")) == 2
        assert all(t >= 0 for t in sweep.elapsed("ex"))

    def test_sweep_param_routing_in_mixed_run(self, paper_graph):
        # q is a BTS param; fast must not reject it in a mixed sweep.
        sweep = count_motifs_sweep(
            paper_graph, deltas=[10], algorithms=["fast", "bts"], q=0.5, seed=1
        )
        assert len(sweep) == 2
        assert sweep.get("bts", 10).meta["q"] == 0.5

    def test_sweep_workers_only_for_parallel_algorithms(self, paper_graph):
        # bruteforce is serial; a workers=2 sweep must not error on it.
        sweep = count_motifs_sweep(
            paper_graph, deltas=[10], algorithms=["fast", "bruteforce"], workers=2
        )
        assert sweep.get("fast", 10) == sweep.get("bruteforce", 10)

    def test_sweep_rejects_param_no_algorithm_accepts(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs_sweep(
                paper_graph, deltas=[10], algorithms=["bts"], qq=0.5  # typo for q
            )

    def test_sweep_mixed_seed_applies_to_sampling_only(self, paper_graph):
        sweep = count_motifs_sweep(
            paper_graph, deltas=[10], algorithms=["fast", "bts"], seed=4
        )
        assert sweep.get("bts", 10).meta["seed"] == 4
        assert "seed" not in sweep.get("fast", 10).meta

    def test_addition_propagates_uncertainty_fields(self, paper_graph):
        est = count_motifs(paper_graph, 10, algorithm="ews", p=1.0, q=1.0)
        combined = est + est
        assert combined.is_exact is False
        assert combined.stderr is not None
        exact = count_motifs(paper_graph, 10)
        assert (exact + exact).is_exact is True

    def test_sweep_rejects_empty_inputs(self, paper_graph):
        with pytest.raises(ValidationError):
            count_motifs_sweep(paper_graph, deltas=[], algorithms=["fast"])
        with pytest.raises(ValidationError):
            count_motifs_sweep(paper_graph, deltas=[10], algorithms=[])

    def test_sweep_unknown_result_lookup(self, paper_graph):
        sweep = count_motifs_sweep(paper_graph, deltas=[10])
        with pytest.raises(ValidationError):
            sweep.get("ex", 10)


class TestSpecIntrospection:
    def test_get_algorithm_capabilities(self):
        fast = get_algorithm("fast")
        assert fast.is_exact and fast.parallel
        bts = get_algorithm("bts")
        assert not bts.is_exact and "q" in bts.params
        twoscent = get_algorithm("twoscent")
        assert set(twoscent.categories) == {"all", "triangle"}

    def test_describe_mentions_kind(self):
        assert "approximate" in get_algorithm("ews").describe()
        assert "exact" in get_algorithm("fast").describe()
