"""Unit tests for FAST-Tri (Algorithm 2)."""

import pytest

from repro.core import motifs as M
from repro.core.fast_tri import count_triangle, count_triangle_tasks
from repro.errors import ValidationError
from repro.graph.temporal_graph import OUT, IN, TemporalGraph


class TestPaperWalkthrough:
    """The worked example of §IV-B.2: center ve of the Fig. 1 graph."""

    def test_center_ve_counts(self, paper_graph):
        ve = paper_graph.index("e")
        tri = count_triangle(paper_graph, 10, nodes=[ve])
        # Tri[III,o,o,o] += 1 (first pass of the walkthrough).
        assert tri.get(M.TRI_III, OUT, OUT, OUT) == 1
        # The second pass detects the M46 instance as Triangle-II.  The
        # paper's text writes "Tri[II,o,in,o]", but its own Fig. 8 maps
        # M46 to Tri[II,o,in,in] — ek = (vd,vc) runs *into* v = vc, so
        # the last direction must be `in`; the text's final `o` is a typo.
        assert tri.get(M.TRI_II, OUT, IN, IN) == 1
        assert tri.total() == 2

    def test_full_graph_triple_counting(self, paper_graph):
        tri = count_triangle(paper_graph, 10)
        assert tri.check_corner_symmetry()
        per = tri.per_motif()
        assert per["M46"] == 1  # the ⟨(e,c),(d,c),(d,e)⟩ instance
        assert per["M25"] == 1  # the ⟨(a,c,8),(d,a,9),(c,d,17)⟩ instance


class TestBasicCases:
    def test_single_cycle(self, triangle_graph):
        tri = count_triangle(triangle_graph, 10)
        assert tri.per_motif()["M26"] == 1
        assert sum(tri.per_motif().values()) == 1

    def test_each_instance_counted_three_times_raw(self, triangle_graph):
        tri = count_triangle(triangle_graph, 10)
        assert tri.total() == 3
        assert tri.multiplicity == 3

    def test_delta_excludes_slow_triangle(self):
        g = TemporalGraph([(0, 1, 0), (1, 2, 5), (2, 0, 100)])
        tri = count_triangle(g, 10)
        assert tri.total() == 0

    def test_delta_boundary_inclusive(self):
        g = TemporalGraph([(0, 1, 0), (1, 2, 5), (2, 0, 10)])
        assert count_triangle(g, 10).per_motif()["M26"] == 1

    def test_two_nodes_cannot_form_triangle(self, tiny_pair_graph):
        assert count_triangle(tiny_pair_graph, 100).total() == 0

    def test_negative_delta_raises(self):
        with pytest.raises(ValidationError):
            count_triangle(TemporalGraph([]), -5)

    def test_empty_graph(self):
        assert count_triangle(TemporalGraph([]), 5).total() == 0

    def test_multi_edge_triangle_multiplicity(self):
        # two parallel closing edges -> two distinct triangle instances
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 0, 3), (2, 0, 4)])
        tri = count_triangle(g, 10)
        assert tri.per_motif()["M26"] == 2


class TestTriangleTypes:
    def test_type_i_closing_edge_first(self):
        # ek=(1,2) before ei=(0,1), ej=(0,2): center 0 sees Type I
        g = TemporalGraph([(1, 2, 1), (0, 1, 2), (0, 2, 3)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.get(M.TRI_I, OUT, OUT, OUT) == 1

    def test_type_ii_closing_edge_middle(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (0, 2, 3)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.get(M.TRI_II, OUT, OUT, OUT) == 1

    def test_type_iii_closing_edge_last(self):
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (1, 2, 3)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.get(M.TRI_III, OUT, OUT, OUT) == 1

    def test_type_i_window_constraint(self):
        # ek at t=0, ei at t=6, ej at t=11: span 11 > delta 10 -> no count
        g = TemporalGraph([(1, 2, 0), (0, 1, 6), (0, 2, 11)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.total() == 0


class TestRemoveCenters:
    def test_matches_parallel_mode(self, paper_graph):
        dedup = count_triangle(paper_graph, 10, remove_centers=True)
        triple = count_triangle(paper_graph, 10)
        assert dedup.multiplicity == 1
        assert dedup.per_motif() == triple.per_motif()

    def test_incompatible_with_node_subset(self, paper_graph):
        with pytest.raises(ValidationError):
            count_triangle(paper_graph, 10, nodes=[0], remove_centers=True)

    def test_total_equals_instance_count(self, triangle_graph):
        dedup = count_triangle(triangle_graph, 10, remove_centers=True)
        assert dedup.total() == 1


class TestTaskDecomposition:
    def test_first_edge_singleton_tasks(self, paper_graph):
        full = count_triangle(paper_graph, 10)
        tasks = []
        for node in range(paper_graph.num_nodes):
            tasks.extend((node, i, i + 1) for i in range(paper_graph.degree(node)))
        split = count_triangle_tasks(paper_graph, 10, tasks)
        assert split == full

    def test_node_subsets_merge(self, paper_graph):
        full = count_triangle(paper_graph, 10)
        a = count_triangle(paper_graph, 10, nodes=[0, 1, 2])
        b = count_triangle(paper_graph, 10, nodes=list(range(3, paper_graph.num_nodes)))
        assert a.merge(b) == full


class TestTies:
    def test_simultaneous_cycle(self):
        g = TemporalGraph([(0, 1, 5), (1, 2, 5), (2, 0, 5)])
        assert count_triangle(g, 10).per_motif()["M26"] == 1

    def test_tie_between_ei_and_ek(self):
        # ek shares ei's timestamp but has smaller eid -> Type I at center 0
        g = TemporalGraph([(1, 2, 5), (0, 1, 5), (0, 2, 7)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.get(M.TRI_I, OUT, OUT, OUT) == 1

    def test_tie_between_ej_and_ek(self):
        # ek shares ej's timestamp but has larger eid -> Type III at center 0
        g = TemporalGraph([(0, 1, 5), (0, 2, 7), (1, 2, 7)])
        tri = count_triangle(g, 10, nodes=[g.index(0)])
        assert tri.get(M.TRI_III, OUT, OUT, OUT) == 1
