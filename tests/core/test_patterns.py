"""Tests for higher-order motif counting (the future-work extension)."""

import pytest

from repro.core.patterns import (
    HIGHER_ORDER_PATTERNS,
    count_higher_order,
    count_named_patterns,
    enumerate_pattern_instances,
    pattern_num_nodes,
)
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


class TestLibrary:
    def test_all_patterns_connected_prefixes(self):
        for name, pattern in HIGHER_ORDER_PATTERNS.items():
            seen = set(pattern[0])
            for edge in pattern[1:]:
                assert seen & set(edge), f"{name} has a disconnected prefix"
                seen |= set(edge)

    def test_node_counts(self):
        assert pattern_num_nodes(HIGHER_ORDER_PATTERNS["out-star-4"]) == 4
        assert pattern_num_nodes(HIGHER_ORDER_PATTERNS["ping-pong-2x"]) == 2
        assert pattern_num_nodes(HIGHER_ORDER_PATTERNS["cycle-4"]) == 4


class TestCounting:
    def test_out_star_4(self):
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["out-star-4"]) == 1

    def test_path_4(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["path-4"]) == 1

    def test_path_requires_time_order(self):
        g = TemporalGraph([(0, 1, 3), (1, 2, 2), (2, 3, 1)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["path-4"]) == 0

    def test_cycle_4(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["cycle-4"]) == 1

    def test_cycle_4_delta(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 40)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["cycle-4"]) == 0

    def test_ping_pong_2x(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 1, 3), (1, 0, 4)])
        assert count_higher_order(g, 10, HIGHER_ORDER_PATTERNS["ping-pong-2x"]) == 1

    def test_named_selection(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        results = count_named_patterns(g, 10, names=["path-4", "cycle-4"])
        assert results == {"path-4": 1, "cycle-4": 0}

    def test_all_named_patterns_run(self, paper_graph):
        results = count_named_patterns(paper_graph, 10)
        assert set(results) == set(HIGHER_ORDER_PATTERNS)
        assert all(v >= 0 for v in results.values())

    def test_unknown_name(self, paper_graph):
        with pytest.raises(ValidationError):
            count_named_patterns(paper_graph, 10, names=["pentagon"])

    def test_enumerate_instances(self):
        g = TemporalGraph([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        instances = list(
            enumerate_pattern_instances(g, 10, HIGHER_ORDER_PATTERNS["path-4"])
        )
        assert instances == [(0, 1, 2)]

    def test_three_edge_patterns_match_grid(self, paper_graph):
        # the generic machinery agrees with the dedicated counters on
        # a 3-edge pattern
        from repro.core.api import count_motifs
        from repro.core.motifs import MOTIFS_BY_NAME

        counts = count_motifs(paper_graph, 10)
        for name in ("M26", "M63", "M65"):
            pattern = MOTIFS_BY_NAME[name].canonical
            assert count_higher_order(paper_graph, 10, pattern) == counts[name]
