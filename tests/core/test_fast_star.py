"""Unit tests for FAST-Star (Algorithm 1)."""

import pytest

from repro.core import motifs as M
from repro.core.fast_star import count_star_pair, count_star_pair_tasks
from repro.graph.temporal_graph import IN, OUT, TemporalGraph


class TestPaperWalkthrough:
    """The worked example of §IV-A.3: center va of the Fig. 1 graph,
    δ = 10 seconds."""

    def test_center_va_counts(self, paper_graph):
        va = paper_graph.index("a")
        star, pair = count_star_pair(paper_graph, 10, nodes=[va])
        # Star[III,o,o,in] += 1  (the M63 instance)
        assert star.get(M.STAR_III, OUT, OUT, IN) == 1
        # Star[III,o,o,o] += 1
        assert star.get(M.STAR_III, OUT, OUT, OUT) == 1
        # Star[II,o,in,o] += 1 and Star[II,o,o,o] += 1
        assert star.get(M.STAR_II, OUT, IN, OUT) == 1
        assert star.get(M.STAR_II, OUT, OUT, OUT) == 1
        # and nothing else from this center
        assert star.total() == 4
        assert pair.total() == 0

    def test_full_graph_m63(self, paper_graph):
        star, _ = count_star_pair(paper_graph, 10)
        assert star.per_motif()["M63"] == 1


class TestSmallCases:
    def test_single_star_out_out_out(self):
        # center 0 sends to 1, 2, 2: edges 2,3 to same nbr -> Star-I
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 2, 3)])
        star, pair = count_star_pair(g, 10)
        assert star.get(M.STAR_I, OUT, OUT, OUT) == 1
        assert star.total() == 1
        assert pair.total() == 0

    def test_pair_counted_from_both_centers(self, tiny_pair_graph):
        _, pair = count_star_pair(tiny_pair_graph, 10)
        # 4 alternating edges -> instances (e1,e2,e3) and (e2,e3,e4)
        # from each endpoint's view.
        assert pair.check_center_symmetry()
        assert pair.per_motif()["M65"] == 2  # o,in,o twice from source side

    def test_no_motif_below_three_edges(self):
        g = TemporalGraph([(0, 1, 1), (1, 0, 2)])
        star, pair = count_star_pair(g, 10)
        assert star.total() == 0
        assert pair.total() == 0

    def test_delta_zero_requires_simultaneity(self):
        g = TemporalGraph([(0, 1, 5), (0, 2, 5), (0, 2, 5)])
        star, _ = count_star_pair(g, 0)
        assert star.total() == 1
        g2 = TemporalGraph([(0, 1, 5), (0, 2, 6), (0, 2, 7)])
        star2, _ = count_star_pair(g2, 0)
        assert star2.total() == 0

    def test_delta_excludes_far_edges(self):
        g = TemporalGraph([(0, 1, 0), (0, 2, 5), (0, 2, 100)])
        star, _ = count_star_pair(g, 10)
        assert star.total() == 0

    def test_delta_boundary_inclusive(self):
        # span is exactly delta -> still counted (t3 - t1 <= delta)
        g = TemporalGraph([(0, 1, 0), (0, 2, 5), (0, 2, 10)])
        star, _ = count_star_pair(g, 10)
        assert star.total() == 1

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            count_star_pair(TemporalGraph([]), -1)

    def test_empty_graph(self):
        star, pair = count_star_pair(TemporalGraph([]), 10)
        assert star.total() == 0
        assert pair.total() == 0


class TestStarTypes:
    def test_star_i_isolated_first(self):
        # edge 1 to node 1 (isolated), edges 2-3 to node 2
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (2, 0, 3)])
        star, _ = count_star_pair(g, 10)
        assert star.get(M.STAR_I, OUT, OUT, IN) == 1

    def test_star_ii_isolated_middle(self):
        # edges 1,3 to node 1, edge 2 to node 2
        g = TemporalGraph([(0, 1, 1), (2, 0, 2), (0, 1, 3)])
        star, _ = count_star_pair(g, 10)
        assert star.get(M.STAR_II, OUT, IN, OUT) == 1

    def test_star_iii_isolated_last(self):
        # edges 1,2 to node 1, edge 3 to node 2
        g = TemporalGraph([(0, 1, 1), (1, 0, 2), (0, 2, 3)])
        star, _ = count_star_pair(g, 10)
        assert star.get(M.STAR_III, OUT, IN, OUT) == 1

    def test_star_types_exactly_once_per_instance(self):
        # 4 incident edges, neighbour 2 repeated: only the triples that
        # touch exactly two distinct neighbours are stars —
        # (e1,e2,e3) and (e2,e3,e4); {e1,e2,e4} and {e1,e3,e4} span 4 nodes
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 2, 3), (0, 3, 4)])
        star, _ = count_star_pair(g, 100)
        assert star.total() == 2


class TestTaskDecomposition:
    def test_first_edge_range_partition_is_exact(self, paper_graph):
        full_star, full_pair = count_star_pair(paper_graph, 10)
        # split every node's first-edge range into singleton tasks
        tasks = []
        for node in range(paper_graph.num_nodes):
            degree = paper_graph.degree(node)
            tasks.extend((node, i, i + 1) for i in range(degree))
        star, pair = count_star_pair_tasks(paper_graph, 10, tasks)
        assert star == full_star
        assert pair == full_pair

    def test_node_subset_sums_to_full(self, paper_graph):
        full_star, full_pair = count_star_pair(paper_graph, 10)
        half_a = list(range(0, paper_graph.num_nodes, 2))
        half_b = list(range(1, paper_graph.num_nodes, 2))
        star_a, pair_a = count_star_pair(paper_graph, 10, nodes=half_a)
        star_b, pair_b = count_star_pair(paper_graph, 10, nodes=half_b)
        assert star_a.merge(star_b) == full_star
        assert pair_a.merge(pair_b) == full_pair

    def test_out_of_range_task_bounds_are_clamped(self, paper_graph):
        star, pair = count_star_pair_tasks(
            paper_graph, 10,
            [(n, 0, 10_000) for n in range(paper_graph.num_nodes)],
        )
        full_star, full_pair = count_star_pair(paper_graph, 10)
        assert star == full_star
        assert pair == full_pair


class TestTies:
    def test_equal_timestamps_ordered_by_input(self):
        # three simultaneous edges at the hub: exactly one ordered triple
        g = TemporalGraph([(0, 1, 5), (0, 2, 5), (0, 2, 5)])
        star, _ = count_star_pair(g, 10)
        assert star.total() == 1

    def test_pair_with_ties(self):
        g = TemporalGraph([(0, 1, 5), (1, 0, 5), (0, 1, 5)])
        _, pair = count_star_pair(g, 10)
        assert pair.per_motif()["M65"] == 1
