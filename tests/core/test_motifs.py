"""Tests for the 36-motif taxonomy — including every anchor the paper
text pins down (worked examples, Fig. 3, Fig. 8)."""

import pytest

from repro.core import motifs as M
from repro.core.motifs import (
    ALL_MOTIFS,
    BY_CANONICAL,
    GRID,
    MOTIFS_BY_NAME,
    MotifCategory,
    canonicalize,
    classify_triple,
    pair_cell_motif,
    star_cell_motif,
    tri_cell_motif,
)
from repro.graph.temporal_graph import IN, OUT


class TestGridStructure:
    def test_36_cells(self):
        assert len(GRID) == 36
        assert {(i, j) for i in range(1, 7) for j in range(1, 7)} == set(GRID)

    def test_category_sizes(self):
        by_cat = {}
        for m in ALL_MOTIFS:
            by_cat.setdefault(m.category, []).append(m)
        assert len(by_cat[MotifCategory.PAIR]) == 4
        assert len(by_cat[MotifCategory.STAR]) == 24
        assert len(by_cat[MotifCategory.TRIANGLE]) == 8

    def test_pair_positions(self):
        # "the four 2-node motifs": M55, M56, M65, M66
        for name in ("M55", "M56", "M65", "M66"):
            assert MOTIFS_BY_NAME[name].category is MotifCategory.PAIR

    def test_triangle_positions(self):
        # triangles are rows 1-4, columns 5-6 (yellow cells of Fig. 2)
        for m in ALL_MOTIFS:
            if m.category is MotifCategory.TRIANGLE:
                assert m.row in (1, 2, 3, 4)
                assert m.col in (5, 6)

    def test_star_positions_follow_fig3(self):
        # Fig. 3: Star-I rows 1-2, Star-II rows 3-4, Star-III rows 5-6,
        # all in columns 1-4.
        for m in ALL_MOTIFS:
            if m.category is MotifCategory.STAR:
                assert m.col in (1, 2, 3, 4)

    def test_canonical_forms_unique(self):
        forms = [m.canonical for m in ALL_MOTIFS]
        assert len(set(forms)) == 36

    def test_first_edge_always_1_to_2(self):
        for m in ALL_MOTIFS:
            assert m.canonical[0] == (1, 2)

    def test_names(self):
        assert MOTIFS_BY_NAME["M24"].row == 2
        assert MOTIFS_BY_NAME["M24"].col == 4
        assert GRID[(3, 1)].name == "M31"

    def test_num_nodes(self):
        assert MOTIFS_BY_NAME["M55"].num_nodes == 2
        assert MOTIFS_BY_NAME["M11"].num_nodes == 3


class TestPaperAnchors:
    """Every motif label recoverable from the paper's own text."""

    def test_M63_walkthrough(self):
        # "⟨(va,vc,4s), (va,vc,8s), (vd,va,9s)⟩ is an instance of M63"
        assert MOTIFS_BY_NAME["M63"].canonical == ((1, 2), (1, 2), (3, 1))

    def test_M46_walkthrough(self):
        # "⟨(ve,vc,6s), (vd,vc,10s), (vd,ve,14s)⟩ is an instance of M46"
        assert classify_triple(((5, 3), (4, 3), (4, 5))).name == "M46"

    def test_M65_walkthrough(self):
        # "⟨(vd,ve,14s), (ve,vd,18s), (vd,ve,21s)⟩ is an instance of M65"
        assert classify_triple(((4, 5), (5, 4), (4, 5))).name == "M65"

    def test_M25_triangle_walkthrough(self):
        # "⟨(va,vc,8s), (vd,va,9s), (vc,vd,17s)⟩ forms an instance of M25"
        assert classify_triple(((1, 3), (4, 1), (3, 4))).name == "M25"

    def test_M24_star_counter_example(self):
        # "Star[I,in,o,in] records ... M24"
        assert star_cell_motif(M.STAR_I, IN, OUT, IN).name == "M24"

    def test_M63_star_counter_example(self):
        # the worked FAST-Star example: Star[III,o,o,in] += 1 for the M63 instance
        assert star_cell_motif(M.STAR_III, OUT, OUT, IN).name == "M63"

    def test_M26_is_the_temporal_cycle(self):
        # "2SCENT can only detect the triangle motif M26"
        assert MOTIFS_BY_NAME["M26"].is_cycle
        assert MOTIFS_BY_NAME["M26"].canonical == ((1, 2), (2, 3), (3, 1))
        assert sum(1 for m in ALL_MOTIFS if m.is_cycle) == 1

    def test_pair_isomorphism_M55(self):
        # "Pair[in,in,in] ≅ Pair[o,o,o] ≅ M55"
        assert pair_cell_motif(IN, IN, IN).name == "M55"
        assert pair_cell_motif(OUT, OUT, OUT).name == "M55"

    def test_pair_isomorphism_M65(self):
        # "Pair[in,o,in] ≅ Pair[o,in,o] ≅ M65"
        assert pair_cell_motif(IN, OUT, IN).name == "M65"
        assert pair_cell_motif(OUT, IN, OUT).name == "M65"

    # The full triangle isomorphism table of Fig. 8, verbatim.
    FIG8 = {
        "M45": [(M.TRI_I, IN, OUT, OUT), (M.TRI_II, IN, IN, OUT), (M.TRI_III, OUT, OUT, IN)],
        "M35": [(M.TRI_I, OUT, OUT, OUT), (M.TRI_II, IN, IN, IN), (M.TRI_III, OUT, IN, IN)],
        "M15": [(M.TRI_I, IN, IN, OUT), (M.TRI_II, IN, OUT, OUT), (M.TRI_III, OUT, OUT, OUT)],
        "M25": [(M.TRI_I, OUT, IN, OUT), (M.TRI_II, IN, OUT, IN), (M.TRI_III, OUT, IN, OUT)],
        "M26": [(M.TRI_I, IN, OUT, IN), (M.TRI_II, OUT, IN, OUT), (M.TRI_III, IN, OUT, IN)],
        "M46": [(M.TRI_I, OUT, OUT, IN), (M.TRI_II, OUT, IN, IN), (M.TRI_III, IN, IN, IN)],
        "M16": [(M.TRI_I, IN, IN, IN), (M.TRI_II, OUT, OUT, OUT), (M.TRI_III, IN, OUT, OUT)],
        "M36": [(M.TRI_I, OUT, IN, IN), (M.TRI_II, OUT, OUT, IN), (M.TRI_III, IN, IN, OUT)],
    }

    @pytest.mark.parametrize("name,cells", sorted(FIG8.items()))
    def test_fig8_triangle_isomorphism_table(self, name, cells):
        for cell in cells:
            assert tri_cell_motif(*cell).name == name

    def test_fig8_covers_all_24_cells(self):
        cells = [c for cells in self.FIG8.values() for c in cells]
        assert len(cells) == 24
        assert len(set(cells)) == 24


class TestCounterCellMappings:
    def test_star_cells_bijective(self):
        seen = set()
        for t in (M.STAR_I, M.STAR_II, M.STAR_III):
            for d1 in (OUT, IN):
                for d2 in (OUT, IN):
                    for d3 in (OUT, IN):
                        seen.add(star_cell_motif(t, d1, d2, d3).name)
        assert len(seen) == 24

    def test_pair_cells_cover_both_views(self):
        # 8 cells -> 4 motifs, each motif from exactly 2 complementary cells
        from collections import Counter

        names = Counter()
        for d1 in (OUT, IN):
            for d2 in (OUT, IN):
                for d3 in (OUT, IN):
                    names[pair_cell_motif(d1, d2, d3).name] += 1
        assert all(v == 2 for v in names.values())
        assert len(names) == 4

    def test_pair_complement_is_isomorphic(self):
        for d1 in (OUT, IN):
            for d2 in (OUT, IN):
                for d3 in (OUT, IN):
                    assert (
                        pair_cell_motif(d1, d2, d3)
                        == pair_cell_motif(1 - d1, 1 - d2, 1 - d3)
                    )

    def test_tri_cells_three_per_motif(self):
        from collections import Counter

        names = Counter()
        for t in (M.TRI_I, M.TRI_II, M.TRI_III):
            for di in (OUT, IN):
                for dj in (OUT, IN):
                    for dk in (OUT, IN):
                        names[tri_cell_motif(t, di, dj, dk).name] += 1
        assert all(v == 3 for v in names.values())
        assert len(names) == 8

    def test_tri_one_cell_per_type_per_motif(self):
        groups = {}
        for t in (M.TRI_I, M.TRI_II, M.TRI_III):
            for di in (OUT, IN):
                for dj in (OUT, IN):
                    for dk in (OUT, IN):
                        groups.setdefault(
                            tri_cell_motif(t, di, dj, dk).name, []
                        ).append(t)
        for types in groups.values():
            assert sorted(types) == [M.TRI_I, M.TRI_II, M.TRI_III]


class TestClassification:
    def test_canonicalize_relabels_by_appearance(self):
        assert canonicalize([(7, 9), (9, 3), (3, 7)]) == ((1, 2), (2, 3), (3, 1))

    def test_classify_four_nodes_returns_none(self):
        assert classify_triple(((0, 1), (2, 3), (1, 2))) is None

    def test_classify_self_loop_returns_none(self):
        assert classify_triple(((0, 0), (0, 1), (1, 0))) is None

    def test_classify_all_canonical_forms_roundtrip(self):
        for m in ALL_MOTIFS:
            assert classify_triple(m.canonical) is m

    def test_by_canonical_lookup(self):
        assert BY_CANONICAL[((1, 2), (2, 1), (2, 1))].name == "M66"

    def test_star_type_names(self):
        assert M.star_type_name(M.STAR_I) == "I"
        assert M.star_type_name(M.STAR_III) == "III"

    def test_invalid_star_type_raises(self):
        with pytest.raises(ValueError):
            M._star_cell_canonical(5, OUT, OUT, OUT)

    def test_invalid_tri_type_raises(self):
        with pytest.raises(ValueError):
            M._tri_cell_canonical(7, OUT, OUT, OUT)

    def test_repr_shows_arrows(self):
        assert "⟨1→2" in repr(MOTIFS_BY_NAME["M55"])
