"""Streaming engine tests: replay vs batch recount, window semantics.

The central property (ISSUE 3 acceptance): a streaming replay of a
shuffled synthetic graph produces counts **bit-identical** to a batch
``count_motifs`` recount of the live edge set at *every* checkpoint,
across the python and columnar kernels, with and without a sliding
window — timestamp ties, late arrivals and multi-edges included.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.api import count_motifs, stream_motifs
from repro.core.registry import (
    StreamRequest,
    get_algorithm,
    open_stream,
    streaming_algorithms,
)
from repro.core.streaming import PHASES, StreamingMotifEngine
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


@st.composite
def edge_streams(draw, max_nodes=7, max_edges=26, max_t=18):
    """A shuffled arrival sequence of random edges with heavy ties."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        t = draw(st.integers(min_value=0, max_value=max_t))
        edges.append((u, v, t))
    return draw(st.permutations(edges))


deltas = st.integers(min_value=0, max_value=12)
backends = st.sampled_from(["python", "columnar"])


def replay_and_compare(edges, delta, backend, window=None, every=5, batch=3):
    """Assert checkpoint counts == batch recount of the live set."""
    engine = open_stream(
        StreamRequest(delta=delta, window=window, backend=backend)
    )
    checkpoints = 0
    for cp in engine.replay(edges, checkpoint_every=every, batch_edges=batch):
        checkpoints += 1
        live = engine.live_edges()
        batch_counts = count_motifs(TemporalGraph(live), delta, backend=backend)
        assert (cp.counts.grid == batch_counts.grid).all(), (
            f"checkpoint {cp.seq}: streaming {cp.counts.total()} != "
            f"batch {batch_counts.total()}"
        )
        assert cp.edges_seen == cp.edges_live + cp.edges_expired
    return checkpoints


@settings(max_examples=60, deadline=None)
@given(edges=edge_streams(), delta=deltas, backend=backends)
def test_shuffled_replay_matches_batch_recount_unbounded(edges, delta, backend):
    """Append-only: live set == everything seen, fully independent oracle."""
    engine = open_stream(StreamRequest(delta=delta, backend=backend))
    seen = []
    for cp in engine.replay(edges, checkpoint_every=6, batch_edges=4):
        seen = [tuple(e) for e in edges[: cp.edges_seen]]
        batch = count_motifs(TemporalGraph(seen), delta, backend=backend)
        assert (cp.counts.grid == batch.grid).all()
        assert engine.live_edges() == seen


@settings(max_examples=60, deadline=None)
@given(
    edges=edge_streams(),
    delta=deltas,
    backend=backends,
    window=st.integers(min_value=1, max_value=20),
)
def test_shuffled_replay_matches_batch_recount_windowed(edges, delta, backend, window):
    replay_and_compare(edges, delta, backend, window=float(window))


@settings(max_examples=40, deadline=None)
@given(edges=edge_streams(), delta=deltas, window=st.integers(min_value=2, max_value=15))
def test_in_order_window_live_set_is_time_suffix(edges, delta, window):
    """In-order replay: live set == {t >= t_latest - W}, independently."""
    ordered = sorted(edges, key=lambda e: e[2])
    engine = open_stream(StreamRequest(delta=delta, window=float(window)))
    for cp in engine.replay(ordered, checkpoint_every=7):
        processed = ordered[: cp.edges_seen + cp.edges_dropped_late]
        expected = [e for e in processed if e[2] >= cp.t_latest - window]
        assert engine.live_edges() == expected
        assert cp.edges_dropped_late == 0  # in-order streams never drop


@settings(max_examples=30, deadline=None)
@given(edges=edge_streams(max_edges=18), delta=deltas)
def test_python_and_columnar_checkpoints_identical(edges, delta):
    """The two kernel sets must agree checkpoint by checkpoint."""
    grids = []
    for backend in ("python", "columnar"):
        engine = open_stream(StreamRequest(delta=delta, backend=backend, window=9.0))
        grids.append(
            [cp.counts.grid.copy() for cp in engine.replay(edges, checkpoint_every=5)]
        )
    assert len(grids[0]) == len(grids[1])
    for a, b in zip(grids[0], grids[1]):
        assert (a == b).all()


class TestEngineBasics:
    def test_checkpoint_phase_seconds_keys(self):
        engine = open_stream(StreamRequest(delta=5.0, window=30.0))
        engine.ingest([(0, 1, 0), (1, 0, 2), (0, 1, 4)])
        cp = engine.checkpoint()
        assert set(cp.phase_seconds) == set(PHASES)
        assert cp.counts.phase_seconds == cp.phase_seconds
        assert all(v >= 0 for v in cp.phase_seconds.values())

    def test_phase_seconds_reset_between_checkpoints(self):
        engine = open_stream(StreamRequest(delta=5.0))
        engine.ingest([(0, 1, t) for t in range(20)])
        first = engine.checkpoint()
        second = engine.checkpoint()  # no work in between
        assert sum(first.phase_seconds.values()) > 0
        assert sum(second.phase_seconds.values()) == pytest.approx(0.0, abs=1e-3)

    def test_as_dict_shape(self):
        engine = open_stream(StreamRequest(delta=5.0))
        engine.ingest([(0, 1, 0), (1, 0, 1), (0, 1, 2)])
        payload = engine.checkpoint().as_dict(per_motif=True)
        json.dumps(payload)  # JSON-serialisable
        for key in (
            "checkpoint", "t_latest", "watermark", "edges_seen", "edges_live",
            "edges_expired", "edges_dropped_late", "total", "backend",
            "phase_seconds", "dominant_phase", "counts",
        ):
            assert key in payload
        assert payload["total"] == sum(payload["counts"].values())

    def test_categories_masking(self):
        edges = [(0, 1, 0), (1, 0, 1), (0, 1, 2), (1, 2, 2), (2, 0, 3)]
        engine = open_stream(StreamRequest(delta=10.0, categories="triangle"))
        engine.ingest(edges)
        cp = engine.checkpoint()
        batch = count_motifs(TemporalGraph(edges), 10.0, categories="triangle")
        assert (cp.counts.grid == batch.grid).all()
        assert cp.counts.total() == batch.total() > 0

    def test_counts_does_not_advance_checkpoint_seq(self):
        engine = open_stream(StreamRequest(delta=5.0))
        engine.ingest([(0, 1, 0), (1, 0, 1), (0, 1, 2)])
        total = engine.counts().total()
        cp = engine.checkpoint()
        assert cp.seq == 1
        assert cp.counts.total() == total

    def test_late_edges_reported_not_counted(self):
        engine = open_stream(StreamRequest(delta=2.0, window=5.0))
        engine.ingest([(0, 1, t) for t in range(10)])
        assert engine.store.watermark == pytest.approx(4.0)
        engine.ingest([(0, 1, 0.5)])  # far below the watermark
        cp = engine.checkpoint()
        assert cp.edges_dropped_late == 1
        batch = count_motifs(TemporalGraph(engine.live_edges()), 2.0)
        assert (cp.counts.grid == batch.grid).all()

    def test_workers_microbatch_matches_serial(self):
        edges = [((i * 3) % 11, (i * 7 + 1) % 11, i % 40) for i in range(300)]
        serial = open_stream(StreamRequest(delta=8.0, window=25.0))
        forked = open_stream(
            StreamRequest(delta=8.0, window=25.0, workers=2, parallel_min_edges=1)
        )
        for engine in (serial, forked):
            engine.ingest(edges)
        assert (serial.checkpoint().counts.grid == forked.checkpoint().counts.grid).all()

    def test_stream_motifs_final_checkpoint_covers_tail(self):
        edges = [(0, 1, t) for t in range(10)]
        cps = list(stream_motifs(edges, 100.0, checkpoint_every=4))
        assert [cp.edges_seen for cp in cps] == [4, 8, 10]
        batch = count_motifs(TemporalGraph(edges), 100.0)
        assert cps[-1].counts.total() == batch.total()


class TestRegistryIntegration:
    def test_fast_declares_streaming(self):
        assert "fast" in streaming_algorithms()
        assert get_algorithm("fast").streaming
        assert "streaming" in get_algorithm("fast").describe()

    def test_non_streaming_algorithm_rejected(self):
        with pytest.raises(ValidationError, match="does not support streaming"):
            open_stream(StreamRequest(delta=1.0, algorithm="bt"))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValidationError, match="unknown algorithm"):
            open_stream(StreamRequest(delta=1.0, algorithm="nope"))

    def test_engine_type(self):
        engine = open_stream(StreamRequest(delta=1.0))
        assert isinstance(engine, StreamingMotifEngine)

    def test_baselines_have_no_streaming_mode(self):
        with pytest.raises(ValidationError, match="does not support streaming"):
            open_stream(StreamRequest(delta=1.0, algorithm="twoscent"))


class TestStreamRequestValidation:
    def test_negative_delta(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=-1.0)

    def test_nonpositive_window(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=1.0, window=0.0)

    def test_bad_backend(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=1.0, backend="gpu")

    def test_bad_categories(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=1.0, categories="everything")

    def test_bad_checkpoint_every(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=1.0, checkpoint_every=0)

    def test_bad_workers(self):
        with pytest.raises(ValidationError):
            StreamRequest(delta=1.0, workers=0)

    def test_unknown_param_rejected_on_resolve(self):
        with pytest.raises(ValidationError, match="unknown parameter"):
            open_stream(StreamRequest(delta=1.0, params={"zeta": 3}))


class TestIngestValidation:
    def test_malformed_record_raises_validation_error(self):
        engine = open_stream(StreamRequest(delta=1.0))
        with pytest.raises(ValidationError, match="triples"):
            engine.ingest([(0, 1)])

    def test_stream_motifs_validates_eagerly(self):
        # A plain function, not a generator function: bad requests
        # surface at the call site, like count_motifs.
        with pytest.raises(ValidationError):
            stream_motifs([], -5.0)
