"""Tests for the triple/quadruple counters and MotifCounts."""

import numpy as np
import pytest

from repro.core import motifs as M
from repro.core.counters import (
    MotifCounts,
    PairCounter,
    StarCounter,
    TriangleCounter,
    merge_counters,
    pair_index,
    star_index,
)
from repro.errors import ValidationError
from repro.graph.temporal_graph import IN, OUT


class TestIndexing:
    def test_star_index_layout(self):
        assert star_index(0, 0, 0, 0) == 0
        assert star_index(0, 0, 0, 1) == 1
        assert star_index(0, 1, 0, 0) == 4
        assert star_index(1, 0, 0, 0) == 8
        assert star_index(2, 1, 1, 1) == 23

    def test_pair_index_layout(self):
        assert pair_index(0, 0, 0) == 0
        assert pair_index(1, 1, 1) == 7


class TestFlatCounters:
    def test_add_and_get(self):
        c = StarCounter()
        c.add(M.STAR_II, IN, OUT, IN, 5)
        assert c.get(M.STAR_II, IN, OUT, IN) == 5
        assert c.total() == 5

    def test_merge(self):
        a = StarCounter()
        b = StarCounter()
        a.add(0, 0, 0, 0, 2)
        b.add(0, 0, 0, 0, 3)
        b.add(2, 1, 1, 1, 1)
        a.merge(b)
        assert a.get(0, 0, 0, 0) == 5
        assert a.get(2, 1, 1, 1) == 1

    def test_merge_type_mismatch(self):
        with pytest.raises(ValidationError):
            StarCounter().merge(PairCounter())

    def test_copy_is_independent(self):
        a = PairCounter()
        b = a.copy()
        b.add(OUT, OUT, OUT)
        assert a.total() == 0
        assert b.total() == 1

    def test_wrong_size_data(self):
        with pytest.raises(ValidationError):
            StarCounter([0] * 7)

    def test_equality(self):
        a, b = StarCounter(), StarCounter()
        assert a == b
        b.add(0, 0, 0, 0)
        assert a != b

    def test_merge_counters_helper(self):
        a, b = PairCounter(), PairCounter()
        a.add(0, 0, 0, 2)
        b.add(0, 0, 0, 3)
        merged = merge_counters([a, b])
        assert merged.get(0, 0, 0) == 5
        assert a.get(0, 0, 0) == 2  # inputs untouched

    def test_merge_counters_empty(self):
        assert merge_counters([]) is None

    def test_star_cells_labels(self):
        c = StarCounter()
        labels = dict(c.cells())
        assert "Star[I,in,o,in]" in labels
        assert len(labels) == 24


class TestPairCounter:
    def test_center_symmetry_detection(self):
        c = PairCounter()
        c.add(OUT, IN, OUT, 4)
        assert not c.check_center_symmetry()
        c.add(IN, OUT, IN, 4)
        assert c.check_center_symmetry()

    def test_per_motif_uses_out_rooted_cells(self):
        c = PairCounter()
        c.add(OUT, IN, OUT, 7)   # M65 seen from the first edge's source
        c.add(IN, OUT, IN, 7)    # same instances seen from the other side
        assert c.per_motif()["M65"] == 7


class TestTriangleCounter:
    def test_multiplicity_validation(self):
        with pytest.raises(ValidationError):
            TriangleCounter(multiplicity=2)

    def test_per_motif_divides_by_multiplicity(self):
        c = TriangleCounter(multiplicity=3)
        for cell in c.isomorphic_cells()["M26"]:
            c.add(*cell, count=4)
        assert c.per_motif()["M26"] == 4

    def test_per_motif_multiplicity_one(self):
        c = TriangleCounter(multiplicity=1)
        cells = c.isomorphic_cells()["M15"]
        c.add(*cells[0], count=4)
        assert c.per_motif()["M15"] == 4

    def test_indivisible_raises(self):
        c = TriangleCounter(multiplicity=3)
        c.add(M.TRI_I, OUT, OUT, OUT, 2)
        with pytest.raises(ValidationError, match="not divisible"):
            c.per_motif()

    def test_corner_symmetry(self):
        c = TriangleCounter(multiplicity=3)
        for cell in c.isomorphic_cells()["M36"]:
            c.add(*cell, count=2)
        assert c.check_corner_symmetry()
        c.add(M.TRI_I, OUT, OUT, OUT, 1)
        assert not c.check_corner_symmetry()

    def test_merge_multiplicity_mismatch(self):
        with pytest.raises(ValidationError):
            TriangleCounter(multiplicity=3).merge(TriangleCounter(multiplicity=1))

    def test_isomorphic_cells_structure(self):
        groups = TriangleCounter().isomorphic_cells()
        assert len(groups) == 8
        assert all(len(cells) == 3 for cells in groups.values())


class TestMotifCounts:
    def test_zeros(self):
        counts = MotifCounts.zeros()
        assert counts.total() == 0
        assert counts.is_exact

    def test_from_dict_and_getitem(self):
        counts = MotifCounts.from_dict({"M24": 7, "M55": 3})
        assert counts["M24"] == 7
        assert counts.get(5, 5) == 3
        assert counts.total() == 10

    def test_from_counters_combines(self):
        star = StarCounter()
        star.add(M.STAR_I, IN, OUT, IN, 2)  # M24
        pair = PairCounter()
        pair.add(OUT, OUT, OUT, 5)  # M55
        counts = MotifCounts.from_counters(star, pair, None)
        assert counts["M24"] == 2
        assert counts["M55"] == 5

    def test_category_total(self):
        counts = MotifCounts.from_dict({"M55": 2, "M26": 3, "M11": 4})
        assert counts.category_total(M.MotifCategory.PAIR) == 2
        assert counts.category_total(M.MotifCategory.TRIANGLE) == 3
        assert counts.category_total(M.MotifCategory.STAR) == 4

    def test_addition(self):
        a = MotifCounts.from_dict({"M11": 1})
        b = MotifCounts.from_dict({"M11": 2, "M66": 1})
        c = a + b
        assert c["M11"] == 3
        assert c["M66"] == 1

    def test_equality_is_count_based(self):
        a = MotifCounts.from_dict({"M11": 1}, algorithm="fast")
        b = MotifCounts.from_dict({"M11": 1}, algorithm="ex")
        assert a == b
        assert a != MotifCounts.from_dict({"M11": 2})
        assert a.same_counts(b)

    def test_bad_shape(self):
        with pytest.raises(ValidationError):
            MotifCounts(np.zeros((5, 6)))

    def test_float_grid_for_estimates(self):
        counts = MotifCounts(np.full((6, 6), 0.5))
        assert not counts.is_exact
        assert counts["M11"] == 0.5

    def test_to_text_renders_all_rows(self):
        text = MotifCounts.from_dict({"M11": 12_345_678, "M12": 45_000}).to_text("t")
        assert "12.3M" in text
        assert "45.0K" in text
        assert text.count("i=") == 6

    def test_per_motif_roundtrip(self):
        original = {"M11": 5, "M46": 2}
        counts = MotifCounts.from_dict(original)
        per = counts.per_motif()
        assert per["M11"] == 5
        assert per["M46"] == 2
        assert sum(per.values()) == 7

    def test_str_contains_algorithm(self):
        assert "fast" in str(MotifCounts.zeros(algorithm="fast"))
