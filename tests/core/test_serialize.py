"""Tests for MotifCounts serialisation."""

import pytest

from repro.core.api import count_motifs
from repro.core.serialize import (
    counts_from_json,
    counts_to_csv,
    counts_to_json,
    load_counts,
    save_counts,
)
from repro.errors import ValidationError


class TestJson:
    def test_roundtrip(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        restored = counts_from_json(counts_to_json(counts))
        assert restored == counts
        assert restored.algorithm == counts.algorithm
        assert restored.delta == counts.delta

    def test_file_roundtrip(self, paper_graph, tmp_path):
        counts = count_motifs(paper_graph, 10)
        path = tmp_path / "counts.json"
        save_counts(counts, path)
        assert load_counts(path) == counts

    def test_invalid_json(self):
        with pytest.raises(ValidationError, match="invalid JSON"):
            counts_from_json("not json {")

    def test_unknown_format(self):
        with pytest.raises(ValidationError, match="unknown format"):
            counts_from_json('{"format": "other/9", "counts": {}}')

    def test_unknown_motif_rejected(self):
        doc = '{"format": "repro.motif_counts/1", "counts": {"M99": 1}}'
        with pytest.raises(ValidationError, match="unknown motif"):
            counts_from_json(doc)

    def test_json_is_sorted_and_versioned(self, paper_graph):
        text = counts_to_json(count_motifs(paper_graph, 10))
        assert '"format": "repro.motif_counts/1"' in text


class TestCsv:
    def test_csv_has_37_lines(self, paper_graph):
        text = counts_to_csv(count_motifs(paper_graph, 10))
        lines = text.strip().splitlines()
        assert len(lines) == 37  # header + 36 motifs
        assert lines[0] == "motif,row,col,category,count"

    def test_csv_counts_match(self, paper_graph):
        counts = count_motifs(paper_graph, 10)
        for line in counts_to_csv(counts).strip().splitlines()[1:]:
            name, _, _, _, value = line.split(",")
            assert counts[name] == int(value)
