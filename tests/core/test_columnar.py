"""Columnar backend: kernel equivalence, backend plumbing, HARE parity.

The load-bearing guarantee of the columnar backend is *bit-identical
counts*: every test here compares against the pure-Python loops, which
are themselves validated against the brute-force reference elsewhere.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import count_motifs
from repro.core.columnar_kernels import (
    count_star_pair_columnar,
    count_triangle_columnar,
)
from repro.core.fast_star import count_star_pair, count_star_pair_tasks
from repro.core.fast_tri import count_triangle, count_triangle_tasks
from repro.core.registry import CountRequest, execute, get_algorithm
from repro.errors import ValidationError
from repro.graph.generators import (
    powerlaw_temporal_graph,
    triangle_rich_graph,
    uniform_temporal_graph,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.scheduler import build_batches
from tests.conftest import random_graph

#: Every registered algorithm (the seven built-ins).
ALL_ALGORITHMS = ("fast", "ex", "bruteforce", "bt", "twoscent", "bts", "ews")


class TestKernelEquivalence:
    """Property tests: columnar kernels == Python loops, cell for cell."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("delta", [0, 1, 4, 7.5, 50])
    def test_star_pair_kernel_matches(self, seed, delta):
        g = random_graph(seed, num_nodes=5 + seed % 4, num_edges=12 + 3 * seed)
        star_py, pair_py = count_star_pair(g, delta)
        star_col, pair_col = count_star_pair_columnar(g, delta)
        assert list(star_col) == star_py.data
        assert list(pair_col) == pair_py.data

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("delta", [0, 1, 4, 7.5, 50])
    def test_triangle_kernel_matches(self, seed, delta):
        g = random_graph(seed, num_nodes=5 + seed % 4, num_edges=12 + 3 * seed)
        assert list(count_triangle_columnar(g, delta)) == count_triangle(g, delta).data

    @pytest.mark.parametrize("seed", range(4))
    def test_float_timestamps(self, seed):
        rng = random.Random(seed)
        edges = []
        for _ in range(40):
            u = rng.randrange(7)
            v = (u + rng.randrange(1, 7)) % 7
            edges.append((u, v, rng.uniform(0, 30)))
        g = TemporalGraph(edges)
        star_py, pair_py = count_star_pair(g, 6.5)
        star_col, pair_col = count_star_pair_columnar(g, 6.5)
        assert list(star_col) == star_py.data
        assert list(pair_col) == pair_py.data
        assert list(count_triangle_columnar(g, 6.5)) == count_triangle(g, 6.5).data

    def test_generator_graphs(self):
        for g, delta in [
            (powerlaw_temporal_graph(120, 1200, seed=5), 5000.0),
            (uniform_temporal_graph(40, 600, seed=2), 50.0),
            (triangle_rich_graph(60, gap=4, seed=3), 40.0),
        ]:
            star_py, pair_py = count_star_pair(g, delta)
            star_col, pair_col = count_star_pair_columnar(g, delta)
            assert list(star_col) == star_py.data
            assert list(pair_col) == pair_py.data
            tri_py = count_triangle(g, delta)
            assert list(count_triangle_columnar(g, delta)) == tri_py.data

    @pytest.mark.parametrize(
        "edges",
        [
            [],
            [(0, 1, 5)],
            [(0, 1, 1), (1, 0, 1)],
            [(0, 1, 1), (0, 1, 1), (0, 1, 1)],  # duplicate multi-edges
        ],
    )
    def test_degenerate_graphs(self, edges):
        g = TemporalGraph(edges)
        star_py, pair_py = count_star_pair(g, 2)
        star_col, pair_col = count_star_pair_columnar(g, 2)
        assert list(star_col) == star_py.data
        assert list(pair_col) == pair_py.data
        assert list(count_triangle_columnar(g, 2)) == count_triangle(g, 2).data

    @pytest.mark.parametrize("seed", range(6))
    def test_task_union_matches(self, seed):
        """Merged task results equal the serial count (HARE contract)."""
        g = random_graph(seed, num_nodes=8, num_edges=40)
        tasks = [t for b in build_batches(g, workers=3, thrd=5) for t in b.tasks]
        star_py, pair_py = count_star_pair_tasks(g, 4, tasks)
        tri_py = count_triangle_tasks(g, 4, tasks)
        star_col, pair_col = count_star_pair_columnar(g, 4, tasks)
        assert list(star_col) == star_py.data
        assert list(pair_col) == pair_py.data
        assert list(count_triangle_columnar(g, 4, tasks, chunk_pairs=5)) == tri_py.data

    def test_tiny_chunks_change_nothing(self):
        g = random_graph(9, num_nodes=7, num_edges=35)
        tri_big = count_triangle_columnar(g, 6)
        tri_small = count_triangle_columnar(g, 6, chunk_pairs=3)
        assert list(tri_big) == list(tri_small)


class TestBackendAcrossAlgorithms:
    """Backend *plumbing* checks.

    The per-algorithm python-vs-columnar equivalence (and category
    masking) assertions that used to live here are subsumed by the
    systematic matrix in ``tests/test_conformance.py``, which also
    covers fork/spawn/persistent-pool execution.  Only the
    backend-resolution metadata checks remain.
    """

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_backend_metadata_resolution(self, paper_graph, algorithm):
        spec = get_algorithm(algorithm)
        kwargs = {} if spec.is_exact else {"seed": 7, "n_samples": 2}
        py = count_motifs(paper_graph, 6, algorithm=algorithm, backend="python", **kwargs)
        col = count_motifs(paper_graph, 6, algorithm=algorithm, backend="columnar", **kwargs)
        assert py.meta["backend"] == "python"
        # Algorithms without a columnar implementation fall back.
        expected = "columnar" if "columnar" in spec.backends else "python"
        assert col.meta["backend"] == expected

    def test_auto_prefers_columnar_for_fast(self, paper_graph):
        result = count_motifs(paper_graph, 10)
        assert result.backend == "columnar"
        assert result.total() == 27

    def test_auto_is_python_for_bt(self, paper_graph):
        result = count_motifs(paper_graph, 10, algorithm="bt")
        assert result.backend == "python"


class TestBackendPlumbing:
    def test_unknown_backend_rejected(self, paper_graph):
        with pytest.raises(ValidationError, match="backend"):
            CountRequest(graph=paper_graph, delta=10, backend="gpu")

    def test_resolve_concretizes_auto(self, paper_graph):
        spec = get_algorithm("fast")
        req = CountRequest(graph=paper_graph, delta=10).resolve(spec)
        assert req.backend == "columnar"
        spec = get_algorithm("bt")
        req = CountRequest(graph=paper_graph, delta=10, algorithm="bt").resolve(spec)
        assert req.backend == "python"

    def test_remove_centers_rejects_columnar(self, paper_graph):
        with pytest.raises(ValidationError, match="sequential"):
            count_triangle(paper_graph, 10, remove_centers=True, backend="columnar")

    def test_phase_seconds_include_columnar_build(self, paper_graph):
        result = execute(
            CountRequest(graph=paper_graph, delta=10, backend="columnar")
        )
        assert "columnar_build" in result.phase_seconds
        assert "star_pair" in result.phase_seconds
        assert result.dominant_phase() is not None

    def test_replicate_phases_are_surfaced(self, paper_graph):
        result = count_motifs(
            paper_graph, 10, algorithm="bts", seed=0, n_samples=2, q=0.5
        )
        # phase_seconds partitions the runtime (inner phases summed
        # across replicates, or per-sample totals as fallback) ...
        assert result.phase_seconds
        assert result.dominant_phase() is not None
        # ... and per-sample wall-clock lives in meta, not mixed in:
        # sample[i] keys appear only as the all-or-nothing fallback.
        assert len(result.meta["sample_seconds"]) == 2
        sample_keys = {
            key for key in result.phase_seconds if key.startswith("sample[")
        }
        assert sample_keys in (set(), set(result.phase_seconds))


class TestHareColumnar:
    @pytest.mark.parametrize("schedule", ["dynamic", "static"])
    def test_parallel_columnar_matches_serial(self, schedule):
        g = powerlaw_temporal_graph(80, 900, seed=4)
        serial = count_motifs(g, 4000, backend="python")
        parallel = count_motifs(
            g, 4000, workers=2, schedule=schedule, backend="columnar"
        )
        assert serial.same_counts(parallel)
        assert parallel.meta["backend"] == "columnar"

    def test_single_worker_pool_fallback(self, paper_graph):
        parallel = count_motifs(paper_graph, 10, workers=2, backend="columnar")
        assert parallel.total() == 27
