"""Tests for the ablation variants: same results, different algorithmics."""

from hypothesis import given, settings

from repro.core.ablation import count_star_pair_rescan, count_triangle_no_window
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle
from tests.core.test_properties import deltas, temporal_graphs


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_rescan_star_equals_fast_star(graph, delta):
    star_a, pair_a = count_star_pair(graph, delta)
    star_b, pair_b = count_star_pair_rescan(graph, delta)
    assert star_a == star_b
    assert pair_a == pair_b


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_no_window_tri_equals_fast_tri(graph, delta):
    assert count_triangle_no_window(graph, delta) == count_triangle(graph, delta)


def test_rescan_on_paper_graph(paper_graph):
    star_a, pair_a = count_star_pair(paper_graph, 10)
    star_b, pair_b = count_star_pair_rescan(paper_graph, 10)
    assert star_a == star_b
    assert pair_a == pair_b


def test_no_window_on_paper_graph(paper_graph):
    assert count_triangle_no_window(paper_graph, 10) == count_triangle(paper_graph, 10)


def test_rescan_validation():
    import pytest

    from repro.errors import ValidationError
    from repro.graph.temporal_graph import TemporalGraph

    with pytest.raises(ValidationError):
        count_star_pair_rescan(TemporalGraph([]), -1)
    with pytest.raises(ValidationError):
        count_triangle_no_window(TemporalGraph([]), -1)
