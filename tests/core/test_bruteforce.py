"""Unit tests for the brute-force reference counter."""

import pytest

from repro.core.bruteforce import brute_force_counts
from repro.errors import ValidationError
from repro.graph.temporal_graph import TemporalGraph


class TestHandCountedCases:
    def test_empty(self):
        assert brute_force_counts(TemporalGraph([]), 10).total() == 0

    def test_one_cycle(self, triangle_graph):
        counts = brute_force_counts(triangle_graph, 10)
        assert counts["M26"] == 1
        assert counts.total() == 1

    def test_pair_ping_pong(self, tiny_pair_graph):
        # edges o,i,o,i at t=0,2,4,6; delta=4 admits triples (0,2,4) and
        # (2,4,6) — both alternate directions, i.e. both are M65
        counts = brute_force_counts(tiny_pair_graph, 4)
        assert counts["M65"] == 2
        assert counts["M66"] == 0
        assert counts.total() == 2

    def test_pair_all_triples_with_large_delta(self, tiny_pair_graph):
        counts = brute_force_counts(tiny_pair_graph, 100)
        # C(4,3) = 4 ordered triples
        assert counts.total() == 4

    def test_star_simple(self):
        # hub with a repeated neighbour: exactly one 3-node star
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 2, 3)])
        counts = brute_force_counts(g, 10)
        assert counts.total() == 1

    def test_three_distinct_leaves_is_four_nodes(self):
        # hub plus three distinct leaves spans 4 nodes: not a motif
        g = TemporalGraph([(0, 1, 1), (0, 2, 2), (0, 3, 3)])
        assert brute_force_counts(g, 10).total() == 0

    def test_four_node_patterns_ignored(self):
        g = TemporalGraph([(0, 1, 1), (2, 3, 2), (4, 5, 3)])
        assert brute_force_counts(g, 10).total() == 0

    def test_delta_zero(self):
        g = TemporalGraph([(0, 1, 5), (0, 1, 5), (1, 0, 5)])
        counts = brute_force_counts(g, 0)
        assert counts["M56"] == 1

    def test_negative_delta_raises(self):
        with pytest.raises(ValidationError):
            brute_force_counts(TemporalGraph([]), -1)

    def test_paper_fig1_total(self, paper_graph):
        counts = brute_force_counts(paper_graph, 10)
        # all named instances in the paper text are present
        assert counts["M63"] == 1
        assert counts["M46"] == 1
        assert counts["M65"] == 1
        assert counts["M25"] == 1
        assert counts.algorithm == "bruteforce"
