"""Property-based tests: FAST against the brute-force oracle.

These are the central correctness arguments of the reproduction: on
arbitrary random temporal graphs — including timestamp ties, heavy
multi-edges and reciprocated bursts — FAST's counters must agree with
exhaustive enumeration, and every structural invariant the paper's
de-duplication rules rely on must hold.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.api import count_motifs
from repro.core.bruteforce import brute_force_counts
from repro.core.fast_star import count_star_pair
from repro.core.fast_tri import count_triangle
from repro.graph.temporal_graph import TemporalGraph


@st.composite
def temporal_graphs(draw, max_nodes=8, max_edges=28, max_t=18):
    """Random small temporal graphs with frequent timestamp ties."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        t = draw(st.integers(min_value=0, max_value=max_t))
        edges.append((u, v, t))
    return TemporalGraph(edges)


deltas = st.integers(min_value=0, max_value=15)


@settings(max_examples=120, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_fast_equals_bruteforce(graph, delta):
    assert count_motifs(graph, delta) == brute_force_counts(graph, delta)


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_pair_counter_center_symmetry(graph, delta):
    _, pair = count_star_pair(graph, delta)
    assert pair.check_center_symmetry()


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_triangle_corner_symmetry(graph, delta):
    tri = count_triangle(graph, delta)
    assert tri.check_corner_symmetry()


@settings(max_examples=80, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_triangle_dedup_equals_divide_by_three(graph, delta):
    removed = count_triangle(graph, delta, remove_centers=True)
    parallel = count_triangle(graph, delta)
    assert removed.per_motif() == parallel.per_motif()


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(), delta=deltas, split=st.integers(min_value=1, max_value=5))
def test_first_edge_split_invariance(graph, delta, split):
    """Splitting first-edge ranges (HARE's intra-node mode) is exact."""
    from repro.core.fast_star import count_star_pair_tasks
    from repro.core.fast_tri import count_triangle_tasks

    tasks = []
    for node in range(graph.num_nodes):
        degree = graph.degree(node)
        step = max(1, -(-degree // split))
        lo = 0
        while lo < degree:
            tasks.append((node, lo, min(lo + step, degree)))
            lo += step
    star_split, pair_split = count_star_pair_tasks(graph, delta, tasks)
    tri_split = count_triangle_tasks(graph, delta, tasks)
    star_full, pair_full = count_star_pair(graph, delta)
    assert star_split == star_full
    assert pair_split == pair_full
    assert tri_split == count_triangle(graph, delta)


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_monotonicity_in_delta(graph, delta):
    """Growing δ can only add motif instances, never remove them."""
    small = count_motifs(graph, delta)
    large = count_motifs(graph, delta + 3)
    assert (large.grid >= small.grid).all()


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_time_shift_invariance(graph, delta):
    """Motif counts depend on gaps, not absolute timestamps."""
    shifted = TemporalGraph([(u, v, t + 1000) for u, v, t in graph.edges()])
    assert count_motifs(graph, delta) == count_motifs(shifted, delta)


@settings(max_examples=60, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_node_relabel_invariance(graph, delta):
    """Counts are invariant under node relabelling."""
    relabeled = TemporalGraph(
        [(f"n{u}", f"n{v}", t) for u, v, t in graph.edges()]
    )
    assert count_motifs(graph, delta) == count_motifs(relabeled, delta)


@settings(max_examples=50, deadline=None)
@given(graph=temporal_graphs(max_edges=20), delta=deltas)
def test_disjoint_union_additivity(graph, delta):
    """Counts over disjoint node sets add up (no cross-talk)."""
    edges = list(graph.edges())
    offset = graph.num_nodes + 10
    union = TemporalGraph(
        edges + [(u + offset, v + offset, t) for u, v, t in graph.internal_edges()]
    )
    single = count_motifs(graph, delta)
    double = count_motifs(union, delta)
    assert (double.grid == 2 * single.grid).all()


@settings(max_examples=50, deadline=None)
@given(graph=temporal_graphs(), delta=deltas)
def test_huge_delta_equals_unconstrained(graph, delta):
    """Once δ covers the whole span, counts stop growing."""
    span = int(graph.time_span)
    a = count_motifs(graph, span + 1)
    b = count_motifs(graph, span + 1000)
    assert a == b
