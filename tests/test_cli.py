"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.edgelist import save_edgelist
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def edge_file(tmp_path, paper_graph):
    # relabel to ints for SNAP round-trip
    g = TemporalGraph([(u, v, t) for u, v, t in paper_graph.internal_edges()])
    path = tmp_path / "graph.txt"
    save_edgelist(g, path)
    return str(path)


class TestCount:
    def test_count_from_file(self, edge_file, capsys):
        assert main(["count", "--input", edge_file, "--delta", "10"]) == 0
        out = capsys.readouterr().out
        assert "total=27" in out

    def test_count_json(self, edge_file, capsys):
        assert main(["count", "--input", edge_file, "--delta", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 27
        assert payload["counts"]["M63"] == 1
        assert payload["algorithm"] == "fast"

    def test_count_dataset(self, capsys):
        assert main(
            ["count", "--dataset", "collegemsg", "--scale", "0.05", "--delta", "600"]
        ) == 0
        assert "total=" in capsys.readouterr().out

    def test_count_ex_algorithm(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--algorithm", "ex", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 27

    def test_count_parallel(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--workers", "2", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["total"] == 27

    @pytest.mark.parametrize("backend", ["auto", "python", "columnar"])
    def test_count_backend(self, edge_file, backend, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10",
             "--backend", backend, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 27
        expected = "python" if backend == "python" else "columnar"
        assert payload["backend"] == expected

    def test_count_json_surfaces_phase_seconds(self, edge_file, capsys):
        assert main(["count", "--input", edge_file, "--delta", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["phase_seconds"]) >= {"star_pair", "triangle"}
        assert payload["dominant_phase"] in payload["phase_seconds"]

    def test_count_text_shows_backend_and_phases(self, edge_file, capsys):
        assert main(["count", "--input", edge_file, "--delta", "10"]) == 0
        out = capsys.readouterr().out
        assert "backend: columnar" in out
        assert "dominant:" in out

    def test_count_categories(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10",
             "--categories", "triangle", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["M26"] == 1
        assert payload["counts"]["M55"] == 0

    def test_count_bt_algorithm(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--algorithm", "bt", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 27
        assert payload["is_exact"] is True

    def test_count_twoscent_algorithm(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10",
             "--algorithm", "twoscent", "--categories", "triangle", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["M26"] == 1

    def test_count_bts_sampling_flags(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--algorithm", "bts",
             "--n-samples", "2", "--seed", "7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_exact"] is False
        assert payload["n_samples"] == 2
        assert set(payload["stderr"]) == set(payload["counts"])

    def test_count_ews_text_reports_ci(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--algorithm", "ews"]
        ) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out

    def test_count_sampling_flag_on_exact_is_rejected(self, edge_file, capsys):
        assert main(
            ["count", "--input", edge_file, "--delta", "10", "--n-samples", "3"]
        ) == 2
        assert "sampling" in capsys.readouterr().err

    def test_missing_source_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["count", "--delta", "10"])


class TestGenerateAndStats:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = tmp_path / "gen.txt"
        assert main(
            ["generate", "--dataset", "collegemsg", "--scale", "0.02", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_then_count_round_trip(self, tmp_path, capsys):
        out = tmp_path / "gen.txt"
        main(["generate", "--dataset", "bitcoinalpha", "--scale", "0.05", "--out", str(out)])
        capsys.readouterr()
        assert main(["count", "--input", str(out), "--delta", "600", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] >= 0

    def test_stats(self, edge_file, capsys):
        assert main(["stats", "--input", edge_file]) == 0
        out = capsys.readouterr().out
        assert "nodes:            5" in out
        assert "temporal edges:   12" in out

    def test_stats_dataset(self, capsys):
        assert main(["stats", "--dataset", "collegemsg", "--scale", "0.05"]) == 0
        assert "reciprocity" in capsys.readouterr().out


class TestBenchAndList:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "collegemsg" in out
        assert "redditcomments" in out

    def test_bench_table2(self, capsys, tmp_path):
        out_file = tmp_path / "t2.txt"
        assert main(["bench", "table2", "--scale", "0.02", "--out", str(out_file)]) == 0
        assert "Table II" in capsys.readouterr().out
        assert out_file.exists()

    def test_bench_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["bench", "table7"])

    def test_list_algorithms(self, capsys):
        assert main(["list-algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("fast", "ex", "bruteforce", "bt", "twoscent", "bts", "ews"):
            assert name in out
        assert "approximate" in out and "exact" in out

    def test_help_lists_registry_algorithms(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "registered algorithms" in out
        assert "twoscent" in out


class TestErrors:
    def test_graph_format_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("not an edge list\n")
        assert main(["count", "--input", str(bad), "--delta", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestStream:
    def test_stream_emits_jsonl_checkpoints(self, edge_file, capsys):
        assert main(
            ["stream", "--input", edge_file, "--delta", "10",
             "--checkpoint-every", "5"]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [cp["checkpoint"] for cp in lines] == [1, 2, 3]
        assert lines[-1]["edges_seen"] == 12
        # Unbounded stream: final totals equal the batch count.
        assert lines[-1]["total"] == 27
        for cp in lines:
            assert set(cp["phase_seconds"]) == {"ingest", "expire", "count"}
            assert cp["dominant_phase"] in {"ingest", "expire", "count"}

    def test_stream_per_motif_counts(self, edge_file, capsys):
        assert main(
            ["stream", "--input", edge_file, "--delta", "10", "--per-motif"]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 1
        assert lines[0]["counts"]["M63"] == 1
        assert sum(lines[0]["counts"].values()) == lines[0]["total"] == 27

    def test_stream_window_expires_edges(self, edge_file, capsys):
        assert main(
            ["stream", "--input", edge_file, "--delta", "5", "--window", "8",
             "--checkpoint-every", "4"]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        final = lines[-1]
        assert final["edges_expired"] > 0
        assert final["edges_seen"] == final["edges_live"] + final["edges_expired"]
        assert final["watermark"] == pytest.approx(final["t_latest"] - 8)

    def test_stream_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("0 1 0\n# comment\n1 0 2\n0 1 4\n")
        )
        assert main(["stream", "--input", "-", "--delta", "10"]) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[-1]["edges_seen"] == 3
        assert lines[-1]["total"] == 1

    def test_stream_stdin_malformed_line_reports_position(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("0 1 0\n1 0 2\nbogus line here\n0 1 4\n"),
        )
        assert main(
            ["stream", "--input", "-", "--delta", "10", "--checkpoint-every", "2"]
        ) == 2
        captured = capsys.readouterr()
        # Checkpoints emitted before the bad line still came through...
        emitted = [json.loads(line) for line in captured.out.splitlines()]
        assert emitted and emitted[0]["edges_seen"] == 2
        # ... and the error names the exact stdin line.
        assert "error:" in captured.err
        assert "<stdin>:3" in captured.err

    def test_stream_stdin_short_line_rejected(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("0 1\n"))
        assert main(["stream", "--input", "-", "--delta", "10"]) == 2
        err = capsys.readouterr().err
        assert "<stdin>:1" in err and "expected 'u v t'" in err

    @pytest.mark.parametrize("bad_t", ["nan", "inf", "-inf"])
    def test_stream_stdin_non_finite_timestamp_rejected(self, capsys, monkeypatch, bad_t):
        import io

        # float("nan")/float("inf") parse as numbers but poison window
        # arithmetic and the canonical sort; the parser must refuse
        # them instead of silently corrupting the stream.
        monkeypatch.setattr("sys.stdin", io.StringIO(f"0 1 0\n0 1 {bad_t}\n0 1 4\n"))
        assert main(["stream", "--input", "-", "--delta", "10"]) == 2
        err = capsys.readouterr().err
        assert "<stdin>:2" in err and "finite" in err

    def test_count_rejects_non_finite_timestamp_file(self, tmp_path, capsys):
        bad = tmp_path / "nan.txt"
        bad.write_text("0 1 0\n1 0 nan\n")
        assert main(["count", "--input", str(bad), "--delta", "5"]) == 2
        assert "finite" in capsys.readouterr().err

    def test_stream_stdin_window_and_late_drops(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("0 1 0\n1 0 10\n0 1 20\n1 0 5\n0 1 30\n"),
        )
        assert main(
            ["stream", "--input", "-", "--delta", "4", "--window", "12",
             "--checkpoint-every", "1"]
        ) == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        final = lines[-1]
        # The t=5 edge arrived below the watermark and was dropped late.
        assert final["edges_dropped_late"] == 1
        assert final["edges_seen"] + final["edges_dropped_late"] == 5
        assert final["edges_seen"] == final["edges_live"] + final["edges_expired"]

    def test_stream_matches_batch_count(self, edge_file, capsys):
        assert main(["count", "--input", edge_file, "--delta", "7", "--json"]) == 0
        batch = json.loads(capsys.readouterr().out)
        assert main(
            ["stream", "--input", edge_file, "--delta", "7", "--per-motif"]
        ) == 0
        stream = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert stream["counts"] == batch["counts"]

    def test_stream_rejects_non_streaming_algorithm(self, edge_file):
        with pytest.raises(SystemExit):
            main(["stream", "--input", edge_file, "--delta", "5",
                  "--algorithm", "bt"])

    def test_stream_bad_file_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1\n")
        assert main(["stream", "--input", str(bad), "--delta", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stream_missing_file_reports_error(self, capsys):
        assert main(["stream", "--input", "/no/such/file", "--delta", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_count_missing_file_reports_error(self, capsys):
        assert main(["count", "--input", "/no/such/file", "--delta", "5"]) == 2
        assert "error:" in capsys.readouterr().err
