"""Cross-module integration tests on dataset-scale graphs.

These run the real pipeline end to end at reduced dataset scale:
generator → graph → all exact engines → identical grids, plus the
public-API paths the examples and CLI rely on.
"""

import pytest

from repro import TemporalGraph, count_motifs, load_dataset
from repro.baselines import bt_count, ex_count, twoscent_count_cycles
from repro.core.bruteforce import brute_force_counts
from repro.core.motifs import MotifCategory
from repro.graph.edgelist import load_edgelist, save_edgelist
from repro.parallel.hare import hare_count

DELTA = 600


@pytest.fixture(scope="module")
def small_dataset():
    return load_dataset("collegemsg", scale=0.15, cache=False)


class TestEngineAgreementOnDatasets:
    def test_fast_ex_hare_agree(self, small_dataset):
        fast = count_motifs(small_dataset, DELTA)
        assert ex_count(small_dataset, DELTA) == fast
        assert hare_count(small_dataset, DELTA, workers=2) == fast
        assert fast.total() > 0

    def test_bt_agrees(self, small_dataset):
        # BT on all 36 motifs is slow; shrink further
        graph = load_dataset("collegemsg", scale=0.05, cache=False)
        assert bt_count(graph, DELTA) == count_motifs(graph, DELTA)

    def test_twoscent_agrees_on_m26(self, small_dataset):
        fast = count_motifs(small_dataset, DELTA)
        assert twoscent_count_cycles(small_dataset, DELTA) == fast["M26"]

    def test_ex_parallel_agrees(self, small_dataset):
        fast = count_motifs(small_dataset, DELTA)
        assert ex_count(small_dataset, DELTA, workers=2) == fast

    def test_bruteforce_agrees_tiny(self):
        graph = load_dataset("collegemsg", scale=0.01, cache=False)
        assert brute_force_counts(graph, DELTA) == count_motifs(graph, DELTA)


class TestFileRoundTripPipeline:
    def test_generate_save_load_count(self, tmp_path, small_dataset):
        path = tmp_path / "dataset.txt"
        relabelled = TemporalGraph(
            [(u, v, t) for u, v, t in small_dataset.internal_edges()]
        )
        save_edgelist(relabelled, path)
        reloaded = load_edgelist(path)
        assert count_motifs(reloaded, DELTA) == count_motifs(small_dataset, DELTA)


class TestBipartiteDatasets:
    @pytest.mark.parametrize("name", ["rec_movielens", "ia_online_ads", "act_mooc"])
    def test_no_triangles_ever(self, name):
        graph = load_dataset(name, scale=0.1, cache=False)
        counts = count_motifs(graph, DELTA)
        assert counts.category_total(MotifCategory.TRIANGLE) == 0

    def test_bipartite_has_star_structure(self):
        graph = load_dataset("rec_movielens", scale=0.1, cache=False)
        counts = count_motifs(graph, DELTA)
        assert counts.category_total(MotifCategory.STAR) > 0


class TestDeltaSemanticsAtScale:
    def test_delta_monotone_on_dataset(self, small_dataset):
        small = count_motifs(small_dataset, 300)
        large = count_motifs(small_dataset, 1200)
        assert large.total() >= small.total()
        assert (large.grid >= small.grid).all()

    def test_category_selection_consistent(self, small_dataset):
        full = count_motifs(small_dataset, DELTA)
        star = count_motifs(small_dataset, DELTA, categories="star")
        pair = count_motifs(small_dataset, DELTA, categories="pair")
        tri = count_motifs(small_dataset, DELTA, categories="triangle")
        assert star.total() + pair.total() + tri.total() == full.total()
