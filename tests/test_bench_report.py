"""The baseline aggregator skips bad inputs instead of crashing.

CI runs ``tools/bench_report.py`` over whatever ``BENCH_*.json`` files
are committed; a half-written or hand-edited baseline must degrade to
a printed note, never a traceback that fails the job.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

import bench_report  # noqa: E402


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
    return path


GOOD = {
    "description": "demo",
    "results": [
        {"edges": 100, "speedup": 3.5},
        {"edges": 200, "per": {"bts": {"speedup": 2.0}}},
    ],
}


def test_good_file_produces_rows(tmp_path):
    _write(tmp_path, "BENCH_demo.json", GOOD)
    rows = bench_report.collect(tmp_path)
    assert ("demo", "demo", 100, "overall", 3.5) in rows
    assert ("demo", "demo", 200, "per.bts", 2.0) in rows
    assert "3.50x" in bench_report.render(rows)


def test_missing_directory_is_a_note(tmp_path, capsys):
    rows = bench_report.collect(tmp_path / "nope")
    assert rows == []
    assert "no benchmark directory" in capsys.readouterr().err


def test_malformed_json_is_skipped(tmp_path, capsys):
    _write(tmp_path, "BENCH_bad.json", "{not json")
    _write(tmp_path, "BENCH_demo.json", GOOD)
    rows = bench_report.collect(tmp_path)
    assert {r[0] for r in rows} == {"demo"}
    assert "skipping BENCH_bad.json" in capsys.readouterr().err


@pytest.mark.parametrize(
    "payload, note",
    [
        ([1, 2, 3], "top level"),
        ('"just a string"', "top level"),
        ({"results": "oops"}, "'results' is not a list"),
    ],
)
def test_wrong_shapes_are_skipped(tmp_path, capsys, payload, note):
    _write(tmp_path, "BENCH_shape.json", payload)
    assert bench_report.collect(tmp_path) == []
    assert note in capsys.readouterr().err


def test_non_numeric_fields_degrade(tmp_path):
    _write(
        tmp_path,
        "BENCH_odd.json",
        {
            "results": [
                {"edges": "many", "speedup": 1.5},  # bad edges -> 0
                {"edges": 10, "speedup": "fast"},  # bad speedup -> dropped
                {"edges": 10, "speedup": None},  # null -> dropped
                "not an entry",  # non-dict entry -> dropped
            ]
        },
    )
    rows = bench_report.collect(tmp_path)
    assert rows == [("odd", "", 0, "overall", 1.5)]


def test_main_exits_zero_on_garbage(tmp_path, capsys):
    _write(tmp_path, "BENCH_bad.json", "][")
    assert bench_report.main(["--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "no BENCH_*.json baselines found" in out


def test_main_renders_committed_baselines(capsys):
    bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
    assert bench_report.main(["--dir", str(bench_dir)]) == 0
    assert "benchmark speedup trajectory" in capsys.readouterr().out
