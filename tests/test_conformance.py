"""Cross-backend conformance matrix: one suite, every execution path.

Replaces the scattered pairwise equivalence tests that accumulated per
PR (python-vs-columnar here, serial-vs-HARE there) with one systematic
matrix over

* all seven registered algorithms,
* the ``python`` and ``columnar`` backends,
* serial / fork / spawn / persistent-pool execution,
* several δ values,

on a corpus of generated graphs (plus hypothesis-generated ones for
the serial dimensions).  The conformance contract:

* every **exact full-grid** algorithm (``fast``, ``ex``,
  ``bruteforce``, ``bt``) produces *the same grid* as the validated
  python-serial FAST reference, in every cell of the matrix;
* ``twoscent`` (M26-only by design) agrees with the reference on M26
  and with its own python-serial baseline everywhere;
* the **sampling** algorithms (``bts``, ``ews``) are bit-identical to
  their own python-serial baseline for a fixed seed, in every cell —
  backends and runtimes may never shift an estimate.

Parallel cells run with the result cache disabled, so the matrix
exercises real kernel execution on every runtime, not cache hits.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.api import count_motifs
from repro.core.registry import available_algorithms, get_algorithm
from repro.graph.generators import (
    powerlaw_temporal_graph,
    triangle_rich_graph,
    uniform_temporal_graph,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.pool import WorkerPool
from repro.storage import open_packed, pack_graph
from tests.conftest import random_graph
from tests.core.test_properties import deltas, temporal_graphs

#: The graph corpus: name -> builder (fresh instance per use).
GRAPH_BUILDERS = {
    "ties": lambda: random_graph(3, num_nodes=6, num_edges=28, t_max=10),
    "sparse": lambda: random_graph(11, num_nodes=9, num_edges=22, t_max=40),
    "powerlaw": lambda: powerlaw_temporal_graph(30, 180, seed=5),
    "uniform": lambda: uniform_temporal_graph(12, 90, seed=2),
    "triangles": lambda: triangle_rich_graph(24, gap=3, seed=4),
}

DELTAS = (0, 4, 11)

#: Exact algorithms whose full grid must equal the FAST reference.
FULL_GRID_EXACT = ("fast", "ex", "bruteforce", "bt")

SAMPLING = ("bts", "ews")

SAMPLING_KWARGS = {"seed": 11, "n_samples": 2}


@pytest.fixture(scope="module")
def corpus():
    """Graphs, python-serial references, and per-algorithm baselines."""
    graphs = {name: build() for name, build in GRAPH_BUILDERS.items()}
    references = {
        (name, delta): count_motifs(g, delta, backend="python")
        for name, g in graphs.items()
        for delta in DELTAS
    }
    return graphs, references


@pytest.fixture(scope="module")
def pools():
    """One persistent pool per start method, shared across the matrix."""
    with WorkerPool(2, "fork", result_cache=False) as fork_pool:
        with WorkerPool(2, "spawn", result_cache=False) as spawn_pool:
            yield {"fork": fork_pool, "spawn": spawn_pool}


def _variants(spec, pools):
    """Execution variants an algorithm supports: (label, extra kwargs)."""
    variants = [("serial-python", {"backend": "python"})]
    variants.append(("serial-columnar", {"backend": "columnar"}))
    if spec.parallel:
        variants.append(("fork", {"workers": 2, "start_method": "fork"}))
    if spec.pool_runtime:
        # Persistent-pool execution: HARE batches for fast, block
        # chunks for bts — both must stay exact under either start
        # method and either kernel backend.
        variants.append(
            ("pool-fork", {"workers": 2, "pool": pools["fork"], "backend": "columnar"})
        )
        variants.append(
            ("pool-fork-python", {"workers": 2, "pool": pools["fork"], "backend": "python"})
        )
        variants.append(
            ("pool-spawn", {"workers": 2, "pool": pools["spawn"], "backend": "columnar"})
        )
    if spec.name == "fast":
        variants.append(("static", {"workers": 2, "schedule": "static"}))
    return variants


def test_matrix_covers_all_registered_algorithms():
    assert set(available_algorithms()) == set(FULL_GRID_EXACT) | {"twoscent"} | set(
        SAMPLING
    )


class TestExactConformance:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("delta", DELTAS)
    @pytest.mark.parametrize("algorithm", FULL_GRID_EXACT)
    def test_full_grid_equals_reference(self, corpus, pools, graph_name, delta, algorithm):
        graphs, references = corpus
        graph = graphs[graph_name]
        reference = references[(graph_name, delta)]
        spec = get_algorithm(algorithm)
        for label, kwargs in _variants(spec, pools):
            result = count_motifs(graph, delta, algorithm=algorithm, **kwargs)
            assert result.same_counts(reference), (algorithm, label)
            assert result.is_exact

    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("delta", DELTAS)
    def test_twoscent_m26_equals_reference(self, corpus, pools, graph_name, delta):
        graphs, references = corpus
        graph = graphs[graph_name]
        reference = references[(graph_name, delta)]
        spec = get_algorithm("twoscent")
        baseline = count_motifs(graph, delta, algorithm="twoscent", backend="python")
        assert baseline["M26"] == reference["M26"]
        for label, kwargs in _variants(spec, pools):
            result = count_motifs(graph, delta, algorithm="twoscent", **kwargs)
            assert result.same_counts(baseline), label

    @pytest.mark.parametrize("categories", ["star", "pair", "triangle", "star_pair"])
    def test_category_masking_uniform_across_runtimes(self, corpus, pools, categories):
        graphs, _ = corpus
        graph = graphs["ties"]
        baseline = count_motifs(graph, 4, categories=categories, backend="python")
        for label, kwargs in _variants(get_algorithm("fast"), pools):
            result = count_motifs(graph, 4, categories=categories, **kwargs)
            assert result.same_counts(baseline), (categories, label)


class TestSamplingConformance:
    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("delta", DELTAS)
    @pytest.mark.parametrize("algorithm", SAMPLING)
    def test_estimates_bit_identical_across_cells(
        self, corpus, pools, graph_name, delta, algorithm
    ):
        graphs, _ = corpus
        graph = graphs[graph_name]
        spec = get_algorithm(algorithm)
        baseline = count_motifs(
            graph, delta, algorithm=algorithm, backend="python", **SAMPLING_KWARGS
        )
        assert not baseline.is_exact
        for label, kwargs in _variants(spec, pools):
            result = count_motifs(
                graph, delta, algorithm=algorithm, **SAMPLING_KWARGS, **kwargs
            )
            assert np.array_equal(result.grid, baseline.grid), (algorithm, label)


class TestHypothesisConformance:
    """Hypothesis-generated graphs through the serial backend pairs."""

    @settings(max_examples=20, deadline=None)
    @given(graph=temporal_graphs(max_edges=24), delta=deltas)
    def test_exact_algorithms_agree(self, graph, delta):
        reference = count_motifs(graph, delta, algorithm="bruteforce")
        for algorithm in ("fast", "ex", "bt"):
            for backend in ("python", "columnar"):
                result = count_motifs(graph, delta, algorithm=algorithm, backend=backend)
                assert result.same_counts(reference), (algorithm, backend)

    @settings(max_examples=10, deadline=None)
    @given(graph=temporal_graphs(max_edges=24), delta=deltas)
    def test_sampling_backend_invariance(self, graph, delta):
        for algorithm in SAMPLING:
            py = count_motifs(
                graph, delta, algorithm=algorithm, backend="python", **SAMPLING_KWARGS
            )
            col = count_motifs(
                graph, delta, algorithm=algorithm, backend="columnar", **SAMPLING_KWARGS
            )
            assert np.array_equal(py.grid, col.grid), algorithm


@pytest.fixture(scope="module")
def packed_corpus(tmp_path_factory, corpus):
    """Every corpus graph packed once (full layout) into a temp dir."""
    graphs, _ = corpus
    root = tmp_path_factory.mktemp("packed")
    paths = {}
    for name, graph in graphs.items():
        path = str(root / f"{name}.rgz")
        pack_graph(graph, path)
        paths[name] = path
    return paths


class TestMmapSourceConformance:
    """The ``mmap`` source axis: packed-file graphs through the matrix.

    A graph reopened zero-copy from a packed file must be
    indistinguishable from the in-memory original on every execution
    path — python/columnar kernels, serial and persistent-pool
    runtimes under both start methods, the ``source=`` request
    threading, and the out-of-core shard-halo route.
    """

    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    @pytest.mark.parametrize("delta", DELTAS)
    def test_packed_equals_reference(
        self, corpus, pools, packed_corpus, graph_name, delta
    ):
        _, references = corpus
        reference = references[(graph_name, delta)]
        with open_packed(packed_corpus[graph_name]) as packed:
            for label, kwargs in (
                ("serial-python", {"backend": "python"}),
                ("serial-columnar", {"backend": "columnar"}),
                ("pool-fork", {"workers": 2, "pool": pools["fork"], "backend": "columnar"}),
                ("pool-spawn", {"workers": 2, "pool": pools["spawn"], "backend": "columnar"}),
            ):
                result = count_motifs(packed.graph, delta, **kwargs)
                assert result.same_counts(reference), label
                assert result.is_exact

    @pytest.mark.parametrize("graph_name", sorted(GRAPH_BUILDERS))
    def test_source_request_threading(self, corpus, packed_corpus, graph_name):
        """``source=`` spec (fresh open inside execute) and shard budgets."""
        _, references = corpus
        reference = references[(graph_name, 4)]
        plain = count_motifs(None, 4, source=packed_corpus[graph_name])
        assert plain.same_counts(reference)
        assert plain.meta["source"] == packed_corpus[graph_name]
        sharded = count_motifs(
            None, 4, source=packed_corpus[graph_name], shard_budget=16
        )
        assert sharded.same_counts(reference)
        assert sharded.meta["sharding"] == "halo-union"

    def test_sampling_over_packed_source(self, corpus, packed_corpus):
        graphs, _ = corpus
        for algorithm in SAMPLING:
            baseline = count_motifs(
                graphs["ties"], 4, algorithm=algorithm, backend="python",
                **SAMPLING_KWARGS,
            )
            result = count_motifs(
                None, 4, source=packed_corpus["ties"], algorithm=algorithm,
                backend="python", **SAMPLING_KWARGS,
            )
            assert np.array_equal(result.grid, baseline.grid), algorithm

    def test_edges_layout_equals_full(self, corpus, packed_corpus, tmp_path):
        """The edges-only layout rebuilds columnar arrays to the same counts."""
        graphs, references = corpus
        path = str(tmp_path / "ties-edges.rgz")
        pack_graph(graphs["ties"], path, layout="edges")
        for delta in DELTAS:
            result = count_motifs(None, delta, source=path, backend="columnar")
            assert result.same_counts(references[("ties", delta)])


class TestPoolStaysExactOverSessions:
    """Repeated mixed traffic against one pool never drifts."""

    def test_interleaved_requests(self, corpus, pools):
        graphs, references = corpus
        pool = pools["fork"]
        for _ in range(2):
            for graph_name in ("ties", "powerlaw"):
                for delta in DELTAS:
                    result = count_motifs(
                        graphs[graph_name], delta, workers=2, pool=pool
                    )
                    assert result.same_counts(references[(graph_name, delta)])

    def test_empty_graph_everywhere(self, pools):
        empty = TemporalGraph([])
        for algorithm in FULL_GRID_EXACT:
            assert count_motifs(empty, 5, algorithm=algorithm).total() == 0
        assert count_motifs(empty, 5, workers=2, pool=pools["fork"]).total() == 0
        assert count_motifs(empty, 5, workers=2, pool=pools["spawn"]).total() == 0
