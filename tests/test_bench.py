"""Smoke tests for the benchmark harness and experiment drivers.

Drivers run at tiny scale so the full suite stays fast; shape
assertions (who wins) are left to the benchmark runs themselves.
"""

import pytest

from repro.bench.experiments import (
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12a,
    run_fig12b,
    run_table2,
    run_table3,
    EXPERIMENTS,
)
from repro.bench.harness import BenchTimer, format_seconds, format_table, time_call
from repro.errors import ValidationError


class TestHarness:
    def test_time_call_positive(self):
        assert time_call(lambda: sum(range(100))) > 0

    def test_time_call_repeat_validation(self):
        with pytest.raises(ValidationError):
            time_call(lambda: None, repeat=0)

    def test_bench_timer_speedup(self):
        timer = BenchTimer()
        timer.timings["a"] = 2.0
        timer.timings["b"] = 0.5
        assert timer.speedup("a", "b") == 4.0

    def test_bench_timer_zero_division(self):
        timer = BenchTimer()
        timer.timings["a"] = 1.0
        timer.timings["b"] = 0.0
        assert timer.speedup("a", "b") == float("inf")

    def test_format_table_alignment(self):
        text = format_table(["x", "y"], [["a", 1.5], ["bb", 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text
        assert "0.2500" in text

    def test_format_seconds(self):
        assert format_seconds(None) == "-"
        assert format_seconds(123.4) == "123"
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(0.01234) == "0.0123"


class TestDrivers:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "fig9", "fig10", "fig11", "fig12a", "fig12b"
        }

    def test_table2(self):
        result = run_table2(scale=0.02, datasets=["collegemsg", "bitcoinalpha"])
        assert len(result.rows) == 2
        assert "Table II" in result.render()

    def test_fig9(self):
        result = run_fig9(dataset="collegemsg", scale=0.2, sample_per_bucket=5)
        assert result.rows
        assert "degree" in result.headers[0]
        assert result.data["bucket_totals"]

    def test_fig10_matrices_identical(self):
        result = run_fig10(datasets=["collegemsg"], scale=0.1)
        assert result.data["all_equal"] is True
        assert "FAST counts" in result.render()

    def test_table3(self):
        result = run_table3(datasets=["collegemsg"], scale=0.08)
        assert len(result.rows) == 1
        assert result.data["speedups"]["fast"]

    def test_fig11(self):
        result = run_fig11(datasets=["collegemsg"], workers=(1, 2), scale=0.08)
        series = result.data["series"]["collegemsg"]
        assert len(series["HARE"]) == 2

    def test_fig12a(self):
        result = run_fig12a(datasets=["collegemsg"], deltas=(600, 1200), workers=1, scale=0.08)
        assert len(result.rows) == 2  # HARE + EX rows

    def test_fig12b(self):
        result = run_fig12b(dataset="collegemsg", workers=(1, 2), scale=0.08)
        assert len(result.rows) == 6
        assert result.data["base_thrd"] >= 0
