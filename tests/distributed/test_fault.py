"""Fault injection: SIGKILL a worker daemon mid-shard.

The coordinator must re-dispatch the dead worker's in-flight unit,
finish with counts bit-identical to the serial path, record the
failure in the result meta — and leak nothing: worker daemons run
``workers=1`` (no pool, no ``/dev/shm`` segments), so even an
uncleanable SIGKILL leaves the machine clean, and the coordinator
closes every socket it opened.
"""

from __future__ import annotations

import gc
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.errors import WorkerUnavailableError
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import pack_graph

from tests.conftest import random_edges

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def spawn_worker(*extra_args: str) -> "tuple[subprocess.Popen, str]":
    """A ``repro worker`` subprocess; returns (process, bound address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        cwd=REPO_ROOT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"worker listening on (\S+)", line)
    assert match, f"worker printed no address: {line!r}"
    return proc, match.group(1)


def shm_segments() -> set:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {name for name in os.listdir("/dev/shm") if "repro" in name}


@pytest.fixture
def packed(tmp_path):
    rng = random.Random(31)
    graph = TemporalGraph(random_edges(rng, 40, 600, t_max=250))
    path = str(tmp_path / "g.rgz")
    pack_graph(graph, path)
    return graph, path


def test_sigkill_mid_shard_redispatches_and_counts_stay_exact(packed):
    graph, path = packed
    serial = count_motifs(graph, 50.0, algorithm="fast")
    shm_before = shm_segments()

    # Both workers sleep 0.4 s per count op, so at kill time (~0.6 s in)
    # the victim is deterministically *mid-shard* on its second unit.
    victim, addr_victim = spawn_worker("--delay", "0.4")
    survivor, addr_survivor = spawn_worker("--delay", "0.4")
    result, error = [], []

    def run() -> None:
        try:
            result.append(count_motifs(
                path, 50.0, algorithm="fast",
                cluster=f"{addr_victim},{addr_survivor}", num_shards=2,
            ))
        except BaseException as exc:  # pragma: no cover - failure reporting
            error.append(exc)

    try:
        counter = threading.Thread(target=run)
        counter.start()
        time.sleep(0.6)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        counter.join(timeout=120)
        assert not counter.is_alive(), "coordinator never finished"
        assert not error, f"count failed: {error}"
        counts = result[0]
        assert np.array_equal(counts.grid, serial.grid), (
            "re-dispatched counts diverged from serial"
        )
        meta = counts.meta["cluster"]
        assert meta["worker_failures"] >= 1
        # The dead worker's unit was re-run (queue retry) or already
        # stolen (speculative tail copy) — either path is exactly-once.
        assert meta["retries"] + meta["speculative"] >= 1
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=30)
            proc.stdout.close()

    # SIGKILL allowed no cleanup, but workers=1 daemons own no pool and
    # no shared memory — nothing to leak.
    assert shm_segments() == shm_before, "worker kill leaked /dev/shm segments"


def test_killing_the_only_worker_fails_loudly(packed):
    _, path = packed
    proc, addr = spawn_worker("--delay", "0.4")
    try:
        error = []

        def run() -> None:
            try:
                count_motifs(path, 50.0, algorithm="fast",
                             cluster=addr, num_shards=2)
            except BaseException as exc:
                error.append(exc)

        counter = threading.Thread(target=run)
        counter.start()
        time.sleep(0.5)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        counter.join(timeout=60)
        assert not counter.is_alive()
        assert error and isinstance(error[0], WorkerUnavailableError)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()


def test_coordinator_closes_its_sockets(packed):
    graph, path = packed
    proc, addr = spawn_worker()
    try:
        gc.collect()
        fds_before = len(os.listdir("/proc/self/fd"))
        counts = count_motifs(path, 50.0, algorithm="fast",
                              cluster=addr, num_shards=3)
        assert np.array_equal(counts.grid,
                              count_motifs(graph, 50.0, algorithm="fast").grid)
        gc.collect()
        fds_after = len(os.listdir("/proc/self/fd"))
        assert fds_after <= fds_before, (
            f"coordinator leaked file descriptors ({fds_before} -> {fds_after})"
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        proc.stdout.close()
