"""Chaos suite: cluster counting through a deterministic fault proxy.

Three real worker daemons, two of them reached through
:class:`~repro.testing.faults.ChaosProxy`: one connection gets RST mid
response, another is delayed on every chunk.  The coordinator must
reconnect through its retry budget, re-admit the "recovered" worker,
finish with counts bit-identical to the serial path, and surface the
turbulence (failures, retries, readmissions) in ``meta["cluster"]`` —
all without leaking sockets or shared memory.
"""

from __future__ import annotations

import gc
import os
import random
import signal

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.distributed import health as _health
from repro.distributed.health import RetryPolicy
from repro.errors import WorkerUnavailableError
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import pack_graph
from repro.testing.faults import ChaosProxy, Fault

from tests.conftest import random_edges
from tests.distributed.test_fault import shm_segments, spawn_worker

#: Fast-reconnect policy so chaos runs finish in test time.
FAST_POLICY = RetryPolicy(
    connect_timeout=5.0, op_timeout=60.0, max_attempts=4,
    backoff_base=0.05, backoff_max=0.2, seed=42,
)


@pytest.fixture
def packed(tmp_path):
    rng = random.Random(47)
    graph = TemporalGraph(random_edges(rng, 40, 600, t_max=250))
    path = str(tmp_path / "g.rgz")
    pack_graph(graph, path)
    return graph, path


@pytest.fixture
def fast_policy(monkeypatch):
    monkeypatch.setattr(_health, "DEFAULT_RETRY_POLICY", FAST_POLICY)
    return FAST_POLICY


def _spawn(n, *extra_args):
    procs, addrs = [], []
    for _ in range(n):
        proc, addr = spawn_worker(*extra_args)
        procs.append(proc)
        addrs.append(addr)
    return procs, addrs


def _teardown(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        proc.stdout.close()


def test_chaos_cluster_counts_stay_bit_identical(packed, fast_policy):
    graph, path = packed
    serial = count_motifs(graph, 50.0, algorithm="fast")
    shm_before = shm_segments()
    gc.collect()
    fds_before = len(os.listdir("/proc/self/fd"))

    # All workers sleep 0.3 s per count op so the run is still in
    # flight when the reset worker's backoff elapses — otherwise the
    # healthy workers drain every unit before it can be re-admitted.
    procs, addrs = _spawn(3, "--delay", "0.3")
    try:
        # Worker A: first connection is RST a bit into the response
        # stream (mid open/count), every later one is clean — forcing a
        # reconnect cycle and a readmission.  Worker B: every chunk of
        # every response is delayed — a slow-but-correct worker.
        with ChaosProxy(addrs[0], faults={0: Fault("reset", after_bytes=600)},
                        seed=7) as reset_proxy, \
             ChaosProxy(addrs[1],
                        faults=lambda index: Fault("delay", after_bytes=0,
                                                   seconds=0.05),
                        seed=7) as delay_proxy:
            cluster = ",".join([reset_proxy.address, delay_proxy.address, addrs[2]])
            counts = count_motifs(path, 50.0, algorithm="fast",
                                  cluster=cluster, num_shards=6)
        assert np.array_equal(counts.grid, serial.grid), (
            "chaos-proxied cluster counts diverged from serial"
        )
        meta = counts.meta["cluster"]
        assert meta["worker_failures"] >= 1
        assert meta["workers_readmitted"] >= 1, (
            f"reset worker was never re-admitted: {meta}"
        )
        assert meta["retired_workers"] == []
        health = meta["health"]
        assert set(health) == set(cluster.split(","))
        assert all(record["state"] == "alive" for record in health.values())
        readmitted = health[reset_proxy.address]
        assert readmitted["failures"] >= 1
        assert readmitted["readmissions"] >= 1
    finally:
        _teardown(procs)

    gc.collect()
    assert shm_segments() == shm_before, "chaos run leaked /dev/shm segments"
    fds_after = len(os.listdir("/proc/self/fd"))
    assert fds_after <= fds_before, (
        f"chaos run leaked file descriptors ({fds_before} -> {fds_after})"
    )


def test_blackholed_worker_times_out_and_unit_is_redispatched(packed, fast_policy, monkeypatch):
    graph, path = packed
    serial = count_motifs(graph, 50.0, algorithm="fast")
    monkeypatch.setattr(
        _health, "DEFAULT_RETRY_POLICY",
        RetryPolicy(connect_timeout=5.0, op_timeout=0.8, max_attempts=2,
                    backoff_base=0.05, backoff_max=0.1, seed=42),
    )
    # The healthy worker is slowed (but kept well inside op_timeout) so
    # the run is still in flight when the blackholed one exhausts its
    # reconnect budget and is retired.
    victim, victim_addr = spawn_worker()
    carrier, carrier_addr = spawn_worker("--delay", "0.3")
    procs = [victim, carrier]
    try:
        # Worker A answers nothing past 30 bytes on any connection —
        # every op times out until its reconnect budget retires it;
        # worker B carries the run alone.
        with ChaosProxy(victim_addr,
                        faults=lambda index: Fault("drop", after_bytes=30),
                        seed=3) as proxy:
            cluster = ",".join([proxy.address, carrier_addr])
            counts = count_motifs(path, 50.0, algorithm="fast",
                                  cluster=cluster, num_shards=4)
        assert np.array_equal(counts.grid, serial.grid)
        meta = counts.meta["cluster"]
        assert meta["worker_failures"] >= 1
        assert meta["retired_workers"] == [proxy.address]
    finally:
        _teardown(procs)


def test_all_workers_dead_fails_typed_with_budget_message(packed, monkeypatch):
    _, path = packed
    monkeypatch.setattr(
        _health, "DEFAULT_RETRY_POLICY",
        RetryPolicy(connect_timeout=0.5, op_timeout=5.0, max_attempts=2,
                    backoff_base=0.01, backoff_max=0.02, seed=1),
    )
    import socket as _socket

    dead = []
    for _ in range(2):
        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead.append(f"127.0.0.1:{probe.getsockname()[1]}")
        probe.close()

    with pytest.raises(WorkerUnavailableError) as info:
        count_motifs(path, 50.0, algorithm="fast",
                     cluster=",".join(dead), num_shards=2)
    message = str(info.value)
    assert "retry budget" in message or "exhausted" in message
