"""Worker wire protocol: codecs, cluster specs, op handling, request fields."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.registry import CountRequest, get_algorithm
from repro.distributed import WorkerDaemon, parse_cluster
from repro.distributed import protocol
from repro.errors import StorageFormatError, ValidationError
from repro.graph.temporal_graph import TemporalGraph

from tests.conftest import random_edges


def make_graph(seed: int = 5, num_nodes: int = 40, num_edges: int = 300) -> TemporalGraph:
    rng = random.Random(seed)
    return TemporalGraph(random_edges(rng, num_nodes, num_edges, t_max=150))


# ---------------------------------------------------------------------------
# edge-slice codec
# ---------------------------------------------------------------------------

def test_edge_slice_round_trip_is_exact():
    graph = make_graph()
    payload = protocol.encode_edge_slice(graph, 50, 220)
    assert payload["format"] == "repro.distributed.edges/1"
    assert payload["num_edges"] == 170
    rebuilt = protocol.decode_edge_slice(payload)
    assert rebuilt.num_nodes == graph.num_nodes
    assert np.array_equal(rebuilt.sources, graph.sources[50:220])
    assert np.array_equal(rebuilt.destinations, graph.destinations[50:220])
    assert np.array_equal(rebuilt.timestamps, graph.timestamps[50:220])
    assert protocol.edge_slice_bytes(payload) > 0


def test_edge_slice_rejects_bad_range_and_payload():
    graph = make_graph()
    with pytest.raises(ValidationError):
        protocol.encode_edge_slice(graph, 10, graph.num_edges + 1)
    with pytest.raises(ValidationError):
        protocol.decode_edge_slice({"format": "bogus/9"})
    payload = protocol.encode_edge_slice(graph, 0, 10)
    payload["src"]["data"] = "!!! not base64 !!!"
    with pytest.raises(ValidationError):
        protocol.decode_edge_slice(payload)
    truncated = protocol.encode_edge_slice(graph, 0, 10)
    truncated["num_edges"] = 9  # columns no longer match the declaration
    with pytest.raises(ValidationError):
        protocol.decode_edge_slice(truncated)


# ---------------------------------------------------------------------------
# count-spec codec
# ---------------------------------------------------------------------------

def test_count_spec_round_trip_excludes_deployment_knobs():
    request = CountRequest(
        graph=make_graph(), delta=20.0, algorithm="ex", categories="star",
        backend="python", workers=4,
    ).resolve(get_algorithm("ex"))
    spec = protocol.encode_count_spec(request)
    assert set(spec) <= protocol.SPEC_FIELDS
    assert "workers" not in spec and "pool" not in spec
    parsed = protocol.parse_count_spec(spec)
    assert parsed["algorithm"] == "ex"
    assert parsed["categories"] == "star"
    assert parsed["delta"] == 20.0


def test_count_spec_rejects_unknown_fields_and_missing_delta():
    with pytest.raises(ValidationError):
        protocol.parse_count_spec({"delta": 5.0, "workers": 8})
    with pytest.raises(ValidationError):
        protocol.parse_count_spec({"algorithm": "fast"})
    with pytest.raises(ValidationError):
        protocol.parse_count_spec("not an object")


# ---------------------------------------------------------------------------
# cluster address parsing
# ---------------------------------------------------------------------------

def test_parse_cluster_accepts_string_and_sequence():
    assert parse_cluster("a:1, b:2 ,") == ("a:1", "b:2")
    assert parse_cluster(["a:1", "b:2"]) == ("a:1", "b:2")


@pytest.mark.parametrize("bad", [None, "", ",", "hostonly", "host:", "host:port",
                                 "host:0", "host:70000"])
def test_parse_cluster_rejects_malformed(bad):
    with pytest.raises(ValidationError):
        parse_cluster(bad)


# ---------------------------------------------------------------------------
# daemon op handling (direct, no sockets)
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon():
    with WorkerDaemon() as d:
        yield d


def test_unknown_op_and_shapes_are_validation_errors(daemon):
    with pytest.raises(ValidationError):
        daemon.handle_message({"op": "frobnicate"})
    with pytest.raises(ValidationError):
        daemon.handle_message({"op": "open"})  # no source
    with pytest.raises(ValidationError):
        daemon.handle_message({"op": "count_slice", "source": "x",
                               "spec": {"delta": 1.0, "workers": 3}})


def test_open_missing_file_is_a_placement_fact_not_an_error(daemon):
    result = daemon.handle_message({"op": "open", "source": "/nonexistent/g.rgz"})
    assert result == {"held": False}


def test_count_slice_on_unheld_source_is_an_error(daemon):
    with pytest.raises(StorageFormatError):
        daemon.handle_message({
            "op": "count_slice", "source": "/nonexistent/g.rgz",
            "lo": 0, "hi": 10, "spec": {"delta": 1.0},
        })


def test_count_slice_range_validation(daemon, tmp_path):
    from repro.storage import pack_graph

    graph = make_graph()
    path = str(tmp_path / "g.rgz")
    pack_graph(graph, path)
    probe = daemon.handle_message({"op": "open", "source": path})
    assert probe["held"] and probe["num_edges"] == graph.num_edges
    with pytest.raises(ValidationError):
        daemon.handle_message({
            "op": "count_slice", "source": path,
            "lo": 5, "hi": graph.num_edges + 1, "spec": {"delta": 1.0},
        })


def test_count_edges_matches_local_count(daemon):
    from repro.core.api import count_motifs

    graph = make_graph()
    payload = protocol.encode_edge_slice(graph, 0, graph.num_edges)
    result = daemon.handle_message({
        "op": "count_edges", "edges": payload, "spec": {"delta": 25.0},
    })
    counts = protocol.decode_counts(result["counts"])
    local = count_motifs(graph, 25.0, algorithm="fast")
    assert np.array_equal(counts.grid.astype(np.int64), local.grid)
    assert daemon.stats["bytes_received"] > 0
    assert daemon.describe_stats()["slices_served"] == 1


def test_hello_reports_identity(daemon):
    hello = daemon.handle_message({"op": "hello"})
    assert hello["workers"] == 1
    assert hello["protocol"] == protocol.PROTOCOL_VERSION


# ---------------------------------------------------------------------------
# CountRequest field validation (the API surface of the new cut modes)
# ---------------------------------------------------------------------------

def test_request_rejects_multiple_cut_modes():
    with pytest.raises(ValidationError):
        CountRequest(graph=make_graph(), delta=5.0, shard_budget=100, num_shards=4)
    with pytest.raises(ValidationError):
        CountRequest(graph=make_graph(), delta=5.0, num_shards=4,
                     shard_boundaries=(10, 20))


def test_request_normalizes_boundaries_and_cluster():
    request = CountRequest(
        graph=make_graph(), delta=5.0,
        shard_boundaries=[10.0, 20],
    )
    assert request.shard_boundaries == (10, 20)
    assert request.shard_spec == {"boundaries": (10, 20)}
    request = CountRequest(graph=make_graph(), delta=5.0, cluster=" a:1 ,b:2")
    assert request.cluster == "a:1,b:2"
    with pytest.raises(ValidationError):
        CountRequest(graph=make_graph(), delta=5.0, num_shards=0)
    with pytest.raises(ValidationError):
        CountRequest(graph=make_graph(), delta=5.0, shard_boundaries=())
    with pytest.raises(ValidationError):
        CountRequest(graph=make_graph(), delta=5.0, cluster="nonsense")
