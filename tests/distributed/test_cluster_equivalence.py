"""Distributed counts must be bit-identical to the serial shard union.

The acceptance gate of the distributed runtime: for all five exact
algorithms, across random cut points and both kernel backends, a
cluster of in-process worker daemons must reproduce the serial
:class:`~repro.storage.sharded.ShardedGraph` counts (themselves proven
identical to whole-graph counts) byte for byte — through both
placement paths (held packed file / shipped edge columns).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.api import count_motifs
from repro.distributed import ClusterExecutor, WorkerDaemon
from repro.errors import ValidationError, WorkerUnavailableError
from repro.graph.temporal_graph import TemporalGraph
from repro.serve.protocol import canonical_counts_bytes
from repro.storage import pack_graph

from tests.conftest import random_edges

EXACT_ALGORITHMS = ("fast", "ex", "bruteforce", "bt", "twoscent")


def make_graph(seed: int = 11, num_nodes: int = 40, num_edges: int = 500) -> TemporalGraph:
    rng = random.Random(seed)
    return TemporalGraph(random_edges(rng, num_nodes, num_edges, t_max=200))


@pytest.fixture(scope="module")
def cluster():
    """Two in-process worker daemons, shared by the module's tests."""
    with WorkerDaemon() as d1, WorkerDaemon() as d2:
        yield f"{d1.start()},{d2.start()}"


@pytest.fixture(scope="module")
def packed(tmp_path_factory):
    graph = make_graph()
    path = str(tmp_path_factory.mktemp("dist") / "g.rgz")
    pack_graph(graph, path)
    return graph, path


def random_boundaries(rng: random.Random, num_edges: int, k: int) -> tuple:
    return tuple(sorted(rng.sample(range(1, num_edges), k)))


@pytest.mark.parametrize("algorithm", EXACT_ALGORITHMS)
def test_all_exact_algorithms_bit_identical_over_random_cuts(
    cluster, packed, algorithm
):
    graph, path = packed
    rng = random.Random(hash(algorithm) & 0xFFFF)
    for trial in range(2):
        boundaries = random_boundaries(rng, graph.num_edges, rng.randint(1, 6))
        serial = count_motifs(
            graph, 40.0, algorithm=algorithm, shard_boundaries=boundaries
        )
        dist = count_motifs(
            path, 40.0, algorithm=algorithm,
            cluster=cluster, shard_boundaries=boundaries,
        )
        assert np.array_equal(serial.grid, dist.grid), (
            f"{algorithm} diverged at boundaries {boundaries}"
        )
        assert canonical_counts_bytes(serial) == canonical_counts_bytes(dist)
        assert dist.meta["sharding"] == "halo-union"
        assert dist.meta["cluster"]["bytes_shipped"] == 0  # held by both


@pytest.mark.parametrize("backend", ("python", "columnar"))
def test_backends_identical_through_the_cluster(cluster, packed, backend):
    graph, path = packed
    whole = count_motifs(graph, 60.0, algorithm="fast", backend=backend)
    dist = count_motifs(
        path, 60.0, algorithm="fast", backend=backend,
        cluster=cluster, num_shards=5,
    )
    assert np.array_equal(whole.grid, dist.grid)


def test_in_memory_graph_ships_edges(cluster):
    graph = make_graph(seed=23, num_edges=400)
    serial = count_motifs(graph, 30.0, algorithm="fast")
    dist = count_motifs(graph, 30.0, algorithm="fast", cluster=cluster, num_shards=4)
    assert np.array_equal(serial.grid, dist.grid)
    meta = dist.meta["cluster"]
    assert meta["local_workers"] == []  # nothing on disk to hold
    assert meta["bytes_shipped"] > 0


def test_default_plan_is_four_shards_per_worker(cluster, packed):
    graph, path = packed
    dist = count_motifs(path, 25.0, algorithm="fast", cluster=cluster)
    assert dist.meta["shards"] == 8  # 4 × 2 workers
    assert np.array_equal(
        dist.grid, count_motifs(graph, 25.0, algorithm="fast").grid
    )


def test_exactly_once_accounting_sums_each_unit_once(cluster, packed):
    """One recorded result per unit, duplicates visible, counts exact."""
    graph, path = packed
    dist = count_motifs(path, 40.0, algorithm="fast", cluster=cluster, num_shards=6)
    meta = dist.meta["cluster"]
    jobs = sum(meta["jobs"].values())
    units = dist.meta["slice_runs"]
    # shard_seconds records exactly the units whose (first) result won.
    assert len(meta["shard_seconds"]) == units
    # Every dispatched job either became the recorded result of its
    # unit or was dropped as a duplicate — nothing double-counts.
    assert jobs == units + meta["duplicates_ignored"]
    assert np.array_equal(
        dist.grid, count_motifs(graph, 40.0, algorithm="fast").grid
    )


def test_sampling_estimators_pass_through_locally(cluster, packed):
    graph, path = packed
    local = count_motifs(graph, 40.0, algorithm="bts", seed=7, n_samples=2)
    via_cluster = count_motifs(
        graph, 40.0, algorithm="bts", seed=7, n_samples=2, cluster=cluster
    )
    assert np.array_equal(local.grid, via_cluster.grid)
    assert "passthrough" in via_cluster.meta["cluster"]


def test_unreachable_cluster_raises_worker_unavailable(packed):
    graph, path = packed
    with pytest.raises(WorkerUnavailableError):
        count_motifs(path, 20.0, algorithm="fast",
                     cluster="127.0.0.1:1", num_shards=2)


def test_cluster_rejects_sharding_conflicts(cluster, packed):
    _, path = packed
    with pytest.raises(ValidationError):
        count_motifs(path, 20.0, algorithm="fast", cluster=cluster,
                     num_shards=3, shard_budget=100)


def test_executor_stats_reports_each_worker(cluster):
    stats = ClusterExecutor(cluster).stats()
    assert len(stats) == 2
    for payload in stats.values():
        assert "slices_served" in payload
