"""Unit suite for the cluster health layer.

:class:`RetryPolicy` backoff must be deterministic (same seed/salt →
same schedule, different salt → decorrelated), bounded, and validated;
the ``ping`` op must round-trip against a real worker daemon and fail
typed — with the worker's host:port and attempt count in the message —
against a dead one; the :class:`HealthMonitor` must account
readmissions; the :class:`CircuitBreaker` must walk
closed → open → half_open with a single-trial probe.
"""

from __future__ import annotations

import signal
import socket
import time

import pytest

from repro.distributed.cluster import WorkerLink
from repro.distributed.health import (
    CircuitBreaker,
    HealthMonitor,
    RetryPolicy,
    ping_worker,
)
from repro.distributed import protocol
from repro.errors import ValidationError, WorkerUnavailableError

from tests.distributed.test_fault import spawn_worker


def dead_address() -> str:
    """A host:port that refuses connections (bound then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

def test_delay_schedule_is_deterministic_across_instances():
    a = RetryPolicy(seed=13)
    b = RetryPolicy(seed=13)
    assert [a.delay(i, salt="w") for i in range(6)] == [
        b.delay(i, salt="w") for i in range(6)
    ]


def test_delay_salt_decorrelates_workers():
    policy = RetryPolicy(seed=1)
    assert policy.delay(0, salt="host:1") != policy.delay(0, salt="host:2")


def test_delay_grows_and_caps_without_jitter():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=0.5, jitter=0.0)
    delays = [policy.delay(i) for i in range(8)]
    assert delays[:3] == [0.1, 0.2, 0.4]
    assert all(d == 0.5 for d in delays[3:])
    assert delays == sorted(delays)


def test_jitter_stays_within_fraction():
    policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                         backoff_max=1.0, jitter=0.25, seed=99)
    for attempt in range(32):
        d = policy.delay(attempt, salt="x")
        assert 0.75 <= d <= 1.25


@pytest.mark.parametrize("kwargs", [
    {"connect_timeout": 0.0},
    {"op_timeout": -1.0},
    {"max_attempts": 0},
    {"backoff_base": -0.1},
    {"backoff_factor": 0.5},
    {"jitter": 1.0},
])
def test_policy_validates_knobs(kwargs):
    with pytest.raises(ValidationError):
        RetryPolicy(**kwargs)


def test_negative_attempt_rejected():
    with pytest.raises(ValidationError):
        RetryPolicy().delay(-1)


# ----------------------------------------------------------------------
# ping + error messages
# ----------------------------------------------------------------------

def test_ping_round_trips_against_a_live_worker():
    proc, addr = spawn_worker()
    try:
        sample = ping_worker(addr)
        assert sample["state"] == "alive"
        assert sample["pid"] == proc.pid
        assert sample["rtt_seconds"] > 0
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        proc.stdout.close()


def test_ping_dead_worker_raises_typed_with_address():
    addr = dead_address()
    policy = RetryPolicy(connect_timeout=0.5)
    with pytest.raises(WorkerUnavailableError) as info:
        ping_worker(addr, policy=policy)
    assert addr in str(info.value)


def test_link_error_carries_attempt_count():
    addr = dead_address()
    with pytest.raises(WorkerUnavailableError) as info:
        WorkerLink(addr, connect_timeout=0.5, attempt="3/5")
    message = str(info.value)
    assert addr in message and "attempt 3/5" in message


# ----------------------------------------------------------------------
# protocol frame caps (symmetric inbound/outbound)
# ----------------------------------------------------------------------

def test_encode_message_enforces_outbound_cap():
    payload = {"ok": True, "result": {"blob": "x" * 256}}
    assert protocol.encode_message(payload).endswith(b"\n")
    with pytest.raises(ValidationError) as info:
        protocol.encode_message(payload, limit=64)
    assert "64" in str(info.value)


# ----------------------------------------------------------------------
# HealthMonitor
# ----------------------------------------------------------------------

def test_monitor_counts_readmissions():
    monitor = HealthMonitor(["a:1", "b:2"])
    monitor.mark_ok("a:1", rtt_seconds=0.01)
    assert monitor.readmissions() == 0
    monitor.mark_lost("a:1", "boom")
    monitor.mark_lost("a:1", "boom again")
    monitor.mark_ok("a:1", rtt_seconds=0.02)
    assert monitor.readmissions() == 1

    snapshot = monitor.describe()
    record = snapshot["a:1"]
    assert record["state"] == "alive"
    assert record["failures"] == 2
    assert record["consecutive_failures"] == 0
    assert record["readmissions"] == 1
    assert record["last_error"] == "boom again"
    assert snapshot["b:2"]["state"] == "unknown"


def test_monitor_probe_updates_record_on_failure():
    addr = dead_address()
    monitor = HealthMonitor([addr])
    with pytest.raises(WorkerUnavailableError):
        monitor.probe(addr, policy=RetryPolicy(connect_timeout=0.5))
    assert monitor.describe()[addr]["state"] == "dead"


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------

def test_breaker_opens_after_threshold_and_half_opens():
    breaker = CircuitBreaker(threshold=2, reset_after=0.15)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.retry_after() > 0

    time.sleep(0.2)
    assert breaker.state == "half_open"
    assert breaker.allow(), "the first caller after reset gets the trial"
    assert not breaker.allow(), "only one trial probe at a time"
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.retry_after() == 0.0


def test_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(threshold=1, reset_after=0.1)
    breaker.record_failure()
    assert breaker.state == "open"
    time.sleep(0.15)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()


def test_breaker_describe_is_json_safe():
    breaker = CircuitBreaker(threshold=3, reset_after=5.0)
    breaker.record_failure()
    snapshot = breaker.describe()
    assert snapshot["state"] == "closed"
    assert snapshot["consecutive_failures"] == 1
    assert snapshot["threshold"] == 3
    assert snapshot["retry_after_seconds"] == 0.0


def test_breaker_validates_knobs():
    with pytest.raises(ValidationError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValidationError):
        CircuitBreaker(reset_after=-1.0)
