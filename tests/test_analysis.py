"""Tests for the motif-significance analysis layer."""

import numpy as np
import pytest

from repro.analysis import MotifSignificance, motif_significance, time_shuffled_null
from repro.core.api import count_motifs
from repro.errors import ValidationError
from repro.graph import generators
from repro.graph.temporal_graph import TemporalGraph


class TestNullModel:
    def test_preserves_static_structure(self, paper_graph):
        null = time_shuffled_null(paper_graph, seed=1)
        original_pairs = sorted((u, v) for u, v, _ in paper_graph.edges())
        null_pairs = sorted((u, v) for u, v, _ in null.edges())
        assert original_pairs == null_pairs

    def test_preserves_timestamp_multiset(self, paper_graph):
        null = time_shuffled_null(paper_graph, seed=1)
        assert sorted(paper_graph.timestamps.tolist()) == sorted(null.timestamps.tolist())

    def test_deterministic(self, paper_graph):
        assert time_shuffled_null(paper_graph, 7) == time_shuffled_null(paper_graph, 7)

    def test_seeds_differ(self, paper_graph):
        a = time_shuffled_null(paper_graph, 1)
        b = time_shuffled_null(paper_graph, 2)
        assert a != b

    def test_empty_graph(self):
        assert time_shuffled_null(TemporalGraph([]), 0).num_edges == 0


class TestSignificance:
    def test_bursty_graph_has_positive_surplus(self):
        # session-structured traffic has far more within-δ motifs than
        # its time-shuffled null spread over the full span
        g = generators.powerlaw_temporal_graph(
            50, 2500, span=10_000_000.0, reciprocity=0.3, seed=3
        )
        sig = motif_significance(g, 600, num_null=5, seed=0)
        observed_total = sum(sig.observed.values())
        null_total = sum(sig.null_mean.values())
        assert observed_total > null_total

    def test_zscore_zero_variance(self):
        sig = MotifSignificance(
            observed={"M55": 5},
            null_mean={"M55": 5.0},
            null_std={"M55": 0.0},
            num_null=3,
        )
        assert sig.zscore("M55") == 0.0

    def test_zscores_cover_all_motifs(self, paper_graph):
        sig = motif_significance(paper_graph, 10, num_null=3)
        assert len(sig.zscores()) == 36

    def test_top_k(self, paper_graph):
        sig = motif_significance(paper_graph, 10, num_null=3)
        top = sig.top(4)
        assert len(top) == 4
        scores = sig.zscores()
        assert abs(scores[top[0]]) >= abs(scores[top[-1]])

    def test_significance_profile_normalised(self, paper_graph):
        sig = motif_significance(paper_graph, 10, num_null=3)
        profile = sig.significance_profile()
        norm = np.linalg.norm(list(profile.values()))
        assert norm == pytest.approx(1.0, abs=1e-9) or norm == 0.0

    def test_validation(self, paper_graph):
        with pytest.raises(ValidationError):
            motif_significance(paper_graph, 10, num_null=0)

    def test_observed_matches_count_motifs(self, paper_graph):
        sig = motif_significance(paper_graph, 10, num_null=2)
        assert sig.observed == count_motifs(paper_graph, 10).per_motif()
